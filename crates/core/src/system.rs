//! The CubicleOS kernel: loader, monitor, cross-cubicle calls, windows.
//!
//! [`System`] owns the simulated [`Machine`], the cubicle table, the page
//! metadata map, the entry-point (trampoline) registry and the component
//! registry. It implements the paper's four trusted pieces:
//!
//! * the **loader** (§5.4): [`System::load`] scans code for forbidden
//!   instructions, verifies builder signatures, maps segments W^X with a
//!   fresh MPK key, and registers trampolines;
//! * the **monitor** (§5.3): page metadata + window ACLs + the lazy
//!   trap-and-map fault handler behind every memory access;
//! * **cross-cubicle call trampolines** (§5.5): [`System::cross_call`]
//!   switches PKRU and stacks and enforces that inter-component control
//!   flow only passes through registered public entries;
//! * the **window API** (Table 1): `window_init` / `window_add` /
//!   `window_open` / ….

use crate::builder::Builder;
use crate::component::{Component, ComponentImage, EntryFn};
use crate::cubicle::{Cubicle, RegionType, StackSlot};
use crate::error::{CubicleError, Result};
use crate::ids::{CubicleId, EntryId, WindowId};
use crate::ledger::LedgerRow;
use crate::metrics::Metrics;
use crate::mode::IsolationMode;
use crate::race::{RaceDetector, RaceObject, RaceReport};
use crate::span::{CycleAttribution, SpanFrame, SpanProfiler, SpanRecord};
use crate::stats::SysStats;
use crate::trace::{FaultAudit, FaultDecision, TraceBuffer, TraceEvent, WindowOpKind};
use crate::value::Value;
use cubicle_mpk::{
    pages_covering, AccessKind, CoreStats, CostModel, Fault, FaultKind, Machine, MachineEvent,
    MachineStats, PageFlags, PageNum, Pkru, ProtKey, VAddr, NUM_KEYS, PAGE_SIZE,
};
use std::collections::{HashMap, VecDeque};

/// The reserved "parked" protection key used by tag virtualisation: it
/// is never granted in any PKRU set, so pages of unbound cubicles are
/// inaccessible until trap-and-map faults them back in.
pub const PARKED_KEY: ProtKey = match ProtKey::new(15) {
    Some(k) => k,
    None => unreachable!(),
};

/// Maximum rejection records kept by the loader audit log (a kernel must
/// not grow unbounded state when fed a stream of hostile images).
const LOADER_AUDIT_CAP: usize = 64;

/// Per-page metadata kept by the monitor (paper §5.3: "CubicleOS keeps a
/// page metadata map that identifies the window descriptor array
/// corresponding to that page, together with its owner and type").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageMeta {
    /// The owning cubicle (fixed at allocation time, changed only by an
    /// explicit ownership grant).
    pub owner: CubicleId,
    /// What the page holds.
    pub region: RegionType,
    /// The cubicle whose MPK key the page is expected to carry right now:
    /// the owner, or the peer trap-and-map last retagged it to (causal
    /// tag consistency, §5.6). The invariant auditor cross-checks the
    /// machine's page table against this bookkeeping.
    pub holder: CubicleId,
    /// The window descriptor that justified handing the tag to a
    /// non-owner holder (`None` while the owner holds its own page).
    /// Survives a lazy `window_close`, recording why the stale tag is
    /// legitimate.
    pub via: Option<WindowId>,
}

/// Handle returned by the loader.
#[derive(Clone, Debug)]
pub struct LoadedComponent {
    /// The cubicle the component was loaded into.
    pub cid: CubicleId,
    /// The component's registry slot.
    pub slot: usize,
    /// Public entry points by symbol name.
    pub entries: HashMap<String, EntryId>,
}

impl LoadedComponent {
    /// Looks up an entry by name.
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchEntry`] when the symbol was not exported —
    /// a deployment error surfaced at boot, typed so a bad caller never
    /// aborts the monitor.
    pub fn entry(&self, name: &str) -> Result<EntryId> {
        self.entries
            .get(name)
            .copied()
            .ok_or_else(|| CubicleError::NoSuchEntry(name.into()))
    }
}

#[derive(Clone)]
struct EntryDesc {
    name: String,
    cubicle: CubicleId,
    slot: usize,
    func: EntryFn,
    stack_arg_bytes: usize,
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    cubicle: CubicleId,
    /// Cycle stamp by which this frame must have returned, when the
    /// cross-call watchdog armed a budget for its edge (`None`
    /// otherwise — merged calls, `run_in_cubicle`, watchdog off).
    deadline: Option<u64>,
    /// The stack-pool slot of `cubicle` this frame runs on, when the
    /// multi-core re-entrancy pool handed one out (`None` on single-core
    /// runs, merged calls and non-MPK modes — the primary stack then).
    stack_slot: Option<usize>,
}

/// Everything the loader needs to replay one [`System::install`] during a
/// microreboot: the (already verified) image segments, per registry slot.
/// Entry registrations are *not* replayed — entry IDs and trampolines
/// survive a reboot, so peers' proxies stay valid.
struct ReloadInfo {
    cid: CubicleId,
    code: cubicle_mpk::insn::CodeImage,
    data_pages: usize,
    heap_pages: usize,
    stack_pages: usize,
}

/// Maximum lines kept in the containment log (same rationale as
/// [`LOADER_AUDIT_CAP`]).
const CONTAINMENT_LOG_CAP: usize = 64;

/// Maximum lines kept in the recovery log (same rationale as
/// [`LOADER_AUDIT_CAP`]).
const RECOVERY_LOG_CAP: usize = 64;

/// A crash-recovery milestone reported to the monitor by a durable
/// subsystem (see [`System::record_recovery`]). Feeds the recovery
/// counters in [`SysStats`], the Prometheus export, and the
/// human-readable recovery block of [`System::export_fault_audit`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryEvent {
    /// A write-ahead-log replay ran on database open: `frames` committed
    /// frames were recovered; `torn` says whether a torn / uncommitted
    /// tail was discarded.
    WalReplay { frames: u64, torn: bool },
    /// A RAMFS inode-journal replay restored `records` journal records
    /// inside a microrebooted cubicle's `on_restart` hook.
    RamfsJournalReplay { records: u64 },
    /// A group-commit sync made `commits` transactions durable with a
    /// single write barrier (recorded only when `commits >= 2`).
    GroupCommitBatch { commits: u64 },
}

/// Snapshot of clock + counters, used to window measurements.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Cycle counter at snapshot time.
    pub cycles: u64,
    /// Kernel counters at snapshot time.
    pub stats: SysStats,
    /// Machine counters at snapshot time.
    pub machine: MachineStats,
}

/// The CubicleOS kernel. See the module documentation.
pub struct System {
    pub(crate) machine: Machine,
    pub(crate) mode: IsolationMode,
    pub(crate) cubicles: Vec<Cubicle>,
    components: Vec<Option<Box<dyn Component>>>,
    component_names: Vec<String>,
    entries: Vec<EntryDesc>,
    entry_names: HashMap<String, EntryId>,
    pub(crate) page_meta: HashMap<PageNum, PageMeta>,
    call_stack: Vec<Frame>,
    next_page: u64,
    next_key: u8,
    stats: SysStats,
    verifier: Builder,
    boot: Option<Snapshot>,
    boundary_tax: u64,
    pub(crate) key_virt: Option<KeyVirt>,
    tracer: Option<Tracer>,
    /// Human-readable records of images the loader refused, one line per
    /// rejection (bounded; kept outside the tracer so rejections are
    /// never silently lost when tracing is off).
    loader_audit: Vec<String>,
    /// Recycled read buffers for [`System::with_read`]: value marshalling
    /// and component handlers borrow one instead of allocating a fresh
    /// `Vec` per cross-cubicle argument. Host-side only — never affects
    /// simulated cycles.
    scratch_pool: Vec<Vec<u8>>,
    /// Fault containment policy ([`System::set_fault_containment`]):
    /// when on, a denied access quarantines the offending cubicle and
    /// the cross-call chain unwinds to the nearest healthy caller as an
    /// errno. Off (the default) preserves detect-and-propagate
    /// semantics: errors travel raw to the top of the call chain.
    fault_containment: bool,
    /// Physical MPK keys released by quarantined cubicles, reused by
    /// subsequent loads/restarts (non-virtualised mode only).
    free_keys: Vec<ProtKey>,
    /// Tombstones for pages reclaimed from quarantined cubicles: a later
    /// touch through a dangling reference yields a typed `Quarantined`
    /// error instead of a wild machine fault. Sound because the monitor
    /// never reuses virtual addresses (`next_page` only grows).
    reclaimed: HashMap<PageNum, CubicleId>,
    /// Per-slot reload images for microreboot (parallel to `components`).
    reloads: Vec<ReloadInfo>,
    /// Human-readable quarantine/unwind/restart records (bounded, kept
    /// outside the tracer like `loader_audit`).
    containment_log: Vec<String>,
    /// Human-readable crash-recovery records (WAL replays, RAMFS journal
    /// replays, group-commit batches; bounded like `containment_log`).
    recovery_log: Vec<String>,
    /// Default cross-call cycle budget enforced by the watchdog
    /// ([`System::set_cycle_budget`]); `None` (the default) disarms it.
    cycle_budget: Option<u64>,
    /// Per-edge watchdog budget overrides, taking precedence over the
    /// default budget.
    edge_budgets: HashMap<(CubicleId, CubicleId), u64>,
    /// Window-grant authorisation cache ([`System::set_grant_cache`]):
    /// `None` (the default) preserves the paper's per-fault linear window
    /// search bit-for-bit.
    grant_cache: Option<GrantCache>,
    /// Cross-call batching gate ([`System::set_cross_call_batching`]).
    /// Components consult [`System::batching_enabled`] to pick between
    /// the vectored and the legacy per-call paths.
    batching: bool,
    /// Restart backoff policy ([`System::set_restart_policy`]); `None`
    /// (the default) keeps `restart` unconditional.
    restart_policy: Option<RestartPolicy>,
    /// Simulated-time locks serialising the monitor's shared metadata
    /// (page_meta, windows, grant cache, ledger) across cores. On a
    /// single-core run every section is uncontended and free, so cycle
    /// counts are bit-identical to the lock-free monitor.
    pub(crate) locks: MonitorLocks,
    /// Quarantines requested while the fault path held the page-metadata
    /// lock, performed by [`System::resolve_fault`] right after the
    /// release. Teardown needs the windows and ledger locks, and taking
    /// the ledger lock *under* page_meta would invert the sanctioned
    /// ledger → page_meta order (heap growth maps fresh pages while
    /// holding the ledger) — a deadlock cycle CubicleSan would flag.
    pending_quarantine: Vec<(CubicleId, String)>,
    /// CubicleSan ([`System::set_race_detection`]): vector-clock
    /// happens-before race detector + Eraser locksets + lock-order graph
    /// over the monitor's shared metadata. `None` (the default) skips
    /// every hook; the detector is a pure observer either way — it never
    /// charges simulated cycles, so clocks are bit-identical on or off.
    race: Option<Box<RaceDetector>>,
}

/// Exponential-backoff policy for [`System::restart`]: a cubicle on its
/// `g`-th incarnation must wait `base_backoff_cycles << g` simulated
/// cycles after its quarantine before a restart is accepted, and after
/// `max_restarts` incarnations the quarantine becomes permanent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Backoff delay for the first restart, in simulated cycles; doubles
    /// with every incarnation (capped at `<< 31`).
    pub base_backoff_cycles: u64,
    /// Restarts allowed before the quarantine becomes permanent.
    pub max_restarts: u32,
}

/// One remembered trap-and-map authorisation: the window that granted
/// `accessor` the faulting page last time. A hit re-checks that single
/// descriptor in O(1) instead of linearly searching the owner's window
/// list, so a stale entry can never authorise anything the live window
/// would not — invalidation is a performance matter, not a safety one.
#[derive(Clone, Copy, Debug)]
struct GrantEntry {
    owner: CubicleId,
    via: WindowId,
}

#[derive(Default)]
struct GrantCache {
    /// (accessor, faulting page) → the grant that authorised it last.
    map: HashMap<(CubicleId, PageNum), GrantEntry>,
    /// Per-accessor hit counts for the resource ledger (host-side).
    hits_by_accessor: HashMap<CubicleId, u64>,
}

/// Pieces of monitor metadata that concurrent cross-calls from several
/// simulated cores serialise on. The monitor executes host-sequentially,
/// so these locks never block the host — they model the *simulated time*
/// a core would spin waiting for a peer that holds the lock in an
/// overlapping simulated interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MonitorLock {
    /// The page-metadata map consulted and mutated by trap-and-map
    /// fault resolution.
    PageMeta = 0,
    /// Window descriptors (open/close/destroy mutate peers' ACLs).
    Windows = 1,
    /// The window-grant authorisation cache and its invalidation paths.
    GrantCache = 2,
    /// The heap ledger: per-cubicle allocation and accounting state.
    Ledger = 3,
}

/// Number of [`MonitorLock`] variants.
const NUM_LOCKS: usize = 4;

/// Critical sections remembered per lock for the audit's concurrency
/// pass (bounded ring; oldest evicted first).
const LOCK_SECTION_CAP: usize = 128;

impl MonitorLock {
    /// Stable lower-case name used in Prometheus labels and audit
    /// findings.
    pub fn name(self) -> &'static str {
        match self {
            MonitorLock::PageMeta => "page_meta",
            MonitorLock::Windows => "windows",
            MonitorLock::GrantCache => "grant_cache",
            MonitorLock::Ledger => "ledger",
        }
    }

    /// All lock identities, in index order.
    pub fn all() -> [MonitorLock; NUM_LOCKS] {
        [
            MonitorLock::PageMeta,
            MonitorLock::Windows,
            MonitorLock::GrantCache,
            MonitorLock::Ledger,
        ]
    }
}

/// Per-lock simulated state.
#[derive(Default, Debug)]
pub(crate) struct LockState {
    /// Simulated cycle at which the last holder released the lock. A
    /// core acquiring at cycle `t < free_at` spins for `free_at - t`.
    pub(crate) free_at: u64,
    /// Total acquisitions.
    pub(crate) acquisitions: u64,
    /// Acquisitions that found the lock held (in simulated time).
    pub(crate) contended: u64,
    /// Simulated cycles spent spin-waiting across all acquisitions.
    pub(crate) wait_cycles: u64,
    /// Recent critical sections as `(start, end)` cycle stamps, in
    /// acquisition order — the audit checks they never overlap.
    pub(crate) sections: VecDeque<(u64, u64)>,
}

/// The monitor's lock table.
#[derive(Default, Debug)]
pub(crate) struct MonitorLocks {
    pub(crate) locks: [LockState; NUM_LOCKS],
}

/// Counters for one monitor lock, exported by
/// [`System::monitor_lock_stats`] and the Prometheus endpoint.
#[derive(Clone, Copy, Debug)]
pub struct MonitorLockStats {
    /// Lock name (`page_meta`, `windows`, `grant_cache`, `ledger`).
    pub name: &'static str,
    /// Total acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to spin (simulated contention).
    pub contended: u64,
    /// Simulated cycles spent spinning.
    pub wait_cycles: u64,
}

/// Observability state, present only while tracing is enabled
/// ([`System::enable_tracing`]). Strictly an observer: recording never
/// charges simulated cycles.
struct Tracer {
    buf: TraceBuffer,
    metrics: Metrics,
    audit: VecDeque<FaultAudit>,
    audit_capacity: usize,
    audit_dropped: u64,
    /// Causal span profilers, one per simulated core (index = core id),
    /// grown lazily as cores first record events. Each profiler sees
    /// only its own core's events, so per-core span trees stay causally
    /// consistent under interleaving; cross-core views sum over them.
    spans: Vec<SpanProfiler>,
    /// Retained-span capacity used when a new core's profiler is grown.
    span_capacity: usize,
    /// Next span id to hand out (0 is reserved for "no span"). Shared
    /// across cores so span ids are globally unique in the merged trace.
    next_span: u64,
}

impl Tracer {
    /// Appends an event to the ring and feeds it to `core`'s span
    /// profiler — the single door every recorded event passes through,
    /// so the span trees always agree with the event stream.
    fn record(&mut self, at: u64, core: usize, event: TraceEvent) {
        while self.spans.len() <= core {
            self.spans.push(SpanProfiler::new(at, self.span_capacity));
        }
        self.spans[core].on_event(at, &event);
        self.buf.push_on(at, core as u32, event);
    }

    /// The innermost open span on `core` (0 when none).
    fn current_span(&self, core: usize) -> u64 {
        self.spans.get(core).map_or(0, |p| p.current_span())
    }

    /// Self/total cycle attribution for a cubicle summed across every
    /// core's profiler.
    fn cubicle_attribution(&self, cid: CubicleId) -> CycleAttribution {
        let mut sum = CycleAttribution::default();
        for p in &self.spans {
            let a = p.cubicle_attribution(cid);
            sum.self_cycles += a.self_cycles;
            sum.total_cycles += a.total_cycles;
            sum.calls += a.calls;
        }
        sum
    }

    /// Completed spans across all cores.
    fn spans_completed(&self) -> u64 {
        self.spans.iter().map(|p| p.spans_completed()).sum()
    }
}

/// MPK tag virtualisation state (paper §8: "if more tags were required,
/// CubicleOS could use existing tag virtualisation mechanisms [libmpk]").
///
/// Cubicles receive *virtual* keys; at most 15 of them (key 0 stays with
/// the monitor) are bound to physical keys at a time. Binding a cubicle
/// whose key table is full evicts the least-recently-used binding and
/// retags every page of the evicted cubicle to the incoming one's
/// physical key owner — each retag at full `pkey_mprotect` cost, which is
/// what makes virtualisation expensive and the paper's "one key per
/// compartment" frugality valuable.
pub(crate) struct KeyVirt {
    /// physical key (1..=15) → bound cubicle, with an LRU tick.
    bindings: Vec<(ProtKey, Option<(CubicleId, u64)>)>,
    tick: u64,
    /// Evictions performed (statistics).
    evictions: u64,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("mode", &self.mode)
            .field("cubicles", &self.cubicles.len())
            .field("entries", &self.entries.len())
            .field("cycles", &self.machine.now())
            .finish()
    }
}

impl System {
    /// Creates a kernel in the given isolation mode with the calibrated
    /// paper cost model.
    pub fn new(mode: IsolationMode) -> System {
        System::with_cost_model(mode, CostModel::paper())
    }

    /// Creates a kernel with a custom cost model (e.g. [`CostModel::free`]
    /// in tests that assert on event counts).
    pub fn with_cost_model(mode: IsolationMode, cost: CostModel) -> System {
        let mut machine = Machine::with_cost_model(cost);
        // Boot executes as the trusted monitor with access to everything.
        machine.set_pkru_at_load(Pkru::allow_all());
        let monitor = Cubicle::new(CubicleId::MONITOR, "MONITOR", ProtKey::MONITOR, false);
        System {
            machine,
            mode,
            cubicles: vec![monitor],
            components: Vec::new(),
            component_names: Vec::new(),
            entries: Vec::new(),
            entry_names: HashMap::new(),
            page_meta: HashMap::new(),
            call_stack: Vec::new(),
            next_page: 16, // leave low memory (incl. page 0) unmapped
            next_key: 1,   // key 0 is the monitor's
            stats: SysStats::default(),
            verifier: Builder::new(),
            boot: None,
            boundary_tax: 0,
            key_virt: None,
            tracer: None,
            loader_audit: Vec::new(),
            scratch_pool: Vec::new(),
            fault_containment: false,
            free_keys: Vec::new(),
            reclaimed: HashMap::new(),
            reloads: Vec::new(),
            containment_log: Vec::new(),
            recovery_log: Vec::new(),
            cycle_budget: None,
            edge_budgets: HashMap::new(),
            grant_cache: None,
            batching: false,
            restart_policy: None,
            locks: MonitorLocks::default(),
            pending_quarantine: Vec::new(),
            race: None,
        }
    }

    // =====================================================================
    // Observability (trace buffer, latency metrics, fault audit)
    // =====================================================================

    /// Enables event tracing with a ring buffer of `capacity` records
    /// (oldest overwritten when full). Also enables machine-level event
    /// recording so retags and PKRU writes appear in the trace.
    ///
    /// Tracing is an observer: it never charges simulated cycles, so
    /// cycle counts are bit-identical with tracing on or off. Re-enabling
    /// resets any previous trace.
    pub fn enable_tracing(&mut self, capacity: usize) {
        let capacity = capacity.max(1);
        self.machine.set_event_recording(Some(capacity));
        self.tracer = Some(Tracer {
            buf: TraceBuffer::new(capacity),
            metrics: Metrics::default(),
            audit: VecDeque::new(),
            audit_capacity: capacity,
            audit_dropped: 0,
            spans: vec![SpanProfiler::new(self.machine.now(), capacity)],
            span_capacity: capacity,
            next_span: 1,
        });
    }

    /// Disables tracing and discards the recorded state.
    pub fn disable_tracing(&mut self) {
        self.machine.set_event_recording(None);
        self.tracer = None;
    }

    /// Is tracing currently enabled?
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// The event trace, when tracing is enabled. Pending machine events
    /// are pumped in first so the view is complete.
    pub fn trace(&mut self) -> Option<&TraceBuffer> {
        self.pump_machine_events();
        self.tracer.as_ref().map(|t| &t.buf)
    }

    /// Cross-call latency histograms, when tracing is enabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.tracer.as_ref().map(|t| &t.metrics)
    }

    /// The trap-and-map audit log (bounded like the trace buffer),
    /// oldest first. Empty when tracing is disabled.
    pub fn fault_audit(&self) -> impl Iterator<Item = &FaultAudit> {
        self.tracer.iter().flat_map(|t| t.audit.iter())
    }

    /// Fault-audit records evicted because the bounded audit log was
    /// full (0 when tracing is disabled).
    pub fn fault_audit_dropped(&self) -> u64 {
        self.tracer.as_ref().map_or(0, |t| t.audit_dropped)
    }

    /// Core 0's causal span profiler, when tracing is enabled. Pending
    /// machine events are pumped in first so the span tree is complete.
    /// On a single-core run this is *the* profiler; on a multi-core run
    /// use [`System::core_span_profiler`] for the other cores.
    pub fn span_profiler(&mut self) -> Option<&SpanProfiler> {
        self.core_span_profiler(0)
    }

    /// The span profiler of one simulated core, when tracing is enabled
    /// and that core has recorded at least one event (core 0's profiler
    /// always exists).
    pub fn core_span_profiler(&mut self, core: usize) -> Option<&SpanProfiler> {
        self.pump_machine_events();
        self.tracer.as_ref().and_then(|t| t.spans.get(core))
    }

    /// Completed spans retained by the profilers, grouped by core in
    /// core order (oldest first within a core); empty when tracing is
    /// disabled.
    pub fn spans(&mut self) -> Vec<SpanRecord> {
        self.pump_machine_events();
        self.tracer
            .as_ref()
            .map(|t| t.spans.iter().flat_map(|p| p.spans().copied()).collect())
            .unwrap_or_default()
    }

    /// Per-cubicle self/total cycle attribution summed across every
    /// core's span profiler, sorted by cubicle id; empty when tracing is
    /// disabled.
    pub fn span_cubicle_attribution(&mut self) -> Vec<(CubicleId, CycleAttribution)> {
        self.pump_machine_events();
        let Some(t) = &self.tracer else {
            return Vec::new();
        };
        let mut merged: HashMap<CubicleId, CycleAttribution> = HashMap::new();
        for p in &t.spans {
            for (cid, a) in p.per_cubicle() {
                let e = merged.entry(cid).or_default();
                e.self_cycles += a.self_cycles;
                e.total_cycles += a.total_cycles;
                e.calls += a.calls;
            }
        }
        let mut rows: Vec<_> = merged.into_iter().collect();
        rows.sort_by_key(|(cid, _)| *cid);
        rows
    }

    /// Per-entry-point self/total cycle attribution summed across every
    /// core's span profiler, sorted by entry id; empty when tracing is
    /// disabled.
    pub fn span_entry_attribution(&mut self) -> Vec<(EntryId, CycleAttribution)> {
        self.pump_machine_events();
        let Some(t) = &self.tracer else {
            return Vec::new();
        };
        let mut merged: HashMap<EntryId, CycleAttribution> = HashMap::new();
        for p in &t.spans {
            for (eid, a) in p.per_entry() {
                let e = merged.entry(eid).or_default();
                e.self_cycles += a.self_cycles;
                e.total_cycles += a.total_cycles;
                e.calls += a.calls;
            }
        }
        let mut rows: Vec<_> = merged.into_iter().collect();
        rows.sort_by_key(|(eid, _)| *eid);
        rows
    }

    /// The profilers' attributed window, summed across cores: per-core
    /// cycles between the tracing epoch and the last span boundary. The
    /// per-cubicle self cycles of [`System::span_cubicle_attribution`]
    /// sum to exactly this value. `None` when tracing is disabled.
    pub fn span_attribution_window(&mut self) -> Option<u64> {
        self.pump_machine_events();
        self.tracer
            .as_ref()
            .map(|t| t.spans.iter().map(SpanProfiler::attributed_window).sum())
    }

    /// Assembles the live per-cubicle resource ledger: one
    /// [`LedgerRow`] per cubicle, in cubicle-id order. Page counts come
    /// from the monitor's page metadata (owner vs. current holder),
    /// call counts from [`SysStats::call_edges`], and cycle attribution
    /// from the span profiler (zero when tracing is disabled). This is
    /// the data behind `cubicle-top` and the per-cubicle Prometheus
    /// series.
    pub fn ledger(&mut self) -> Vec<LedgerRow> {
        self.pump_machine_events();
        let n = self.cubicles.len();
        let mut owned = vec![0usize; n];
        let mut foreign = vec![0usize; n];
        // verify: order-ok — commutative counting into per-cubicle slots
        for m in self.page_meta.values() {
            if m.owner.index() < n {
                owned[m.owner.index()] += 1;
            }
            if m.holder != m.owner && m.holder.index() < n {
                foreign[m.holder.index()] += 1;
            }
        }
        let mut calls_in = vec![0u64; n];
        let mut calls_out = vec![0u64; n];
        // verify: order-ok — commutative counting into per-cubicle slots
        for (&(from, to), &count) in &self.stats.call_edges {
            if from.index() < n {
                calls_out[from.index()] += count;
            }
            if to.index() < n {
                calls_in[to.index()] += count;
            }
        }
        let key_virt_on = self.key_virt.is_some();
        let tracer = self.tracer.as_ref();
        self.cubicles
            .iter()
            .map(|c| {
                let cycles = tracer
                    .map(|t| t.cubicle_attribution(c.id))
                    .unwrap_or_default();
                LedgerRow {
                    cubicle: c.id,
                    name: c.name.clone(),
                    state: c.state,
                    generation: c.generation,
                    key: c.key,
                    key_parked: key_virt_on && c.key == PARKED_KEY,
                    pages_owned: owned[c.id.index()],
                    pages_held_foreign: foreign[c.id.index()],
                    windows: c.windows.len(),
                    windows_open: c.windows.iter().filter(|w| w.mask() != 0).count(),
                    heap_used: c.heap.in_use(),
                    heap_capacity: c.heap.capacity(),
                    stack_used: c.stack_used,
                    calls_in: calls_in[c.id.index()],
                    calls_out: calls_out[c.id.index()],
                    grant_hits: self
                        .grant_cache
                        .as_ref()
                        .and_then(|g| g.hits_by_accessor.get(&c.id).copied())
                        .unwrap_or(0),
                    cycles_self: cycles.self_cycles,
                    cycles_total: cycles.total_cycles,
                    last_core: c.last_core,
                }
            })
            .collect()
    }

    /// Renders the span profiler's folded call paths in collapsed-stack
    /// format — one `ROOT;CALLEE:entry;... self_cycles` line per unique
    /// path, directly consumable by `flamegraph.pl` or inferno. Empty
    /// when tracing is disabled (or no call completed yet).
    pub fn export_flamegraph(&mut self) -> String {
        self.pump_machine_events();
        let Some(tracer) = &self.tracer else {
            return String::new();
        };
        let mut out = String::new();
        for profiler in &tracer.spans {
            for (path, cycles) in profiler.folded() {
                let mut first = true;
                for frame in path {
                    if !first {
                        out.push(';');
                    }
                    first = false;
                    match *frame {
                        SpanFrame::Root(cid) => {
                            out.push_str(self.cubicle_frame_name(cid));
                        }
                        SpanFrame::Call(cid, entry) => {
                            out.push_str(self.cubicle_frame_name(cid));
                            out.push(':');
                            match self.entries.get(entry.index()) {
                                Some(d) => out.push_str(&d.name),
                                None => out.push_str(&entry.to_string()),
                            }
                        }
                    }
                }
                out.push(' ');
                out.push_str(&cycles.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// The display name of a cubicle for profile output (falls back to
    /// the raw id for out-of-range ids, e.g. a not-yet-loaded monitor).
    fn cubicle_frame_name(&self, cid: CubicleId) -> &str {
        self.cubicles
            .get(cid.index())
            .map_or("MONITOR", |c| c.name.as_str())
    }

    /// Moves machine-level events (retags, PKRU writes) that accumulated
    /// since the last pump into the trace buffer. Called automatically
    /// before every kernel-level event is appended, keeping the combined
    /// stream ordered by cycle stamp.
    fn pump_machine_events(&mut self) {
        if self.tracer.is_none() {
            return;
        }
        let core = self.machine.current_core();
        let Some(tracer) = &mut self.tracer else {
            return;
        };
        for ev in self.machine.drain_events() {
            match ev {
                MachineEvent::Retag { at, addr, from, to } => {
                    tracer.record(at, core, TraceEvent::Retag { addr, from, to });
                }
                MachineEvent::WrPkru { at, pkru } => {
                    tracer.record(at, core, TraceEvent::WrPkru { pkru });
                }
                MachineEvent::Unmap { at, addr, key } => {
                    tracer.record(at, core, TraceEvent::PageReclaim { addr, key });
                }
            }
        }
    }

    /// Appends a kernel-level event stamped with the current cycle count
    /// and core (no-op when tracing is disabled).
    fn trace_push(&mut self, event: TraceEvent) {
        if self.tracer.is_none() {
            return;
        }
        self.pump_machine_events();
        let at = self.machine.now();
        let core = self.machine.current_core();
        if let Some(tracer) = &mut self.tracer {
            tracer.record(at, core, event);
        }
    }

    /// Appends a fault-audit record (no-op when tracing is disabled).
    fn audit_push(&mut self, audit: FaultAudit) {
        if let Some(tracer) = &mut self.tracer {
            if tracer.audit.len() >= tracer.audit_capacity {
                tracer.audit.pop_front();
                tracer.audit_dropped += 1;
            }
            tracer.audit.push_back(audit);
        }
    }

    /// Enables MPK tag virtualisation (paper §8): more than 15 isolated
    /// cubicles share the hardware's keys. Physical keys 1–14 form a
    /// binding pool (key 15 is reserved as the inaccessible "parked"
    /// tag); entering a parked cubicle binds it, evicting the
    /// least-recently-used binding and retagging the evicted key's pages
    /// to parked — each at full `pkey_mprotect` cost. Call before
    /// loading components.
    pub fn enable_key_virtualisation(&mut self) {
        if self.key_virt.is_none() {
            self.key_virt = Some(KeyVirt {
                bindings: (1..PARKED_KEY.raw())
                    .map(|k| (ProtKey::new(k).expect("in range"), None))
                    .collect(),
                tick: 0,
                evictions: 0,
            });
        }
    }

    /// Number of key-binding evictions performed by the virtualisation
    /// layer (0 when virtualisation is off or never needed).
    pub fn key_evictions(&self) -> u64 {
        self.key_virt.as_ref().map_or(0, |kv| kv.evictions)
    }

    /// Binds `cid` to a physical key if it is parked. No-op without
    /// virtualisation (keys are permanent then).
    fn ensure_bound(&mut self, cid: CubicleId) {
        let Some(kv) = &mut self.key_virt else { return };
        kv.tick += 1;
        let tick = kv.tick;
        if self.cubicles[cid.index()].key != PARKED_KEY {
            // refresh the LRU stamp of the existing binding
            let key = self.cubicles[cid.index()].key;
            if let Some(slot) = kv.bindings.iter_mut().find(|(k, _)| *k == key) {
                if let Some((bound, t)) = &mut slot.1 {
                    if *bound == cid && !self.cubicles[cid.index()].shared {
                        *t = tick;
                    }
                }
            }
            return;
        }
        // find a free physical key, or evict the least recently used
        // binding that is neither pinned (shared) nor currently running
        let active: Vec<CubicleId> = self.call_stack.iter().map(|f| f.cubicle).collect();
        let slot_idx = kv
            .bindings
            .iter()
            .position(|(_, b)| b.is_none())
            .unwrap_or_else(|| {
                kv.bindings
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, b))| {
                        b.is_some_and(|(c, t)| t != u64::MAX && !active.contains(&c))
                    })
                    .min_by_key(|(_, (_, b))| b.expect("filtered").1)
                    .map(|(i, _)| i)
                    .expect("at least one evictable binding")
            });
        let (phys, prev) = kv.bindings[slot_idx];
        kv.bindings[slot_idx].1 = Some((cid, tick));
        if let Some((evicted, _)) = prev {
            kv.evictions += 1;
            self.cubicles[evicted.index()].key = PARKED_KEY;
            // all pages currently tagged with the physical key are parked;
            // trap-and-map will lazily fault them back in for whoever is
            // authorised (each retag at pkey_mprotect cost)
            for page in self.machine.pages_with_key(phys) {
                self.machine
                    .set_page_key(page.base(), PARKED_KEY)
                    .expect("page exists");
            }
        }
        self.cubicles[cid.index()].key = phys;
    }

    /// Sets a platform overhead charged on every (non-merged)
    /// cross-component call, in any mode.
    ///
    /// The paper's Unikraft-on-Linux baseline is 2.8× slower than native
    /// Linux (Fig. 10a) because the user-level library OS pays a shim /
    /// platform path on each OS interaction that the in-kernel Linux
    /// implementation does not. Harnesses model that single factor here:
    /// the "Linux" baseline runs with tax 0, all Unikraft-derived
    /// configurations (including CubicleOS) with the calibrated value.
    pub fn set_boundary_tax(&mut self, cycles: u64) {
        self.boundary_tax = cycles;
    }

    // =====================================================================
    // Cross-call cycle watchdog
    // =====================================================================

    /// Arms (or with `None` disarms) the cross-call cycle watchdog: a
    /// callee whose frame runs past `cycles` simulated cycles is
    /// quarantined mid-call through the fault-containment machinery and
    /// the call chain unwinds; with containment enabled
    /// ([`System::set_fault_containment`]) the nearest healthy caller
    /// receives `-ETIMEDOUT`.
    ///
    /// The watchdog fires from the monitor's own entry points (checked
    /// memory accesses, allocation, nested cross-calls) — the places a
    /// spinning component must pass through to observe anything. It
    /// never charges simulated cycles; disarmed (the default) it costs
    /// one branch per monitor entry.
    pub fn set_cycle_budget(&mut self, cycles: Option<u64>) {
        self.cycle_budget = cycles;
        if !self.watchdog_armed() {
            self.machine.set_cycle_alarm(None);
        }
    }

    /// Overrides the watchdog budget for one `caller → callee` edge
    /// (`None` removes the override, falling back to the default
    /// budget). Takes effect on the next call over the edge.
    pub fn set_edge_cycle_budget(
        &mut self,
        caller: CubicleId,
        callee: CubicleId,
        cycles: Option<u64>,
    ) {
        match cycles {
            Some(c) => {
                self.edge_budgets.insert((caller, callee), c);
            }
            None => {
                self.edge_budgets.remove(&(caller, callee));
            }
        }
        if !self.watchdog_armed() {
            self.machine.set_cycle_alarm(None);
        }
    }

    /// Is any watchdog budget configured?
    fn watchdog_armed(&self) -> bool {
        self.cycle_budget.is_some() || !self.edge_budgets.is_empty()
    }

    /// The budget applying to one edge: the per-edge override, or the
    /// default.
    fn budget_for(&self, caller: CubicleId, callee: CubicleId) -> Option<u64> {
        self.edge_budgets
            .get(&(caller, callee))
            .copied()
            .or(self.cycle_budget)
    }

    /// Re-arms the machine's cycle alarm to the earliest in-flight
    /// frame deadline.
    fn refresh_cycle_alarm(&mut self) {
        let next = self.call_stack.iter().filter_map(|f| f.deadline).min();
        self.machine.set_cycle_alarm(next);
    }

    /// Watchdog poll, called on every monitor entry. The fast path is a
    /// single branch on the machine's cycle alarm.
    #[inline]
    fn watchdog_check(&mut self) -> Result<()> {
        if !self.machine.cycle_alarm_expired() {
            return Ok(());
        }
        self.watchdog_trip()
    }

    /// Cold path of [`System::watchdog_check`]: quarantines the cubicle
    /// of the innermost expired frame and fails the in-flight call.
    fn watchdog_trip(&mut self) -> Result<()> {
        let now = self.machine.now();
        let Some(idx) = self
            .call_stack
            .iter()
            .rposition(|f| f.deadline.is_some_and(|d| d <= now))
        else {
            // Stale alarm (the deadline's frame already returned).
            self.refresh_cycle_alarm();
            return Ok(());
        };
        let cubicle = self.call_stack[idx].cubicle;
        let budget = self.call_stack[idx]
            .deadline
            .map_or(0, |d| now.saturating_sub(d));
        let overrun = budget;
        self.call_stack[idx].deadline = None;
        self.refresh_cycle_alarm();
        self.stats.watchdog_trips += 1;
        self.quarantine_for(
            cubicle,
            format!(
                "watchdog: {} exceeded its cross-call cycle budget ({overrun} cycle(s) over)",
                self.cubicles[cubicle.index()].name
            ),
        );
        if cubicle.index() < self.cubicles.len() {
            self.cubicles[cubicle.index()].timed_out = true;
        }
        Err(CubicleError::CycleBudgetExceeded { cubicle })
    }

    // =====================================================================
    // Introspection
    // =====================================================================

    /// The isolation mode this kernel runs in.
    pub fn mode(&self) -> IsolationMode {
        self.mode
    }

    /// Read-only view of the machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access for *seeded-corruption tests* of
    /// [`System::audit`]: tests reach around the kernel's bookkeeping to
    /// break an invariant, then assert the auditor reports it. Never a
    /// legitimate kernel path — `cubicle-verify` bans the name in
    /// component sources just like the privileged `Machine` API itself.
    #[doc(hidden)]
    pub fn corrupt_machine_for_test(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Overrides a cubicle's key assignment for *seeded-corruption
    /// tests* of [`System::audit`] (see
    /// [`System::corrupt_machine_for_test`]).
    #[doc(hidden)]
    pub fn corrupt_cubicle_key_for_test(&mut self, cid: CubicleId, key: ProtKey) {
        self.cubicles[cid.index()].key = key;
    }

    /// Marks a cubicle quarantined *without* running the teardown, for
    /// *seeded-corruption tests* of the [`System::audit`] quarantine pass
    /// (see [`System::corrupt_machine_for_test`]).
    #[doc(hidden)]
    pub fn corrupt_quarantine_for_test(&mut self, cid: CubicleId) {
        self.cubicles[cid.index()].state = crate::cubicle::CubicleState::Quarantined;
    }

    /// Feeds CubicleSan a page-metadata write performed *with* the lock
    /// held — the well-behaved half of the seeded lock-elision
    /// experiment (see [`System::corrupt_machine_for_test`] for the
    /// `*_for_test` convention; `cubicle-verify` bans the name in
    /// component sources).
    #[doc(hidden)]
    pub fn san_probe_locked_for_test(&mut self) {
        let start = self.lock_acquire(MonitorLock::PageMeta);
        self.race_note(
            RaceObject::PageMeta,
            true,
            "san_probe:page_meta.locked_write",
        );
        self.lock_release(MonitorLock::PageMeta, start);
    }

    /// Feeds CubicleSan a page-metadata write with the lock acquire
    /// *elided* — the seeded mutation: issued on a different core with
    /// no intervening lock operations, this is exactly the access pair
    /// the detector must report.
    #[doc(hidden)]
    pub fn san_probe_elided_for_test(&mut self) {
        self.race_note(
            RaceObject::PageMeta,
            true,
            "san_probe:page_meta.elided_write",
        );
    }

    /// Simulated cycle counter.
    pub fn now(&self) -> u64 {
        self.machine.now()
    }

    /// Charges simulated compute cycles (component work that does not
    /// touch simulated memory).
    pub fn charge(&mut self, cycles: u64) {
        self.machine.charge(cycles);
    }

    /// Kernel counters.
    pub fn stats(&self) -> &SysStats {
        &self.stats
    }

    /// Machine counters.
    pub fn machine_stats(&self) -> MachineStats {
        self.machine.stats()
    }

    /// Enables or disables the simulator's software TLB (host-side
    /// acceleration only — simulated behaviour is identical either way).
    pub fn set_tlb_enabled(&mut self, enabled: bool) {
        self.machine.set_tlb_enabled(enabled);
    }

    /// Whether the simulator's software TLB is enabled.
    pub fn tlb_enabled(&self) -> bool {
        self.machine.tlb_enabled()
    }

    // =====================================================================
    // Multi-core simulation
    // =====================================================================

    /// Reconfigures the machine to `n` simulated cores (each with its own
    /// PKRU, TLB and cycle counter) and switches to core 0. `n == 1`
    /// restores the plain single-core machine, whose cycle counts are
    /// bit-identical to a build that never heard of cores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or a cross-call chain is in flight —
    /// reconfiguring cores mid-call would strand frames on a core that
    /// no longer exists.
    pub fn set_num_cores(&mut self, n: usize) {
        assert!(
            self.call_stack.is_empty(),
            "cannot reconfigure cores while a cross-call chain is in flight"
        );
        self.pump_machine_events();
        self.machine.set_num_cores(n);
    }

    /// Number of simulated cores (1 unless [`System::set_num_cores`]
    /// grew the machine).
    pub fn num_cores(&self) -> usize {
        self.machine.num_cores()
    }

    /// The simulated core currently executing.
    pub fn current_core(&self) -> usize {
        self.machine.current_core()
    }

    /// Switches execution to core `i`. Only legal between top-level
    /// operations: whole cross-call chains run on one core, and the
    /// monitor's serialisation order is the order in which cores issue
    /// their operations.
    ///
    /// Pending machine events are pumped first so trace records keep the
    /// core that actually produced them.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or a cross-call chain is in flight.
    pub fn switch_to_core(&mut self, i: usize) {
        assert!(
            self.call_stack.is_empty(),
            "cannot switch cores while a cross-call chain is in flight"
        );
        self.pump_machine_events();
        self.machine.switch_to_core(i);
        if let Some(race) = &mut self.race {
            race.on_dispatch(i);
        }
    }

    /// Core `i`'s cycle counter (its private simulated clock).
    pub fn core_cycles(&self, i: usize) -> u64 {
        self.machine.core_cycles(i)
    }

    /// The furthest-ahead core clock — the simulated makespan of a
    /// multi-core run.
    pub fn max_core_cycles(&self) -> u64 {
        self.machine.max_core_cycles()
    }

    /// Core `i`'s private event counters (TLB hits/misses, cross-calls,
    /// PKRU writes).
    pub fn core_stats(&self, i: usize) -> CoreStats {
        self.machine.core_stats(i)
    }

    /// Counters for every monitor lock, in [`MonitorLock::all`] order.
    pub fn monitor_lock_stats(&self) -> Vec<MonitorLockStats> {
        MonitorLock::all()
            .into_iter()
            .map(|l| {
                let st = &self.locks.locks[l as usize];
                MonitorLockStats {
                    name: l.name(),
                    acquisitions: st.acquisitions,
                    contended: st.contended,
                    wait_cycles: st.wait_cycles,
                }
            })
            .collect()
    }

    /// Acquires a monitor lock in simulated time, charging a spin-wait
    /// if a core holds it in an overlapping simulated interval, and
    /// returns the section's start stamp for [`System::lock_release`].
    ///
    /// Host execution is sequential, so the lock models contention
    /// rather than enforcing mutual exclusion: a core whose clock sits
    /// before the last release spins until `free_at`. On a single-core
    /// run the clock is monotonic across sections, so no acquisition
    /// ever waits and cycle counts are untouched.
    fn lock_acquire(&mut self, lock: MonitorLock) -> u64 {
        let now = self.machine.now();
        let st = &mut self.locks.locks[lock as usize];
        st.acquisitions += 1;
        if st.free_at > now {
            let wait = st.free_at - now;
            st.contended += 1;
            st.wait_cycles += wait;
            self.machine.charge(wait);
        }
        if let Some(race) = &mut self.race {
            let delta = race.on_acquire(self.machine.current_core(), lock);
            self.stats.apply_race_delta(delta);
        }
        self.machine.now()
    }

    /// Releases a monitor lock acquired at `start`, recording the
    /// critical section for the audit's concurrency pass.
    fn lock_release(&mut self, lock: MonitorLock, start: u64) {
        let end = self.machine.now();
        let st = &mut self.locks.locks[lock as usize];
        st.free_at = end;
        if st.sections.len() >= LOCK_SECTION_CAP {
            st.sections.pop_front();
        }
        st.sections.push_back((start, end));
        if let Some(race) = &mut self.race {
            race.on_release(self.machine.current_core(), lock);
        }
    }

    /// Feeds CubicleSan one access to a protected monitor structure,
    /// tagged with its lexical site. A no-op (and no cycle charge) when
    /// detection is off; see [`System::set_race_detection`].
    fn race_note(&mut self, object: RaceObject, write: bool, site: &'static str) {
        if let Some(race) = &mut self.race {
            let delta = race.on_access(self.machine.current_core(), object, write, site);
            self.stats.apply_race_delta(delta);
        }
    }

    /// Enables or disables CubicleSan, the monitor's dynamic race
    /// detector: per-core vector clocks advanced on dispatch and lock
    /// acquire/release, Eraser-style lockset tracking for every access
    /// to the four lock-protected structures, and a lock-order graph
    /// that records the first cycle. Enabling resets any prior history.
    ///
    /// The detector is a pure observer — it never charges simulated
    /// cycles, so clock values are bit-identical with detection on or
    /// off; only host wall time changes.
    pub fn set_race_detection(&mut self, on: bool) {
        self.race = if on {
            Some(Box::new(RaceDetector::new()))
        } else {
            None
        };
    }

    /// Is CubicleSan currently enabled?
    pub fn race_detection_enabled(&self) -> bool {
        self.race.is_some()
    }

    /// Race reports recorded by CubicleSan (deduplicated by site pair,
    /// capped); empty when detection is off.
    pub fn race_reports(&self) -> &[RaceReport] {
        self.race.as_ref().map_or(&[], |r| r.reports())
    }

    /// Distinct lock-order edges CubicleSan has observed (0 when off).
    pub fn lockorder_edges(&self) -> u64 {
        self.race.as_ref().map_or(0, |r| r.lockorder_edges())
    }

    /// The first lock-order cycle CubicleSan found, rendered as
    /// `a -> b -> a`; `None` means acyclic so far (or detection off).
    pub fn lockorder_cycle(&self) -> Option<&str> {
        self.race.as_ref().and_then(|r| r.lockorder_cycle())
    }

    /// Eraser lockset violations recorded by CubicleSan (at most one per
    /// protected structure); empty when detection is off.
    pub fn lockset_violations(&self) -> Vec<String> {
        self.race.as_ref().map_or_else(Vec::new, |r| {
            r.violations().iter().map(|v| v.to_string()).collect()
        })
    }

    /// Hands out a stack for a cross-call entering `cid`, from the
    /// cubicle's re-entrancy pool. Returns the slot index, or `None`
    /// when pooling is inactive (single core, non-MPK mode, the monitor,
    /// or a cubicle without a stack) and the primary stack serves as
    /// always.
    ///
    /// Slot 0 mirrors the primary stack; a fresh stack is mapped (and
    /// charged at `pkey_mprotect` per page, like any mapping) only when
    /// every pooled slot is busy at the current simulated time — i.e.
    /// when entries on several cores genuinely overlap in simulated
    /// time.
    fn stack_acquire(&mut self, cid: CubicleId) -> Option<usize> {
        if self.machine.num_cores() == 1
            || !self.mode.mpk_active()
            || cid == CubicleId::MONITOR
            || self.cubicles[cid.index()].stack_len == 0
        {
            if cid != CubicleId::MONITOR && cid.index() < self.cubicles.len() {
                self.cubicles[cid.index()].last_core = self.machine.current_core() as u32;
            }
            return None;
        }
        let now = self.machine.now();
        let core = self.machine.current_core() as u32;
        let (key, len) = {
            let c = &mut self.cubicles[cid.index()];
            c.last_core = core;
            if c.stack_pool.is_empty() {
                // Lazily seed slot 0 with the primary stack.
                let slot = StackSlot {
                    base: c.stack_base,
                    len: c.stack_len,
                    busy_until: 0,
                };
                c.stack_pool.push(slot);
            }
            if let Some(i) = c.stack_pool.iter().position(|s| s.busy_until <= now) {
                c.stack_pool[i].busy_until = u64::MAX;
                return Some(i);
            }
            (c.key, c.stack_len)
        };
        // Every pooled stack is busy at `now`: map and tag a fresh one,
        // charged like any runtime mapping (`pkey_mprotect` per page).
        let pages = len.div_ceil(PAGE_SIZE);
        let retag_cost = self.machine.cost_model().pkey_mprotect * pages as u64;
        self.machine.charge(retag_cost);
        let base = self.map_fresh(pages, key, PageFlags::rw(), cid, RegionType::Stack);
        let c = &mut self.cubicles[cid.index()];
        c.stack_pool.push(StackSlot {
            base,
            len,
            busy_until: u64::MAX,
        });
        Some(c.stack_pool.len() - 1)
    }

    /// In-flight frames of `cid` currently holding a pooled stack slot
    /// (the audit cross-checks them against live pool slots).
    pub(crate) fn live_pool_frames(&self, cid: CubicleId) -> usize {
        self.call_stack
            .iter()
            .filter(|f| f.cubicle == cid && f.stack_slot.is_some())
            .count()
    }

    /// Returns a pooled stack slot at frame exit; the slot becomes free
    /// for entries whose simulated time is past the exit stamp.
    fn stack_release(&mut self, cid: CubicleId, slot: Option<usize>) {
        let Some(i) = slot else { return };
        let now = self.machine.now();
        if let Some(s) = self.cubicles[cid.index()].stack_pool.get_mut(i) {
            s.busy_until = now;
        }
    }

    /// The cubicle currently executing (the monitor during boot).
    pub fn current_cubicle(&self) -> CubicleId {
        self.call_stack
            .last()
            .map_or(CubicleId::MONITOR, |f| f.cubicle)
    }

    /// The cubicle that called the currently executing one (useful for
    /// allocator components that grant memory to their caller).
    pub fn caller_cubicle(&self) -> CubicleId {
        if self.call_stack.len() >= 2 {
            self.call_stack[self.call_stack.len() - 2].cubicle
        } else {
            CubicleId::MONITOR
        }
    }

    /// Name of a cubicle.
    ///
    /// # Panics
    ///
    /// Panics for an ID never returned by this kernel.
    pub fn cubicle_name(&self, cid: CubicleId) -> &str {
        &self.cubicles[cid.index()].name
    }

    /// The record of a cubicle (state, generation, key, regions).
    ///
    /// # Panics
    ///
    /// Panics for an ID never returned by this kernel.
    pub fn cubicle(&self, cid: CubicleId) -> &Cubicle {
        &self.cubicles[cid.index()]
    }

    /// Finds a cubicle by name.
    pub fn find_cubicle(&self, name: &str) -> Option<CubicleId> {
        self.cubicles.iter().find(|c| c.name == name).map(|c| c.id)
    }

    /// Iterates over all cubicles.
    pub fn cubicles(&self) -> impl Iterator<Item = &Cubicle> {
        self.cubicles.iter()
    }

    /// The owner of the page containing `addr`, if mapped.
    pub fn page_owner(&self, addr: VAddr) -> Option<CubicleId> {
        self.page_meta.get(&addr.page()).map(|m| m.owner)
    }

    /// Takes a measurement snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            cycles: self.machine.now(),
            stats: self.stats.clone(),
            machine: self.machine.stats(),
        }
    }

    /// Marks the end of boot; [`System::since_boot`] reports counters
    /// accumulated afterwards.
    pub fn mark_boot_complete(&mut self) {
        self.boot = Some(self.snapshot());
    }

    /// Cycles and kernel counters since [`System::mark_boot_complete`]
    /// (or since creation if boot was never marked).
    pub fn since_boot(&self) -> (u64, SysStats) {
        match &self.boot {
            Some(snap) => (
                self.machine.now() - snap.cycles,
                self.stats.since(&snap.stats),
            ),
            None => (self.machine.now(), self.stats.clone()),
        }
    }

    // =====================================================================
    // Loader (paper §5.4)
    // =====================================================================

    /// Loads a component into a fresh cubicle.
    ///
    /// Performs the loader's integrity duties: scans the code image for
    /// forbidden `wrpkru`/`syscall` sequences, verifies that every export
    /// was signed by the trusted builder, maps code execute-only and data
    /// read-write (W^X), tags all pages with the cubicle's fresh MPK key,
    /// populates the page metadata map and registers one trampoline per
    /// public entry.
    ///
    /// # Errors
    ///
    /// [`CubicleError::ForbiddenInstruction`],
    /// [`CubicleError::UntrustedTrampoline`], [`CubicleError::OutOfKeys`],
    /// [`CubicleError::TooManyCubicles`], or a duplicate-symbol error.
    pub fn load(
        &mut self,
        image: ComponentImage,
        state: Box<dyn Component>,
    ) -> Result<LoadedComponent> {
        if self.cubicles.len() >= 64 {
            return Err(CubicleError::TooManyCubicles);
        }
        let cid = CubicleId(self.cubicles.len() as u16);
        let key = match &mut self.key_virt {
            None => {
                // Keys parked by quarantined cubicles are recycled first.
                if let Some(key) = self.free_keys.pop() {
                    key
                } else if self.next_key as usize >= NUM_KEYS {
                    return Err(CubicleError::OutOfKeys);
                } else {
                    let key = ProtKey::new(self.next_key).expect("bounded above");
                    self.next_key += 1;
                    key
                }
            }
            Some(kv) => {
                // virtualised: hand out pool keys while they last; shared
                // cubicles pin theirs (they must stay reachable from
                // every PKRU set), isolated ones start parked when the
                // pool is exhausted and bind on first entry.
                match kv.bindings.iter_mut().find(|(_, b)| b.is_none()) {
                    Some(slot) => {
                        let tick = if image.shared { u64::MAX } else { 0 };
                        slot.1 = Some((cid, tick));
                        slot.0
                    }
                    None if image.shared => return Err(CubicleError::OutOfKeys),
                    None => PARKED_KEY,
                }
            }
        };
        let cubicle = Cubicle::new(cid, image.name.clone(), key, image.shared);
        self.cubicles.push(cubicle);
        self.install(image, state, cid)
    }

    /// Loads a component into an *existing* cubicle (same key, same
    /// protection domain). This builds the merged configurations of
    /// Figure 9a (e.g. `CORE+RAMFS` sharing one compartment).
    ///
    /// # Errors
    ///
    /// Same as [`System::load`].
    pub fn load_into(
        &mut self,
        image: ComponentImage,
        state: Box<dyn Component>,
        cid: CubicleId,
    ) -> Result<LoadedComponent> {
        if cid.index() >= self.cubicles.len() {
            return Err(CubicleError::InvalidArgument("load_into: no such cubicle"));
        }
        self.install(image, state, cid)
    }

    fn install(
        &mut self,
        image: ComponentImage,
        state: Box<dyn Component>,
        cid: CubicleId,
    ) -> Result<LoadedComponent> {
        // Rule: refuse code containing instructions that would undermine
        // the isolation mechanisms. The early-exit scan decides the
        // verdict; the exhaustive scan feeds the audit log so operators
        // see *every* occurrence, not just the first.
        if let Some(bad) = image.code.scan_forbidden() {
            let hits = image.code.scan_all();
            self.stats.loads_rejected += 1;
            self.stats.forbidden_insns += hits.len() as u64;
            if self.loader_audit.len() < LOADER_AUDIT_CAP {
                let (off, first) = hits.first().copied().expect("fast path found one");
                self.loader_audit.push(format!(
                    "loader: image `{}` rejected: {} forbidden occurrence(s), first `{first}` at +{off:#x}",
                    image.name,
                    hits.len(),
                ));
            }
            // roll back an empty cubicle created by `load`
            return Err(CubicleError::ForbiddenInstruction(bad));
        }
        // Rule: trampolines must come from the trusted builder.
        for (signed, _) in &image.exports {
            if !self.verifier.verify(signed) {
                return Err(CubicleError::UntrustedTrampoline {
                    entry: signed.decl.name.clone(),
                });
            }
        }
        for (signed, _) in &image.exports {
            if self.entry_names.contains_key(&signed.decl.name) {
                return Err(CubicleError::DuplicateSymbol(signed.decl.name.clone()));
            }
        }

        let reload = ReloadInfo {
            cid,
            code: image.code.clone(),
            data_pages: image.data_pages,
            heap_pages: image.heap_pages,
            stack_pages: image.stack_pages,
        };
        self.map_component_segments(&reload);

        // Register the component, its reload image and its trampolines.
        let slot = self.components.len();
        self.components.push(Some(state));
        self.reloads.push(reload);
        self.component_names.push(image.name.clone());
        let mut entries = HashMap::new();
        for (signed, func) in image.exports {
            let id = EntryId(self.entries.len() as u32);
            self.entries.push(EntryDesc {
                name: signed.decl.name.clone(),
                cubicle: cid,
                slot,
                func,
                stack_arg_bytes: signed.decl.stack_arg_bytes(),
            });
            self.entry_names.insert(signed.decl.name.clone(), id);
            entries.insert(signed.decl.name, id);
        }
        Ok(LoadedComponent { cid, slot, entries })
    }

    /// Maps one component's code/data/heap/stack segments into its
    /// cubicle. Shared by [`System::install`] and the microreboot path
    /// ([`System::restart`]), which replays the same layout into fresh
    /// pages.
    fn map_component_segments(&mut self, info: &ReloadInfo) {
        let cid = info.cid;
        let key = self.cubicles[cid.index()].key;

        // Map code pages: write the image through a temporary RW mapping,
        // then flip to execute-only (W^X).
        let code_pages = info.code.len().div_ceil(PAGE_SIZE).max(1);
        let code_base = self.map_fresh(code_pages, key, PageFlags::rw(), cid, RegionType::Code);
        let mut off = 0;
        for chunk in info.code.bytes().chunks(PAGE_SIZE) {
            self.machine
                .write(code_base + off, chunk)
                .expect("loader writes its own fresh mapping");
            off += chunk.len();
        }
        for page in 0..code_pages {
            self.machine
                .set_page_flags(code_base + page * PAGE_SIZE, PageFlags::x())
                .expect("just mapped");
        }

        // Global data, heap and stack.
        if info.data_pages > 0 {
            self.map_fresh(
                info.data_pages,
                key,
                PageFlags::rw(),
                cid,
                RegionType::GlobalData,
            );
        }
        if info.heap_pages > 0 {
            // Heap accounting (heap_pages_granted inside map_fresh, the
            // sub-allocator region list) is ledger state: restart replays
            // race with concurrent heap_alloc calls on other cores.
            let start = self.lock_acquire(MonitorLock::Ledger);
            let heap_base =
                self.map_fresh(info.heap_pages, key, PageFlags::rw(), cid, RegionType::Heap);
            self.race_note(
                RaceObject::Ledger,
                true,
                "map_component_segments:heap.add_region",
            );
            self.cubicles[cid.index()] // verify: lock-held(ledger)
                .heap
                .add_region(heap_base, info.heap_pages * PAGE_SIZE);
            self.lock_release(MonitorLock::Ledger, start);
        }
        if info.stack_pages > 0 {
            let stack_base = self.map_fresh(
                info.stack_pages,
                key,
                PageFlags::rw(),
                cid,
                RegionType::Stack,
            );
            let c = &mut self.cubicles[cid.index()];
            c.stack_base = stack_base;
            c.stack_len = info.stack_pages * PAGE_SIZE;
        }
    }

    fn map_fresh(
        &mut self,
        pages: usize,
        key: ProtKey,
        flags: PageFlags,
        owner: CubicleId,
        region: RegionType,
    ) -> VAddr {
        let base = VAddr::new(self.next_page * PAGE_SIZE as u64);
        // +1: keep an unmapped guard page between regions so overruns
        // fault instead of silently touching a neighbour.
        self.next_page += pages as u64 + 1;
        if region == RegionType::Heap {
            // Every heap-growing caller (heap_alloc_locked, the restart
            // replay in map_component_segments) holds the ledger lock
            // around this call.
            self.race_note(RaceObject::Ledger, true, "map_fresh:heap_pages_granted");
            self.cubicles[owner.index()].heap_pages_granted += pages; // verify: lock-held(ledger)
        }
        let start = self.lock_acquire(MonitorLock::PageMeta);
        self.race_note(RaceObject::PageMeta, true, "map_fresh:page_meta.insert");
        for i in 0..pages {
            let addr = base + i * PAGE_SIZE;
            self.machine.map_page(addr, key, flags);
            self.page_meta.insert(
                addr.page(),
                PageMeta {
                    owner,
                    region,
                    holder: owner,
                    via: None,
                },
            );
        }
        self.lock_release(MonitorLock::PageMeta, start);
        base
    }

    // =====================================================================
    // Cross-cubicle calls (paper §5.5)
    // =====================================================================

    /// Resolves a public entry point by symbol name.
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchEntry`] when the symbol was never exported —
    /// the control-flow-integrity guarantee: there is no way to transfer
    /// control across cubicles except through registered trampolines.
    pub fn entry(&self, name: &str) -> Result<EntryId> {
        self.entry_names
            .get(name)
            .copied()
            .ok_or_else(|| CubicleError::NoSuchEntry(name.into()))
    }

    /// Runs `f` against the state of the component in `slot`, downcast to
    /// `T`. A trusted-boot/diagnostic facility (mount tables, console
    /// logs); components themselves must interact via
    /// [`System::cross_call`].
    ///
    /// Returns `None` when the slot is empty (component currently
    /// executing) or holds a different type.
    pub fn with_component_mut<T: Component, R>(
        &mut self,
        slot: usize,
        f: impl FnOnce(&mut T, &mut System) -> R,
    ) -> Option<R> {
        let mut comp = self.components.get_mut(slot)?.take()?;
        let out = comp.as_any_mut().downcast_mut::<T>().map(|t| f(t, self));
        self.components[slot] = Some(comp);
        out
    }

    /// Symbol name of a registered entry.
    pub fn entry_name(&self, entry: EntryId) -> Option<&str> {
        self.entries.get(entry.index()).map(|d| d.name.as_str())
    }

    /// Performs a cross-cubicle call through the entry's trampoline.
    ///
    /// Depending on the isolation mode this charges a plain call
    /// (Unikraft), the trampoline + PKRU switches (CubicleOS modes), or a
    /// marshalled message round trip (IPC baselines). The callee runs
    /// with its own cubicle's PKRU permission set; any access it makes to
    /// the caller's buffers goes through trap-and-map.
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchEntry`] for an unregistered entry,
    /// [`CubicleError::ReentrantCall`] for nested A→B→A calls,
    /// [`CubicleError::Quarantined`] when the callee (or the caller
    /// itself) has been quarantined, plus anything the callee itself
    /// returns. With fault containment enabled
    /// ([`System::set_fault_containment`]), containable callee faults do
    /// *not* surface as `Err`: the monitor unwinds them and the call
    /// returns `Ok(Value::I64(-errno))` at the first healthy boundary.
    pub fn cross_call(&mut self, entry: EntryId, args: &[Value]) -> Result<Value> {
        self.watchdog_check()?;
        let desc = self
            .entries
            .get(entry.index())
            .ok_or_else(|| CubicleError::NoSuchEntry(format!("{entry}")))?;
        let (func, callee, slot, stack_bytes) =
            (desc.func, desc.cubicle, desc.slot, desc.stack_arg_bytes);
        let caller = self.current_cubicle();
        // The trampoline refuses to transfer control into (or out of) a
        // quarantined cubicle — before the edge is even recorded.
        if self.cubicles[callee.index()].is_quarantined() {
            return Err(CubicleError::Quarantined { cubicle: callee });
        }
        if caller != callee && self.cubicles[caller.index()].is_quarantined() {
            return Err(CubicleError::Quarantined { cubicle: caller });
        }
        self.stats.record_edge(caller, callee);

        // Trace enter/exit around the whole dispatch so every recorded
        // Enter has a matching Exit — on error paths too — and the
        // histogram sample count always equals `SysStats::cross_calls`.
        let t0 = if self.tracer.is_some() {
            let t0 = self.machine.now();
            self.pump_machine_events();
            let core = self.machine.current_core();
            let (span, parent) = {
                let tracer = self.tracer.as_mut().expect("checked above");
                let span = tracer.next_span;
                tracer.next_span += 1;
                (span, tracer.current_span(core))
            };
            self.trace_push(TraceEvent::CrossCallEnter {
                span,
                parent,
                caller,
                callee,
                entry,
            });
            Some((t0, span))
        } else {
            None
        };
        let result = self.cross_call_inner(func, caller, callee, slot, stack_bytes, args);
        if let Some((t0, span)) = t0 {
            let cycles = self.machine.now() - t0;
            self.pump_machine_events();
            self.trace_push(TraceEvent::CrossCallExit {
                span,
                caller,
                callee,
                entry,
                cycles,
            });
            if let Some(tracer) = &mut self.tracer {
                tracer.metrics.record_call(caller, callee, entry, cycles);
            }
        }
        if self.fault_containment {
            self.contain_at_boundary(caller, callee, result)
        } else {
            result
        }
    }

    /// The unwind step of fault containment, applied at every cross-call
    /// boundary on the way out: a containable error keeps propagating as
    /// `Err` through frames of quarantined cubicles, and converts to a
    /// well-defined `Ok(Value::I64(-errno))` at the first boundary into a
    /// healthy caller. A successful return *from* a cubicle that was
    /// quarantined mid-call is overridden the same way — a faulting
    /// component's swallowed errors are not trusted.
    fn contain_at_boundary(
        &mut self,
        caller: CubicleId,
        callee: CubicleId,
        result: Result<Value>,
    ) -> Result<Value> {
        if caller == callee {
            // Merged components call each other directly (no trampoline):
            // there is no monitor boundary to convert at.
            return result;
        }
        let callee_quarantined = self.cubicles[callee.index()].is_quarantined();
        let (err, errno) = match &result {
            Err(e) => match e.contained_errno() {
                Some(errno) => (e.clone(), errno),
                None => return result, // caller bug; propagate unchanged
            },
            Ok(_) if callee_quarantined => {
                // Watchdog victims report ETIMEDOUT so callers can tell a
                // runaway callee apart from a memory fault.
                let errno = if self.cubicles[callee.index()].timed_out {
                    crate::errno::Errno::Etimedout
                } else {
                    crate::errno::Errno::Efault
                };
                (CubicleError::Quarantined { cubicle: callee }, errno)
            }
            Ok(_) => return result,
        };
        self.stats.unwound_frames += 1;
        if caller != CubicleId::MONITOR && self.cubicles[caller.index()].is_quarantined() {
            // Still inside the offender's call chain: keep unwinding.
            return Err(err);
        }
        self.stats.contained_faults += 1;
        let neg = errno.neg();
        self.containment_push(format!(
            "containment: unwound `{err}` to {} as {errno}",
            self.cubicles[caller.index()].name
        ));
        self.trace_push(TraceEvent::FaultContained {
            callee,
            caller,
            errno: neg,
        });
        Ok(Value::I64(neg))
    }

    /// Appends a line to the bounded containment log.
    fn containment_push(&mut self, line: String) {
        if self.containment_log.len() < CONTAINMENT_LOG_CAP {
            self.containment_log.push(line);
        }
    }

    /// Records a crash-recovery milestone: bumps the matching
    /// [`SysStats`] counters and appends a line to the bounded recovery
    /// log rendered by [`System::export_fault_audit`].
    pub fn record_recovery(&mut self, event: RecoveryEvent) {
        let line = match event {
            RecoveryEvent::WalReplay { frames, torn } => {
                self.stats.wal_replays += 1;
                self.stats.wal_frames_recovered += frames;
                if torn {
                    self.stats.wal_torn_tails_discarded += 1;
                }
                format!(
                    "recovery: wal replay applied {frames} frame(s){}",
                    if torn { ", torn tail discarded" } else { "" }
                )
            }
            RecoveryEvent::RamfsJournalReplay { records } => {
                self.stats.ramfs_journal_replays += 1;
                format!("recovery: ramfs journal replay restored {records} record(s)")
            }
            RecoveryEvent::GroupCommitBatch { commits } => {
                self.stats.group_commit_batches += 1;
                format!("recovery: group commit coalesced {commits} txn(s) into one sync")
            }
        };
        if self.recovery_log.len() < RECOVERY_LOG_CAP {
            self.recovery_log.push(line);
        }
    }

    /// Crash-recovery records (bounded), one line per replay / batch.
    pub fn recovery_log(&self) -> &[String] {
        &self.recovery_log
    }

    fn cross_call_inner(
        &mut self,
        func: EntryFn,
        caller: CubicleId,
        callee: CubicleId,
        slot: usize,
        stack_bytes: usize,
        args: &[Value],
    ) -> Result<Value> {
        let cost = *self.machine.cost_model();
        if caller == callee {
            // Components merged into one cubicle (Fig. 9a) call each
            // other directly: no trampoline, no PKRU switch, no message.
            self.machine.charge(cost.call);
            let mut comp = self.components[slot]
                .take()
                .ok_or(CubicleError::ReentrantCall(callee))?;
            // Merged components share one cubicle; the watchdog budget
            // applies to the cubicle as a whole, not intra-cubicle calls.
            self.call_stack.push(Frame {
                cubicle: callee,
                deadline: None,
                stack_slot: None,
            });
            let result = func(self, comp.as_mut(), args);
            self.call_stack.pop();
            self.components[slot] = Some(comp);
            return result;
        }
        self.machine.charge(self.boundary_tax);
        match self.mode {
            IsolationMode::Unikraft => {
                self.machine.charge(cost.call);
            }
            IsolationMode::Ipc(m) => {
                let bytes: usize = args.iter().map(|v| v.bytes_in() + v.bytes_out()).sum();
                self.machine.charge(m.fixed + m.per_byte * bytes as u64);
                self.stats.ipc_msgs += 2; // request + reply
                self.stats.ipc_bytes += bytes as u64;
            }
            _ => {
                self.machine.charge(cost.trampoline + cost.call);
                if stack_bytes > 0 {
                    // The trampoline copies stack-resident arguments
                    // between the per-cubicle stacks (read + write).
                    self.machine.charge(2 * cost.mem_access(stack_bytes));
                    self.stats.stack_bytes_copied += stack_bytes as u64;
                    if self.tracer.is_some() {
                        self.trace_push(TraceEvent::StackCopy {
                            caller,
                            callee,
                            bytes: stack_bytes,
                        });
                    }
                }
                if self.mode.mpk_active() {
                    self.ensure_bound(callee);
                    // Guard page enters the monitor domain, trampoline
                    // then drops to the callee's permission set.
                    self.machine.set_pkru(Pkru::allow_all());
                    let pkru = self.pkru_for(callee);
                    self.machine.set_pkru(pkru);
                }
            }
        }

        let mut comp = self.components[slot]
            .take()
            .ok_or(CubicleError::ReentrantCall(callee))?;
        self.machine.note_cross_call();
        let stack_slot = self.stack_acquire(callee);
        let deadline = self
            .budget_for(caller, callee)
            .map(|b| self.machine.now().saturating_add(b));
        self.call_stack.push(Frame {
            cubicle: callee,
            deadline,
            stack_slot,
        });
        if deadline.is_some() {
            self.refresh_cycle_alarm();
        }
        let result = func(self, comp.as_mut(), args);
        self.call_stack.pop();
        self.stack_release(callee, stack_slot);
        if self.watchdog_armed() {
            self.refresh_cycle_alarm();
        }
        self.components[slot] = Some(comp);

        match self.mode {
            IsolationMode::Unikraft | IsolationMode::Ipc(_) => {}
            _ => {
                self.machine.charge(cost.trampoline);
                if self.mode.mpk_active() {
                    self.machine.set_pkru(Pkru::allow_all());
                    let pkru = self.pkru_for(self.current_cubicle());
                    self.machine.set_pkru(pkru);
                }
            }
        }
        result
    }

    /// Convenience: resolve by name and call.
    ///
    /// # Errors
    ///
    /// See [`System::entry`] and [`System::cross_call`].
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value> {
        let entry = self.entry(name)?;
        self.cross_call(entry, args)
    }

    /// Dispatches a *batch* of invocations of `entry` under a single
    /// trampoline crossing: one boundary tax, one trampoline, one PKRU
    /// round-trip in and out (one vectored message under the IPC
    /// baseline), while per-invocation work — the call itself,
    /// stack-argument copies, everything the callee does — is still
    /// charged per element. A 1-element batch costs exactly what
    /// [`System::cross_call`] does.
    ///
    /// Fault attribution matches the unbatched path: elements execute in
    /// order and the first failing element aborts the batch with the
    /// same quarantine blast radius its unbatched call would have had.
    /// Without fault containment that element's error is returned
    /// unchanged; with containment the monitor unwinds it exactly like
    /// [`System::cross_call`] and the returned vector ends with the
    /// faulting element's `Value::I64(-errno)`, so callers see a short
    /// count plus the errno, writev-style.
    ///
    /// The batch appears as one edge crossing in [`SysStats`]
    /// (`cross_calls`, the per-edge histogram, one span when tracing);
    /// `batch_dispatches` / `batched_calls` count the amortisation.
    /// Components should take this path only when
    /// [`System::batching_enabled`] says the deployment opted in — the
    /// gate is what keeps feature-off runs bit-identical.
    ///
    /// # Errors
    ///
    /// See [`System::cross_call`]; an empty batch is a no-op.
    pub fn cross_call_batch(&mut self, entry: EntryId, batch: &[&[Value]]) -> Result<Vec<Value>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        self.watchdog_check()?;
        let desc = self
            .entries
            .get(entry.index())
            .ok_or_else(|| CubicleError::NoSuchEntry(format!("{entry}")))?;
        let (func, callee, slot, stack_bytes) =
            (desc.func, desc.cubicle, desc.slot, desc.stack_arg_bytes);
        let caller = self.current_cubicle();
        if self.cubicles[callee.index()].is_quarantined() {
            return Err(CubicleError::Quarantined { cubicle: callee });
        }
        if caller != callee && self.cubicles[caller.index()].is_quarantined() {
            return Err(CubicleError::Quarantined { cubicle: caller });
        }
        // One crossing: the whole batch is one edge sample and one span.
        self.stats.record_edge(caller, callee);
        self.stats.batch_dispatches += 1;
        self.stats.batched_calls += batch.len() as u64;

        let t0 = if self.tracer.is_some() {
            let t0 = self.machine.now();
            self.pump_machine_events();
            let core = self.machine.current_core();
            let (span, parent) = {
                let tracer = self.tracer.as_mut().expect("checked above");
                let span = tracer.next_span;
                tracer.next_span += 1;
                (span, tracer.current_span(core))
            };
            self.trace_push(TraceEvent::CrossCallEnter {
                span,
                parent,
                caller,
                callee,
                entry,
            });
            Some((t0, span))
        } else {
            None
        };
        let (mut values, status) =
            self.cross_call_batch_inner(func, caller, callee, slot, stack_bytes, batch);
        if let Some((t0, span)) = t0 {
            let cycles = self.machine.now() - t0;
            self.pump_machine_events();
            self.trace_push(TraceEvent::CrossCallExit {
                span,
                caller,
                callee,
                entry,
                cycles,
            });
            if let Some(tracer) = &mut self.tracer {
                tracer.metrics.record_call(caller, callee, entry, cycles);
            }
        }
        match status {
            Ok(()) => Ok(values),
            Err(e) if self.fault_containment => {
                // Same unwind machinery as the unbatched path; a
                // contained errno terminates the batch writev-style.
                match self.contain_at_boundary(caller, callee, Err(e)) {
                    Ok(v) => {
                        values.push(v);
                        Ok(values)
                    }
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// The dispatch half of [`System::cross_call_batch`]: charges the
    /// crossing once, then runs the elements in order. Returns the
    /// values accumulated before the terminal status.
    fn cross_call_batch_inner(
        &mut self,
        func: EntryFn,
        caller: CubicleId,
        callee: CubicleId,
        slot: usize,
        stack_bytes: usize,
        batch: &[&[Value]],
    ) -> (Vec<Value>, Result<()>) {
        let cost = *self.machine.cost_model();
        let mut values = Vec::with_capacity(batch.len());
        if caller == callee {
            // Merged components: plain calls, batching buys nothing.
            let mut comp = match self.components[slot].take() {
                Some(c) => c,
                None => return (values, Err(CubicleError::ReentrantCall(callee))),
            };
            self.call_stack.push(Frame {
                cubicle: callee,
                deadline: None,
                stack_slot: None,
            });
            let mut status = Ok(());
            for args in batch {
                self.machine.charge(cost.call);
                match func(self, comp.as_mut(), args) {
                    Ok(v) => values.push(v),
                    Err(e) => {
                        status = Err(e);
                        break;
                    }
                }
            }
            self.call_stack.pop();
            self.components[slot] = Some(comp);
            return (values, status);
        }
        self.machine.charge(self.boundary_tax);
        match self.mode {
            IsolationMode::Unikraft => {}
            IsolationMode::Ipc(m) => {
                // One vectored message each way carrying every element.
                let bytes: usize = batch
                    .iter()
                    .flat_map(|args| args.iter())
                    .map(|v| v.bytes_in() + v.bytes_out())
                    .sum();
                self.machine.charge(m.fixed + m.per_byte * bytes as u64);
                self.stats.ipc_msgs += 2;
                self.stats.ipc_bytes += bytes as u64;
            }
            _ => {
                // The amortisation: trampoline + PKRU round-trip once.
                self.machine.charge(cost.trampoline);
                if self.mode.mpk_active() {
                    self.ensure_bound(callee);
                    self.machine.set_pkru(Pkru::allow_all());
                    let pkru = self.pkru_for(callee);
                    self.machine.set_pkru(pkru);
                }
            }
        }

        let mut comp = match self.components[slot].take() {
            Some(c) => c,
            None => return (values, Err(CubicleError::ReentrantCall(callee))),
        };
        self.machine.note_cross_call();
        let stack_slot = self.stack_acquire(callee);
        let deadline = self
            .budget_for(caller, callee)
            .map(|b| self.machine.now().saturating_add(b));
        self.call_stack.push(Frame {
            cubicle: callee,
            deadline,
            stack_slot,
        });
        if deadline.is_some() {
            self.refresh_cycle_alarm();
        }
        let mut status = Ok(());
        for args in batch {
            // Per-element work is not amortised away.
            match self.mode {
                IsolationMode::Ipc(_) => {}
                IsolationMode::Unikraft => self.machine.charge(cost.call),
                _ => {
                    self.machine.charge(cost.call);
                    if stack_bytes > 0 {
                        self.machine.charge(2 * cost.mem_access(stack_bytes));
                        self.stats.stack_bytes_copied += stack_bytes as u64;
                        if self.tracer.is_some() {
                            self.trace_push(TraceEvent::StackCopy {
                                caller,
                                callee,
                                bytes: stack_bytes,
                            });
                        }
                    }
                }
            }
            match func(self, comp.as_mut(), args) {
                Ok(v) => {
                    if self.cubicles[callee.index()].is_quarantined() {
                        // Same rule as `contain_at_boundary`: a cubicle
                        // quarantined mid-call does not get its Ok
                        // trusted, and later elements could not have
                        // been dispatched into it anyway.
                        status = Err(CubicleError::Quarantined { cubicle: callee });
                        break;
                    }
                    values.push(v);
                }
                Err(e) => {
                    status = Err(e);
                    break;
                }
            }
        }
        self.call_stack.pop();
        self.stack_release(callee, stack_slot);
        if self.watchdog_armed() {
            self.refresh_cycle_alarm();
        }
        self.components[slot] = Some(comp);

        match self.mode {
            IsolationMode::Unikraft | IsolationMode::Ipc(_) => {}
            _ => {
                self.machine.charge(cost.trampoline);
                if self.mode.mpk_active() {
                    self.machine.set_pkru(Pkru::allow_all());
                    let pkru = self.pkru_for(self.current_cubicle());
                    self.machine.set_pkru(pkru);
                }
            }
        }
        (values, status)
    }

    /// Runs `f` in the execution context of `cid`, as if code inside that
    /// cubicle were executing. Used by test harnesses and by drivers that
    /// model the application's own code; ordinary inter-component control
    /// transfers must use [`System::cross_call`].
    pub fn run_in_cubicle<T>(&mut self, cid: CubicleId, f: impl FnOnce(&mut System) -> T) -> T {
        if self.mode.mpk_active() {
            self.ensure_bound(cid);
        }
        let stack_slot = self.stack_acquire(cid);
        self.call_stack.push(Frame {
            cubicle: cid,
            deadline: None,
            stack_slot,
        });
        if self.mode.mpk_active() {
            let pkru = self.pkru_for(cid);
            self.machine.set_pkru_at_load(pkru);
        }
        let out = f(self);
        self.call_stack.pop();
        self.stack_release(cid, stack_slot);
        if self.mode.mpk_active() {
            let pkru = self.pkru_for(self.current_cubicle());
            self.machine.set_pkru_at_load(pkru);
        }
        out
    }

    /// The PKRU permission set a cubicle executes with: its own key plus
    /// every shared cubicle's key (shared static data "is shared among
    /// all cubicles", paper §3). The monitor gets everything.
    pub fn pkru_for(&self, cid: CubicleId) -> Pkru {
        if cid == CubicleId::MONITOR {
            return Pkru::allow_all();
        }
        let mut pkru = Pkru::deny_all().allowing(self.cubicles[cid.index()].key);
        for c in &self.cubicles {
            if c.shared {
                pkru = pkru.allowing(c.key);
            }
        }
        pkru
    }

    // =====================================================================
    // Monitor: trap-and-map (paper §5.3, Fig. 4)
    // =====================================================================

    /// Trap-and-map entry: the monitor serialises fault resolution on
    /// the page-metadata lock (the map is read and its holder records
    /// mutated), then dispatches to the resolution logic.
    fn resolve_fault(&mut self, fault: Fault) -> Result<()> {
        let start = self.lock_acquire(MonitorLock::PageMeta);
        let result = self.resolve_fault_locked(fault);
        self.lock_release(MonitorLock::PageMeta, start);
        // Quarantines decided under the lock run after its release:
        // teardown takes the windows and ledger locks, which must never
        // nest under page_meta (see `pending_quarantine`).
        while let Some((cid, reason)) = self.pending_quarantine.pop() {
            self.quarantine_for(cid, reason);
        }
        result
    }

    fn resolve_fault_locked(&mut self, fault: Fault) -> Result<()> {
        // Only protection-key faults are subject to window authorisation.
        let FaultKind::ProtectionKey(_) = fault.kind else {
            return Err(self.deny_raw_fault(fault));
        };
        if !self.mode.mpk_active() {
            return Err(self.deny_raw_fault(fault));
        }
        let cost = *self.machine.cost_model();
        // ❶ the fault is captured by the monitor
        self.machine.charge(cost.trap);
        // ❷ O(1) page metadata lookup: owner + window descriptor array
        self.machine.charge(cost.page_meta_lookup);
        self.race_note(RaceObject::PageMeta, false, "resolve_fault:page_meta.get");
        let meta = match self.page_meta.get(&fault.addr.page()) {
            Some(m) => *m,
            None => return Err(self.deny_raw_fault(fault)),
        };
        let accessor = self.current_cubicle();
        if self.cubicles[accessor.index()].is_quarantined() {
            // Residual execution of a quarantined cubicle gets no new
            // grants — not even through still-open peer windows.
            return Err(CubicleError::Quarantined { cubicle: accessor });
        }
        let accessor_key = self.cubicles[accessor.index()].key;

        // Implicit window 0: the owner always reclaims its own pages
        // (lazily retagged back — causal tag consistency, §5.6).
        if meta.owner == accessor {
            self.retag(fault.addr, accessor_key)?;
            self.record_holder(fault.addr, accessor, None);
            self.stats.faults_resolved += 1;
            self.trace_fault(&fault, meta.owner, accessor, FaultDecision::OwnerReclaim);
            return Ok(());
        }

        // Ablation mode "w/o ACLs": windows are open for any access.
        if !self.mode.acls_active() {
            self.retag(fault.addr, accessor_key)?;
            self.record_holder(fault.addr, accessor, None);
            self.stats.faults_resolved += 1;
            self.trace_fault(&fault, meta.owner, accessor, FaultDecision::AclsDisabled);
            return Ok(());
        }

        // Window-grant cache: a repeat trap-and-map by the same accessor
        // over the same page reuses the grant that authorised it last
        // time, skipping the linear ACL search entirely. Soundness rests
        // on precise invalidation: every operation that can narrow the
        // remembered authority (window remove/close/close-all/destroy,
        // ownership transfer, quarantine, restart) drops the entry.
        if self.grant_cache.is_some() {
            let gstart = self.lock_acquire(MonitorLock::GrantCache);
            let cache_key = (accessor, fault.addr.page());
            self.race_note(
                RaceObject::GrantCache,
                false,
                "resolve_fault:grant_cache.get",
            );
            let cached = self
                .grant_cache
                .as_ref()
                .and_then(|c| c.map.get(&cache_key).copied());
            let mut hit = None;
            if let Some(entry) = cached {
                if entry.owner == meta.owner {
                    #[cfg(debug_assertions)]
                    {
                        // The invalidation rules above are what make the
                        // skip sound; cross-check them in debug builds.
                        let live = self.cubicles[meta.owner.index()]
                            .windows
                            .iter()
                            .find(|w| w.id() == entry.via)
                            .is_some_and(|w| {
                                let check = w.check(fault.addr, accessor);
                                check.covers && check.allowed
                            });
                        debug_assert!(
                            live,
                            "stale grant-cache entry survived invalidation: \
                             {accessor} over {} via {:?} of {}",
                            fault.addr, entry.via, meta.owner
                        );
                    }
                    self.race_note(
                        RaceObject::GrantCache,
                        true,
                        "resolve_fault:grant_cache.hit",
                    );
                    let cache = self.grant_cache.as_mut().unwrap();
                    *cache.hits_by_accessor.entry(accessor).or_insert(0) += 1;
                    self.stats.grant_cache_hits += 1;
                    hit = Some(entry.via);
                } else {
                    // Remembered owner is obsolete (ownership transferred
                    // under the entry): drop it and take the slow path.
                    self.race_note(
                        RaceObject::GrantCache,
                        true,
                        "resolve_fault:grant_cache.remove",
                    );
                    self.grant_cache.as_mut().unwrap().map.remove(&cache_key);
                    self.stats.grant_cache_invalidations += 1;
                }
            }
            self.lock_release(MonitorLock::GrantCache, gstart);
            if let Some(via) = hit {
                // A hit pays only the trap and the O(1) lookups already
                // charged above: the kernel retags the page through its
                // cached mapping without a fresh `pkey_mprotect`
                // round-trip (the remembered grant proves the ACL still
                // authorises the access).
                self.machine
                    .set_page_key_cached(fault.addr, accessor_key)
                    .map_err(CubicleError::MachineFault)?;
                self.record_holder(fault.addr, accessor, Some(via));
                self.stats.faults_resolved += 1;
                self.trace_fault(&fault, meta.owner, accessor, FaultDecision::Window(via));
                return Ok(());
            }
        }

        // ❸ linear search of the owner's window descriptors,
        // ❹ O(1) bitmask check per covering descriptor. The descriptor
        // array can be mutated by its owner on another core mid-search,
        // so the search runs under the windows lock (P → W nesting).
        let owner_idx = meta.owner.index();
        let wstart = self.lock_acquire(MonitorLock::Windows);
        self.race_note(RaceObject::Windows, false, "resolve_fault:windows.search");
        let mut probes = 0u64;
        let mut decided_by = None;
        for w in &self.cubicles[owner_idx].windows {
            let check = w.check(fault.addr, accessor);
            probes += check.probes;
            if check.covers && check.allowed {
                decided_by = Some(w.id());
                break;
            }
        }
        self.stats.acl_probes += probes;
        self.machine.charge(cost.acl_probe * probes);
        self.lock_release(MonitorLock::Windows, wstart);
        if let Some(wid) = decided_by {
            // ❺ assign the accessor's MPK tag to the page (zero-copy)
            self.retag(fault.addr, accessor_key)?;
            self.record_holder(fault.addr, accessor, Some(wid));
            self.stats.faults_resolved += 1;
            if self.grant_cache.is_some() {
                let gstart = self.lock_acquire(MonitorLock::GrantCache);
                self.race_note(
                    RaceObject::GrantCache,
                    true,
                    "resolve_fault:grant_cache.insert",
                );
                let cache = self.grant_cache.as_mut().unwrap();
                cache.map.insert(
                    (accessor, fault.addr.page()),
                    GrantEntry {
                        owner: meta.owner,
                        via: wid,
                    },
                );
                self.stats.grant_cache_misses += 1;
                self.lock_release(MonitorLock::GrantCache, gstart);
            }
            self.trace_fault(&fault, meta.owner, accessor, FaultDecision::Window(wid));
            Ok(())
        } else {
            self.stats.faults_denied += 1;
            self.trace_fault(&fault, meta.owner, accessor, FaultDecision::Denied);
            if self.fault_containment {
                // Fault attribution: if the page's owner sits in a caller
                // frame below the accessor, the owner passed a pointer it
                // never opened a window for (confused deputy) — blame the
                // owner. Otherwise the accessor touched memory it was
                // never handed — blame the accessor.
                let frames = self.call_stack.len().saturating_sub(1);
                let offender = if self.call_stack[..frames]
                    .iter()
                    .any(|f| f.cubicle == meta.owner)
                {
                    meta.owner
                } else {
                    accessor
                };
                self.pending_quarantine.push((
                    offender,
                    format!(
                        "denied {} at {} (owner {}, accessor {})",
                        fault.access,
                        fault.addr,
                        self.cubicles[meta.owner.index()].name,
                        self.cubicles[accessor.index()].name,
                    ),
                ));
            }
            Err(CubicleError::WindowDenied {
                accessor,
                owner: meta.owner,
                addr: fault.addr,
            })
        }
    }

    /// Handles a fault that window authorisation cannot resolve: an
    /// unmapped or page-permission violation. A touch on a tombstoned
    /// (reclaimed) page of a quarantined cubicle becomes a typed
    /// [`CubicleError::Quarantined`] without implicating the toucher;
    /// any other raw fault is a wild access — under fault containment
    /// the accessor is quarantined as the offender.
    fn deny_raw_fault(&mut self, fault: Fault) -> CubicleError {
        if let Some(&dead) = self.reclaimed.get(&fault.addr.page()) {
            return CubicleError::Quarantined { cubicle: dead };
        }
        if self.fault_containment {
            let accessor = self.current_cubicle();
            if accessor != CubicleId::MONITOR && !self.cubicles[accessor.index()].is_quarantined() {
                self.pending_quarantine.push((
                    accessor,
                    format!("wild {} at unmapped {}", fault.access, fault.addr),
                ));
            }
        }
        CubicleError::MachineFault(fault)
    }

    /// Records the outcome of a trap-and-map resolution in the trace and
    /// the fault audit log (no-op when tracing is disabled).
    fn trace_fault(
        &mut self,
        fault: &Fault,
        owner: CubicleId,
        accessor: CubicleId,
        decision: FaultDecision,
    ) {
        if self.tracer.is_none() {
            return;
        }
        let event = match decision {
            FaultDecision::Denied => TraceEvent::FaultDenied {
                addr: fault.addr,
                owner,
                accessor,
                kind: fault.access,
            },
            _ => TraceEvent::FaultResolved {
                addr: fault.addr,
                owner,
                accessor,
                kind: fault.access,
            },
        };
        self.trace_push(event);
        self.audit_push(FaultAudit {
            at: self.machine.now(),
            addr: fault.addr,
            owner,
            accessor,
            access: fault.access,
            decision,
        });
    }

    fn retag(&mut self, addr: VAddr, key: ProtKey) -> Result<()> {
        self.machine
            .set_page_key(addr, key)
            .map_err(CubicleError::MachineFault)
    }

    /// Updates the causal-tag bookkeeping after a successful retag: the
    /// page's key is now expected to be `holder`'s, justified by `via`
    /// when the holder is not the owner. [`System::audit`] cross-checks
    /// the machine's page table against this record.
    fn record_holder(&mut self, addr: VAddr, holder: CubicleId, via: Option<WindowId>) {
        // Every caller (fault resolution, quarantine teardown) holds the
        // page-metadata lock around this mutation.
        self.race_note(
            RaceObject::PageMeta,
            true,
            "record_holder:page_meta.get_mut",
        );
        if let Some(m) = self.page_meta.get_mut(&addr.page()) {
            // verify: lock-held(page_meta)
            m.holder = holder;
            m.via = via;
        }
    }

    // =====================================================================
    // Fault containment: quarantine, unwind, microreboot
    // =====================================================================

    /// Enables or disables the fault containment policy. Off (the
    /// default), a denied access propagates as a raw `Err` to the top of
    /// the call chain — detection without containment. On, the monitor
    /// quarantines the offending cubicle, unwinds the in-flight
    /// cross-call chain to the nearest healthy caller as an errno, and
    /// rejects further calls into the offender until
    /// [`System::restart`].
    pub fn set_fault_containment(&mut self, enabled: bool) {
        self.fault_containment = enabled;
    }

    /// Is the fault containment policy enabled?
    pub fn fault_containment(&self) -> bool {
        self.fault_containment
    }

    /// Enables or disables the window-grant cache. Off (the default) the
    /// monitor resolves every trap-and-map fault with the paper's linear
    /// window search, bit-for-bit. On, a repeat fault by the same
    /// accessor over the same page re-checks only the descriptor that
    /// authorised it last time (one `acl_probe` charge instead of a
    /// linear search), falling back to the full search when the cached
    /// grant no longer authorises the access. Disabling drops all cached
    /// grants.
    pub fn set_grant_cache(&mut self, enabled: bool) {
        if enabled {
            if self.grant_cache.is_none() {
                self.grant_cache = Some(GrantCache::default());
            }
        } else {
            self.grant_cache = None;
        }
    }

    /// Is the window-grant cache enabled?
    pub fn grant_cache_enabled(&self) -> bool {
        self.grant_cache.is_some()
    }

    /// Enables or disables cross-call batching. This is a *gate*, not a
    /// behaviour switch: components query [`System::batching_enabled`]
    /// and choose between their vectored ([`System::cross_call_batch`])
    /// and legacy per-call paths, so with the gate off (the default)
    /// every simulated cycle is identical to the pre-batching kernel.
    pub fn set_cross_call_batching(&mut self, enabled: bool) {
        self.batching = enabled;
    }

    /// Is cross-call batching enabled?
    pub fn batching_enabled(&self) -> bool {
        self.batching
    }

    /// Installs (or clears) the restart backoff policy. `None` (the
    /// default) keeps [`System::restart`] unconditional, as before.
    pub fn set_restart_policy(&mut self, policy: Option<RestartPolicy>) {
        self.restart_policy = policy;
    }

    /// The active restart backoff policy, if any.
    pub fn restart_policy(&self) -> Option<RestartPolicy> {
        self.restart_policy
    }

    /// Drops every grant-cache entry whose accessor *or* owner is `cid`
    /// (quarantine, restart) — the cubicle's windows are gone and its
    /// held pages were reclaimed, so neither direction can be reused.
    fn grant_cache_purge_cubicle(&mut self, cid: CubicleId) {
        if self.grant_cache.is_none() {
            return;
        }
        let start = self.lock_acquire(MonitorLock::GrantCache);
        self.race_note(
            RaceObject::GrantCache,
            true,
            "grant_cache_purge_cubicle:map.retain",
        );
        if let Some(cache) = &mut self.grant_cache {
            let before = cache.map.len();
            cache
                .map
                .retain(|(accessor, _), e| *accessor != cid && e.owner != cid);
            self.stats.grant_cache_invalidations += (before - cache.map.len()) as u64;
        }
        self.lock_release(MonitorLock::GrantCache, start);
    }

    /// Drops grant-cache entries authorised via window `wid` of `owner`,
    /// optionally restricted to one accessor (`peer`). Called by the
    /// narrowing window operations: remove, close, close-all, destroy.
    fn grant_cache_invalidate_window(
        &mut self,
        owner: CubicleId,
        wid: WindowId,
        peer: Option<CubicleId>,
    ) {
        if self.grant_cache.is_none() {
            return;
        }
        let start = self.lock_acquire(MonitorLock::GrantCache);
        self.race_note(
            RaceObject::GrantCache,
            true,
            "grant_cache_invalidate_window:map.retain",
        );
        if let Some(cache) = &mut self.grant_cache {
            let before = cache.map.len();
            cache.map.retain(|(accessor, _), e| {
                !(e.owner == owner && e.via == wid && peer.is_none_or(|p| p == *accessor))
            });
            self.stats.grant_cache_invalidations += (before - cache.map.len()) as u64;
        }
        self.lock_release(MonitorLock::GrantCache, start);
    }

    /// Drops grant-cache entries for pages in `[first, last]` (ownership
    /// transfer via [`System::grant_pages_to`] retags and re-owns them,
    /// so any remembered grant is obsolete).
    fn grant_cache_invalidate_pages(&mut self, first: PageNum, last: PageNum) {
        if self.grant_cache.is_none() {
            return;
        }
        let start = self.lock_acquire(MonitorLock::GrantCache);
        self.race_note(
            RaceObject::GrantCache,
            true,
            "grant_cache_invalidate_pages:map.retain",
        );
        if let Some(cache) = &mut self.grant_cache {
            let before = cache.map.len();
            cache
                .map
                .retain(|(_, page), _| page.0 < first.0 || page.0 > last.0);
            self.stats.grant_cache_invalidations += (before - cache.map.len()) as u64;
        }
        self.lock_release(MonitorLock::GrantCache, start);
    }

    /// The bounded containment log: one line per quarantine, unwind
    /// conversion and microreboot (kept even with tracing off, capped at
    /// 64 entries like the loader audit).
    pub fn containment_log(&self) -> &[String] {
        &self.containment_log
    }

    /// Caps the total heap pages the monitor will grant `cid` (`None`
    /// lifts the cap). A fault-injection knob: growth past the cap makes
    /// `heap_alloc` fail with [`CubicleError::OutOfMemory`] mid-call,
    /// which the containment machinery must unwind cleanly.
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchCubicle`].
    pub fn set_heap_limit(&mut self, cid: CubicleId, pages: Option<usize>) -> Result<()> {
        let c = self
            .cubicles
            .get_mut(cid.index())
            .ok_or(CubicleError::NoSuchCubicle(cid))?;
        c.heap_limit_pages = pages;
        Ok(())
    }

    /// Infallible internal quarantine used on fault paths: no-op for the
    /// monitor, unknown IDs and already-quarantined cubicles.
    fn quarantine_for(&mut self, cid: CubicleId, reason: String) {
        if cid == CubicleId::MONITOR
            || cid.index() >= self.cubicles.len()
            || self.cubicles[cid.index()].is_quarantined()
        {
            return;
        }
        self.quarantine_inner(cid, reason);
    }

    /// Quarantines `cid`: destroys its windows, reclaims its pages
    /// (tombstoned so dangling references yield typed errors), retags
    /// pages it held of other owners back to them, parks its MPK key
    /// into the reuse pool and rejects future cross-calls with
    /// [`CubicleError::Quarantined`]. [`System::audit`] is clean
    /// immediately afterwards. Reversed by [`System::restart`].
    ///
    /// Works regardless of the containment *policy* (the policy only
    /// controls whether the monitor invokes this automatically on denied
    /// faults).
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchCubicle`] for an unknown ID,
    /// [`CubicleError::InvalidArgument`] for the monitor itself or an
    /// already-quarantined cubicle.
    pub fn quarantine(&mut self, cid: CubicleId, reason: &str) -> Result<()> {
        if cid == CubicleId::MONITOR {
            return Err(CubicleError::InvalidArgument(
                "quarantine: the monitor cannot be quarantined",
            ));
        }
        if cid.index() >= self.cubicles.len() {
            return Err(CubicleError::NoSuchCubicle(cid));
        }
        if self.cubicles[cid.index()].is_quarantined() {
            return Err(CubicleError::InvalidArgument(
                "quarantine: cubicle is already quarantined",
            ));
        }
        self.quarantine_inner(cid, reason.to_string());
        Ok(())
    }

    fn quarantine_inner(&mut self, cid: CubicleId, reason: String) {
        use crate::cubicle::CubicleState;
        self.stats.quarantines += 1;
        self.trace_push(TraceEvent::Quarantine { cubicle: cid });
        // Grants into or out of the offender are void: its windows are
        // destroyed below and its held pages reclaimed.
        self.grant_cache_purge_cubicle(cid);
        self.cubicles[cid.index()].quarantined_at = self.machine.now();

        // ❶ Destroy the offender's window descriptors: nothing of its
        // (soon reclaimed) memory stays published. A fault on another
        // core may be searching this array (P → W nesting).
        let wstart = self.lock_acquire(MonitorLock::Windows);
        self.race_note(RaceObject::Windows, true, "quarantine:windows.take");
        let windows = std::mem::take(&mut self.cubicles[cid.index()].windows);
        self.lock_release(MonitorLock::Windows, wstart);

        // ❷ + ❸ mutate the page-metadata map (holder retags, removals,
        // tombstones) — one critical section covers the whole teardown.
        let pstart = self.lock_acquire(MonitorLock::PageMeta);
        // Pages the offender *held* of other owners (faulted in via
        // trap-and-map) are retagged back to their owners — causal tag
        // consistency must not dangle on a parked key.
        self.race_note(RaceObject::PageMeta, true, "quarantine:page_meta.teardown");
        let mut held: Vec<PageNum> = self
            .page_meta
            .iter() // verify: order-ok — sorted before replaying below
            .filter(|(_, m)| m.holder == cid && m.owner != cid)
            .map(|(&p, _)| p)
            .collect();
        // Address order: teardown must replay identically run-to-run.
        held.sort_unstable();
        for page in held {
            let owner = self.page_meta[&page].owner;
            let owner_key = self.cubicles[owner.index()].key;
            if self.mode.mpk_active() {
                self.machine
                    .set_page_key(page.base(), owner_key)
                    .expect("held page is mapped");
            } else {
                self.machine
                    .set_page_key_at_load(page.base(), owner_key)
                    .expect("held page is mapped");
            }
            self.record_holder(page.base(), owner, None);
        }

        // Reclaim every page the offender owns (tombstoned: a later
        // touch through a dangling reference yields a typed error).
        let mut owned: Vec<PageNum> = self
            .page_meta
            .iter() // verify: order-ok — sorted before replaying below
            .filter(|(_, m)| m.owner == cid)
            .map(|(&p, _)| p)
            .collect();
        owned.sort_unstable();
        let pages_reclaimed = owned.len();
        for page in owned {
            // The machine emits `MachineEvent::Unmap`, which the event
            // pump turns into `TraceEvent::PageReclaim`.
            self.machine
                .reclaim_page(page.base())
                .expect("owned page is mapped");
            self.page_meta.remove(&page);
            self.reclaimed.insert(page, cid);
        }
        self.lock_release(MonitorLock::PageMeta, pstart);

        // ❹ Park the MPK key. Without virtualisation the physical key
        // returns to the reuse pool; with it, the binding is released.
        let key = self.cubicles[cid.index()].key;
        if let Some(kv) = &mut self.key_virt {
            if let Some(slot) = kv
                .bindings
                .iter_mut()
                .find(|(_, b)| b.is_some_and(|(c, _)| c == cid))
            {
                slot.1 = None;
            }
        } else if key != PARKED_KEY {
            self.free_keys.push(key);
        }

        // ❺ Reset the kernel-side record: empty heap, no stack, parked
        // key, quarantined state. Pooled re-entrancy stacks were owned
        // by the offender, so step ❸ already reclaimed their pages —
        // drop the slot records with them. The heap/accounting reset is
        // ledger state a concurrent heap_alloc could be reading.
        let lstart = self.lock_acquire(MonitorLock::Ledger);
        self.race_note(RaceObject::Ledger, true, "quarantine:heap.reset");
        let c = &mut self.cubicles[cid.index()];
        c.key = PARKED_KEY;
        c.heap = crate::heap::SubAllocator::new();
        c.stack_base = VAddr::NULL;
        c.stack_len = 0;
        c.stack_used = 0;
        c.stack_pool.clear();
        c.heap_pages_granted = 0;
        c.state = CubicleState::Quarantined;
        c.quarantine_reason = Some(reason.clone());
        let name = c.name.clone();
        self.lock_release(MonitorLock::Ledger, lstart);
        self.containment_push(format!(
            "containment: quarantined {name} ({cid}): {reason} \
             [{pages_reclaimed} page(s) reclaimed, {} window(s) destroyed]",
            windows.len(),
        ));
    }

    /// Microreboots a quarantined cubicle: re-runs the trusted loader's
    /// install path for every component slot in the cubicle (fresh code,
    /// data, heap and stack pages under a fresh key — forbidden-
    /// instruction scan included), invokes each component's
    /// [`Component::on_restart`] hook so host-side state referring to the
    /// reclaimed memory is dropped, and marks the cubicle active with a
    /// bumped generation. Entry IDs and trampolines are stable across
    /// the reboot, so peers' cached proxies stay valid.
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchCubicle`] for an unknown ID,
    /// [`CubicleError::InvalidArgument`] when the cubicle is not
    /// quarantined or still has in-flight frames on the call stack,
    /// [`CubicleError::OutOfKeys`] when no key is available.
    pub fn restart(&mut self, cid: CubicleId) -> Result<()> {
        use crate::cubicle::CubicleState;
        if cid.index() >= self.cubicles.len() {
            return Err(CubicleError::NoSuchCubicle(cid));
        }
        if !self.cubicles[cid.index()].is_quarantined() {
            return Err(CubicleError::InvalidArgument(
                "restart: cubicle is not quarantined",
            ));
        }
        if self.call_stack.iter().any(|f| f.cubicle == cid) {
            return Err(CubicleError::InvalidArgument(
                "restart: cubicle has in-flight frames",
            ));
        }
        // Backoff policy: a crash-looping cubicle waits exponentially
        // longer after every incarnation, and is written off for good
        // once its restart strikes are spent.
        if let Some(policy) = self.restart_policy {
            let c = &self.cubicles[cid.index()];
            if c.generation >= policy.max_restarts {
                let name = c.name.clone();
                self.containment_push(format!(
                    "containment: restart of {name} ({cid}) refused permanently \
                     after {} strikes",
                    policy.max_restarts
                ));
                return Err(CubicleError::PermanentlyQuarantined { cubicle: cid });
            }
            let delay = policy
                .base_backoff_cycles
                .saturating_mul(1u64 << c.generation.min(31));
            let ready_at = c.quarantined_at.saturating_add(delay);
            if self.machine.now() < ready_at {
                return Err(CubicleError::RestartBackoff {
                    cubicle: cid,
                    ready_at,
                });
            }
        }
        let slots: Vec<usize> = self
            .reloads
            .iter()
            .enumerate()
            .filter(|(_, r)| r.cid == cid)
            .map(|(i, _)| i)
            .collect();
        if slots.iter().any(|&s| self.components[s].is_none()) {
            return Err(CubicleError::InvalidArgument(
                "restart: a component of the cubicle is still executing",
            ));
        }

        // Fresh key, drawn exactly like the loader draws one.
        let shared = self.cubicles[cid.index()].shared;
        let key = match &mut self.key_virt {
            None => match self.free_keys.pop() {
                Some(key) => key,
                None if (self.next_key as usize) < NUM_KEYS => {
                    let key = ProtKey::new(self.next_key).expect("bounded above");
                    self.next_key += 1;
                    key
                }
                None => return Err(CubicleError::OutOfKeys),
            },
            Some(kv) => match kv.bindings.iter_mut().find(|(_, b)| b.is_none()) {
                Some(slot) => {
                    let tick = if shared { u64::MAX } else { 0 };
                    slot.1 = Some((cid, tick));
                    slot.0
                }
                None if shared => return Err(CubicleError::OutOfKeys),
                None => PARKED_KEY,
            },
        };
        self.cubicles[cid.index()].key = key;

        // Replay the trusted builder's install path per slot, in slot
        // order (defence in depth: the image is re-scanned even though it
        // was verified at original load time).
        for &slot in &slots {
            let info = &self.reloads[slot];
            if let Some(bad) = info.code.scan_forbidden() {
                return Err(CubicleError::ForbiddenInstruction(bad));
            }
            let info = ReloadInfo {
                cid: info.cid,
                code: info.code.clone(),
                data_pages: info.data_pages,
                heap_pages: info.heap_pages,
                stack_pages: info.stack_pages,
            };
            self.map_component_segments(&info);
        }

        // Belt and braces: quarantine already purged the offender's
        // grants, and none can have formed since; make sure the fresh
        // incarnation starts with no remembered authority either way.
        self.grant_cache_purge_cubicle(cid);
        let c = &mut self.cubicles[cid.index()];
        c.state = CubicleState::Active;
        c.quarantine_reason = None;
        c.timed_out = false;
        c.generation += 1;
        let generation = c.generation;
        let name = c.name.clone();

        // The restart hooks run *inside* the freshly activated cubicle:
        // a recovery hook (e.g. a redo-journal replay) needs checked
        // memory access under the reborn cubicle's own privileges, so a
        // window kept open by a surviving custodian resolves exactly as
        // it would for ordinary component code.
        for &slot in &slots {
            let mut comp = self.components[slot].take().expect("checked above");
            self.run_in_cubicle(cid, |sys| comp.on_restart(sys));
            self.components[slot] = Some(comp);
        }
        self.stats.restarts += 1;
        self.trace_push(TraceEvent::Restart {
            cubicle: cid,
            generation,
        });
        self.containment_push(format!(
            "containment: restarted {name} ({cid}), generation {generation}"
        ));
        Ok(())
    }

    // =====================================================================
    // Checked memory access (components' only door to data)
    // =====================================================================

    /// Reads `buf.len()` bytes at `addr` with the current cubicle's
    /// privileges, transparently running trap-and-map on faults.
    ///
    /// # Errors
    ///
    /// [`CubicleError::WindowDenied`] when the monitor refuses the access,
    /// [`CubicleError::MachineFault`] for unmapped/invalid memory.
    pub fn read(&mut self, addr: VAddr, buf: &mut [u8]) -> Result<()> {
        self.watchdog_check()?;
        let budget = buf.len() / PAGE_SIZE + 3;
        for _ in 0..budget {
            match self.machine.read(addr, buf) {
                Ok(()) => return Ok(()),
                Err(fault) => self.resolve_fault(fault)?,
            }
        }
        unreachable!("trap-and-map retags a page per retry; budget suffices")
    }

    /// Writes `data` at `addr` with the current cubicle's privileges.
    ///
    /// # Errors
    ///
    /// As [`System::read`].
    pub fn write(&mut self, addr: VAddr, data: &[u8]) -> Result<()> {
        self.watchdog_check()?;
        let budget = data.len() / PAGE_SIZE + 3;
        for _ in 0..budget {
            match self.machine.write(addr, data) {
                Ok(()) => return Ok(()),
                Err(fault) => self.resolve_fault(fault)?,
            }
        }
        unreachable!("trap-and-map retags a page per retry; budget suffices")
    }

    /// Reads `len` bytes into a fresh vector.
    ///
    /// The vector is filled straight from the simulated frames into
    /// uninitialised capacity (via the machine's append path), skipping
    /// the zero-fill a `vec![0; len]` + `read` sequence would pay. The
    /// charged cycles are identical to [`System::read`].
    ///
    /// # Errors
    ///
    /// As [`System::read`].
    pub fn read_vec(&mut self, addr: VAddr, len: usize) -> Result<Vec<u8>> {
        let mut buf = Vec::with_capacity(len);
        self.read_append(addr, len, &mut buf)?;
        Ok(buf)
    }

    /// Reads `len` bytes at `addr` into `out`, replacing its contents but
    /// keeping its allocation — the zero-allocation sibling of
    /// [`System::read_vec`] for callers that hold a reusable buffer.
    ///
    /// # Errors
    ///
    /// As [`System::read`]. On error `out` is left empty.
    pub fn read_into(&mut self, addr: VAddr, len: usize, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        self.read_append(addr, len, out)
    }

    /// Reads `len` bytes at `addr` and hands them to `f` in a buffer
    /// recycled across calls, so per-argument marshalling in cross-call
    /// handlers allocates nothing in steady state. The closure may use
    /// the `System` freely (including nested `with_read` calls — each
    /// nesting level gets its own pooled buffer).
    ///
    /// # Errors
    ///
    /// As [`System::read`]; `f` is not called when the read faults.
    pub fn with_read<R>(
        &mut self,
        addr: VAddr,
        len: usize,
        f: impl FnOnce(&mut System, &[u8]) -> Result<R>,
    ) -> Result<R> {
        let mut buf = self.scratch_pool.pop().unwrap_or_default();
        buf.clear();
        let out = match self.read_append(addr, len, &mut buf) {
            Ok(()) => f(self, &buf),
            Err(e) => Err(e),
        };
        if self.scratch_pool.len() < 4 {
            self.scratch_pool.push(buf);
        }
        out
    }

    /// Trap-and-map retry loop shared by the appending read paths.
    fn read_append(&mut self, addr: VAddr, len: usize, out: &mut Vec<u8>) -> Result<()> {
        self.watchdog_check()?;
        let budget = len / PAGE_SIZE + 3;
        for _ in 0..budget {
            // A faulted append leaves `out` untouched, so retrying is safe.
            match self.machine.read_append(addr, len, out) {
                Ok(()) => return Ok(()),
                Err(fault) => self.resolve_fault(fault)?,
            }
        }
        unreachable!("trap-and-map retags a page per retry; budget suffices")
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// As [`System::read`].
    pub fn read_u64(&mut self, addr: VAddr) -> Result<u64> {
        self.watchdog_check()?;
        for _ in 0..3 {
            match self.machine.read_u64(addr) {
                Ok(v) => return Ok(v),
                Err(fault) => self.resolve_fault(fault)?,
            }
        }
        unreachable!("trap-and-map retags a page per retry; budget suffices")
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// As [`System::write`].
    pub fn write_u64(&mut self, addr: VAddr, v: u64) -> Result<()> {
        self.watchdog_check()?;
        for _ in 0..3 {
            match self.machine.write_u64(addr, v) {
                Ok(()) => return Ok(()),
                Err(fault) => self.resolve_fault(fault)?,
            }
        }
        unreachable!("trap-and-map retags a page per retry; budget suffices")
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// As [`System::read`].
    pub fn read_u32(&mut self, addr: VAddr) -> Result<u32> {
        self.watchdog_check()?;
        for _ in 0..3 {
            match self.machine.read_u32(addr) {
                Ok(v) => return Ok(v),
                Err(fault) => self.resolve_fault(fault)?,
            }
        }
        unreachable!("trap-and-map retags a page per retry; budget suffices")
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// As [`System::write`].
    pub fn write_u32(&mut self, addr: VAddr, v: u32) -> Result<()> {
        self.watchdog_check()?;
        for _ in 0..3 {
            match self.machine.write_u32(addr, v) {
                Ok(()) => return Ok(()),
                Err(fault) => self.resolve_fault(fault)?,
            }
        }
        unreachable!("trap-and-map retags a page per retry; budget suffices")
    }

    /// Copies `len` bytes from `src` to `dst` (both in simulated memory),
    /// subject to the current cubicle's privileges on both sides.
    ///
    /// # Errors
    ///
    /// As [`System::read`].
    pub fn copy(&mut self, dst: VAddr, src: VAddr, len: usize) -> Result<()> {
        let mut remaining = len;
        let mut s = src;
        let mut d = dst;
        let mut tmp = [0u8; PAGE_SIZE];
        while remaining > 0 {
            let chunk = remaining.min(PAGE_SIZE);
            self.read(s, &mut tmp[..chunk])?;
            self.write(d, &tmp[..chunk])?;
            remaining -= chunk;
            s += chunk;
            d += chunk;
        }
        Ok(())
    }

    /// Fills `len` bytes at `addr` with `byte`.
    ///
    /// # Errors
    ///
    /// As [`System::write`].
    pub fn fill(&mut self, addr: VAddr, byte: u8, len: usize) -> Result<()> {
        let tmp = [byte; PAGE_SIZE];
        let mut remaining = len;
        let mut d = addr;
        while remaining > 0 {
            let chunk = remaining.min(PAGE_SIZE);
            self.write(d, &tmp[..chunk])?;
            remaining -= chunk;
            d += chunk;
        }
        Ok(())
    }

    // =====================================================================
    // Memory management primitives (monitor services, paper §4)
    // =====================================================================

    /// Allocates `size` bytes (aligned to `align`) from the current
    /// cubicle's heap sub-allocator, growing it with fresh monitor-granted
    /// pages when needed.
    ///
    /// # Errors
    ///
    /// [`CubicleError::OutOfMemory`] if the grant fails (address space
    /// exhaustion, which the simulation never hits in practice).
    pub fn heap_alloc(&mut self, size: usize, align: usize) -> Result<VAddr> {
        let cid = self.current_cubicle();
        self.heap_alloc_for(cid, size, align)
    }

    /// [`System::heap_alloc`] on behalf of an explicit cubicle (used by
    /// boot code constructing another cubicle's initial state).
    ///
    /// # Errors
    ///
    /// As [`System::heap_alloc`], plus [`CubicleError::NoSuchCubicle`]
    /// and [`CubicleError::Quarantined`] — the monitor grants no memory
    /// to a quarantined cubicle.
    pub fn heap_alloc_for(&mut self, cid: CubicleId, size: usize, align: usize) -> Result<VAddr> {
        self.watchdog_check()?;
        if cid.index() >= self.cubicles.len() {
            return Err(CubicleError::NoSuchCubicle(cid));
        }
        if self.cubicles[cid.index()].is_quarantined() {
            return Err(CubicleError::Quarantined { cubicle: cid });
        }
        // The heap ledger (sub-allocator free lists, grant accounting)
        // is monitor metadata shared across cores.
        let start = self.lock_acquire(MonitorLock::Ledger);
        let result = self.heap_alloc_locked(cid, size, align);
        self.lock_release(MonitorLock::Ledger, start);
        result
    }

    fn heap_alloc_locked(&mut self, cid: CubicleId, size: usize, align: usize) -> Result<VAddr> {
        self.race_note(RaceObject::Ledger, true, "heap_alloc_locked:heap.alloc");
        if let Some(addr) = self.cubicles[cid.index()].heap.alloc(size, align) {
            if self.tracer.is_some() {
                self.trace_push(TraceEvent::HeapAlloc {
                    cubicle: cid,
                    addr,
                    bytes: size,
                });
            }
            return Ok(addr);
        }
        // Grow: grant enough pages for the request (plus slack), unless
        // the cubicle's heap cap (a fault-injection knob) says no.
        let pages = size.div_ceil(PAGE_SIZE).max(16);
        if let Some(limit) = self.cubicles[cid.index()].heap_limit_pages {
            if self.cubicles[cid.index()].heap_pages_granted + pages > limit {
                return Err(CubicleError::OutOfMemory(cid));
            }
        }
        let key = self.cubicles[cid.index()].key;
        let base = self.map_fresh(pages, key, PageFlags::rw(), cid, RegionType::Heap);
        self.cubicles[cid.index()]
            .heap
            .add_region(base, pages * PAGE_SIZE);
        let addr = self.cubicles[cid.index()]
            .heap
            .alloc(size, align)
            .ok_or(CubicleError::OutOfMemory(cid))?;
        if self.tracer.is_some() {
            self.trace_push(TraceEvent::HeapAlloc {
                cubicle: cid,
                addr,
                bytes: size,
            });
        }
        Ok(addr)
    }

    /// Frees a heap allocation of the current cubicle.
    ///
    /// # Errors
    ///
    /// [`CubicleError::InvalidArgument`] for a pointer that is not a live
    /// allocation of this cubicle.
    pub fn heap_free(&mut self, addr: VAddr) -> Result<()> {
        let cid = self.current_cubicle();
        let start = self.lock_acquire(MonitorLock::Ledger);
        self.race_note(RaceObject::Ledger, true, "heap_free:heap.free");
        let freed = self.cubicles[cid.index()]
            .heap
            .free(addr)
            .map(|_| ())
            .map_err(|_| CubicleError::InvalidArgument("heap_free: not a live allocation"));
        self.lock_release(MonitorLock::Ledger, start);
        freed?;
        if self.tracer.is_some() {
            self.trace_push(TraceEvent::HeapFree { cubicle: cid, addr });
        }
        Ok(())
    }

    /// Allocates `len` bytes on the current cubicle's stack (16-byte
    /// aligned), like a local variable in the original C components.
    /// Balance with [`System::stack_free`].
    ///
    /// # Errors
    ///
    /// [`CubicleError::OutOfMemory`] on stack overflow.
    pub fn stack_alloc(&mut self, len: usize) -> Result<VAddr> {
        let cid = self.current_cubicle();
        let c = &mut self.cubicles[cid.index()];
        let len = len.div_ceil(16) * 16;
        if c.stack_used + len > c.stack_len {
            return Err(CubicleError::OutOfMemory(cid));
        }
        let addr = c.stack_base + c.stack_used;
        c.stack_used += len;
        Ok(addr)
    }

    /// Releases the most recent `len` bytes of stack allocation.
    pub fn stack_free(&mut self, len: usize) {
        let cid = self.current_cubicle();
        let c = &mut self.cubicles[cid.index()];
        let len = len.div_ceil(16) * 16;
        c.stack_used = c.stack_used.saturating_sub(len);
    }

    /// Allocates `pages` fresh, page-aligned pages owned by the current
    /// cubicle (coarse allocations; what the `ALLOC` component hands out).
    pub fn alloc_pages(&mut self, pages: usize) -> VAddr {
        let cid = self.current_cubicle();
        let key = self.cubicles[cid.index()].key;
        // Heap-region mappings update `heap_pages_granted` inside
        // `map_fresh` — ledger state, racing with `heap_alloc`/`heap_free`
        // on other cores. (CubicleSan caught this exact elision: ALLOC
        // grants from a non-zero core raced the core-0 free path.)
        let start = self.lock_acquire(MonitorLock::Ledger);
        let base = self.map_fresh(pages.max(1), key, PageFlags::rw(), cid, RegionType::Heap);
        self.lock_release(MonitorLock::Ledger, start);
        base
    }

    /// Transfers ownership of the pages covering `[addr, addr+len)` from
    /// the current cubicle to `to`, retagging them. Used by the
    /// system-wide allocator component to grant coarse allocations to its
    /// callers ("pages are strictly assigned an owner ... at allocation
    /// time", §5.3).
    ///
    /// # Errors
    ///
    /// [`CubicleError::NotOwner`] when a covered page is not owned by the
    /// current cubicle, [`CubicleError::NoSuchCubicle`] /
    /// [`CubicleError::Quarantined`] for a dead grantee.
    pub fn grant_pages_to(&mut self, addr: VAddr, len: usize, to: CubicleId) -> Result<()> {
        let cid = self.current_cubicle();
        if to.index() >= self.cubicles.len() {
            return Err(CubicleError::NoSuchCubicle(to));
        }
        if self.cubicles[to.index()].is_quarantined() {
            return Err(CubicleError::Quarantined { cubicle: to });
        }
        // Check and transfer under one page-metadata section: a fault
        // resolving concurrently on another core must not observe a
        // half-transferred range.
        let pstart = self.lock_acquire(MonitorLock::PageMeta);
        self.race_note(RaceObject::PageMeta, false, "grant_pages_to:page_meta.get");
        let mut result = Ok(());
        for page in pages_covering(addr, len) {
            match self.page_meta.get(&page) {
                Some(m) if m.owner == cid => {}
                _ => {
                    result = Err(CubicleError::NotOwner { addr: page.base() });
                    break;
                }
            }
        }
        if result.is_ok() {
            let key = self.cubicles[to.index()].key;
            self.race_note(
                RaceObject::PageMeta,
                true,
                "grant_pages_to:page_meta.get_mut",
            );
            for page in pages_covering(addr, len) {
                let m = self.page_meta.get_mut(&page).expect("checked above");
                m.owner = to;
                m.holder = to;
                m.via = None;
                if self.mode.mpk_active() {
                    self.machine.set_page_key(page.base(), key).expect("mapped");
                } else {
                    self.machine
                        .set_page_key_at_load(page.base(), key)
                        .expect("mapped");
                }
            }
        }
        self.lock_release(MonitorLock::PageMeta, pstart);
        result?;
        // Ownership changed hands: any remembered grant over these pages
        // (for any accessor) is obsolete.
        if len > 0 {
            let first = addr.page();
            let last = VAddr::new(addr.raw() + (len as u64 - 1)).page();
            self.grant_cache_invalidate_pages(first, last);
        }
        Ok(())
    }

    // =====================================================================
    // Window API (paper Table 1)
    // =====================================================================

    /// Opens a window-management critical section: counts the op,
    /// acquires the windows lock and charges the monitor-call cost.
    /// Balance with [`System::window_op_end`], which releases the lock —
    /// the section must cover the descriptor mutation itself, or a fault
    /// searching the array on another core races with it.
    fn window_op_begin(&mut self) -> Option<u64> {
        self.stats.window_ops += 1;
        if self.mode.acls_active() {
            // Window management is a call into the trusted monitor
            // cubicle: trampoline + PKRU switches + the operation itself.
            // Descriptor mutation serialises on the windows lock across
            // cores.
            let start = self.lock_acquire(MonitorLock::Windows);
            let cost = *self.machine.cost_model();
            self.machine.charge(cost.trampoline + 2 * cost.wrpkru + 25);
            Some(start)
        } else {
            None
        }
    }

    /// Closes the critical section opened by [`System::window_op_begin`].
    fn window_op_end(&mut self, start: Option<u64>) {
        if let Some(start) = start {
            self.lock_release(MonitorLock::Windows, start);
        }
    }

    /// Records a completed window operation in the trace (no-op when
    /// tracing is disabled).
    fn trace_window_op(&mut self, op: WindowOpKind, wid: WindowId, peer: Option<CubicleId>) {
        if self.tracer.is_some() {
            self.trace_push(TraceEvent::WindowOp { op, wid, peer });
        }
    }

    /// `cubicle_window_init`: creates an empty window owned by the
    /// current cubicle.
    pub fn window_init(&mut self) -> WindowId {
        let wstart = self.window_op_begin();
        let cid = self.current_cubicle();
        self.race_note(RaceObject::Windows, true, "window_init:windows.push");
        let wid = self.cubicles[cid.index()].window_init();
        self.window_op_end(wstart);
        self.trace_window_op(WindowOpKind::Init, wid, None);
        wid
    }

    /// `cubicle_window_add`: associates `[ptr, ptr+len)` with window
    /// `wid`.
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchWindow`] or [`CubicleError::NotOwner`] when
    /// the range is not owned by the calling cubicle.
    pub fn window_add(&mut self, wid: WindowId, ptr: VAddr, len: usize) -> Result<()> {
        // The ownership check reads page_meta, and fault resolution
        // searches window descriptors while holding page_meta — acquire
        // in the same page_meta → windows order so the lock graph stays
        // acyclic.
        let pstart = self.lock_acquire(MonitorLock::PageMeta);
        let wstart = self.window_op_begin();
        let cid = self.current_cubicle();
        self.race_note(RaceObject::PageMeta, false, "window_add:page_meta.get");
        let mut result = Ok(());
        for page in pages_covering(ptr, len) {
            match self.page_meta.get(&page) {
                Some(m) if m.owner == cid => {}
                _ => {
                    result = Err(CubicleError::NotOwner { addr: page.base() });
                    break;
                }
            }
        }
        if result.is_ok() {
            self.race_note(RaceObject::Windows, true, "window_add:window_mut.add_range");
            match self.cubicles[cid.index()].window_mut(wid) {
                Some(w) => w.add_range(ptr, len),
                None => result = Err(CubicleError::NoSuchWindow(wid)),
            }
        }
        self.window_op_end(wstart);
        self.lock_release(MonitorLock::PageMeta, pstart);
        if result.is_ok() {
            self.trace_window_op(WindowOpKind::Add, wid, None);
        }
        result
    }

    /// `cubicle_window_remove`: removes the range previously added at
    /// `ptr`.
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchWindow`] when `wid` does not exist or
    /// [`CubicleError::InvalidArgument`] when no range starts at `ptr`.
    pub fn window_remove(&mut self, wid: WindowId, ptr: VAddr) -> Result<()> {
        let wstart = self.window_op_begin();
        let cid = self.current_cubicle();
        self.race_note(
            RaceObject::Windows,
            true,
            "window_remove:window_mut.remove_range",
        );
        let result = match self.cubicles[cid.index()].window_mut(wid) {
            None => Err(CubicleError::NoSuchWindow(wid)),
            Some(w) => {
                if w.remove_range(ptr) {
                    Ok(())
                } else {
                    Err(CubicleError::InvalidArgument(
                        "window_remove: no range at ptr",
                    ))
                }
            }
        };
        if result.is_ok() {
            // The window narrowed: drop every grant it authorised (pages
            // outside the removed range will simply re-resolve and
            // repopulate — correctness over cleverness).
            self.grant_cache_invalidate_window(cid, wid, None);
        }
        self.window_op_end(wstart);
        if result.is_ok() {
            self.trace_window_op(WindowOpKind::Remove, wid, None);
        }
        result
    }

    /// `cubicle_window_open`: allows `peer` to access the window.
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchWindow`].
    pub fn window_open(&mut self, wid: WindowId, peer: CubicleId) -> Result<()> {
        let wstart = self.window_op_begin();
        let cid = self.current_cubicle();
        self.race_note(RaceObject::Windows, true, "window_open:window_mut.open_for");
        let result = match self.cubicles[cid.index()].window_mut(wid) {
            Some(w) => {
                w.open_for(peer);
                Ok(())
            }
            None => Err(CubicleError::NoSuchWindow(wid)),
        };
        self.window_op_end(wstart);
        if result.is_ok() {
            self.trace_window_op(WindowOpKind::Open, wid, Some(peer));
        }
        result
    }

    /// `cubicle_window_close`: disallows `peer`.
    ///
    /// Closing is *lazy*: pages already retagged to the peer stay
    /// readable by it until another authorised cubicle touches them —
    /// the paper's causal tag consistency (§5.6).
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchWindow`].
    pub fn window_close(&mut self, wid: WindowId, peer: CubicleId) -> Result<()> {
        let wstart = self.window_op_begin();
        let cid = self.current_cubicle();
        self.race_note(
            RaceObject::Windows,
            true,
            "window_close:window_mut.close_for",
        );
        let result = match self.cubicles[cid.index()].window_mut(wid) {
            Some(w) => {
                w.close_for(peer);
                Ok(())
            }
            None => Err(CubicleError::NoSuchWindow(wid)),
        };
        if result.is_ok() {
            // Closing is lazy for already-retagged pages, but the
            // *authority* is gone: the peer's next fault must take the
            // full search and be denied, not ride a cached grant.
            self.grant_cache_invalidate_window(cid, wid, Some(peer));
        }
        self.window_op_end(wstart);
        if result.is_ok() {
            self.trace_window_op(WindowOpKind::Close, wid, Some(peer));
        }
        result
    }

    /// `cubicle_window_close_all`: closes the window for every cubicle.
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchWindow`].
    pub fn window_close_all(&mut self, wid: WindowId) -> Result<()> {
        let wstart = self.window_op_begin();
        let cid = self.current_cubicle();
        self.race_note(
            RaceObject::Windows,
            true,
            "window_close_all:window_mut.close_all",
        );
        let result = match self.cubicles[cid.index()].window_mut(wid) {
            Some(w) => {
                w.close_all();
                Ok(())
            }
            None => Err(CubicleError::NoSuchWindow(wid)),
        };
        if result.is_ok() {
            self.grant_cache_invalidate_window(cid, wid, None);
        }
        self.window_op_end(wstart);
        if result.is_ok() {
            self.trace_window_op(WindowOpKind::CloseAll, wid, None);
        }
        result
    }

    /// `cubicle_window_destroy`: destroys the window.
    ///
    /// # Errors
    ///
    /// [`CubicleError::NoSuchWindow`].
    pub fn window_destroy(&mut self, wid: WindowId) -> Result<()> {
        let wstart = self.window_op_begin();
        let cid = self.current_cubicle();
        self.race_note(
            RaceObject::Windows,
            true,
            "window_destroy:windows.swap_remove",
        );
        let result = if self.cubicles[cid.index()].window_destroy(wid) {
            self.grant_cache_invalidate_window(cid, wid, None);
            Ok(())
        } else {
            Err(CubicleError::NoSuchWindow(wid))
        };
        self.window_op_end(wstart);
        if result.is_ok() {
            self.trace_window_op(WindowOpKind::Destroy, wid, None);
        }
        result
    }

    /// Verifies the access `kind` at `[addr, addr+len)` is possible under
    /// the current cubicle without performing it (diagnostics/tests).
    ///
    /// # Errors
    ///
    /// The fault the access would raise, if any (window resolution not
    /// attempted).
    pub fn probe_access(&self, addr: VAddr, len: usize, kind: AccessKind) -> Result<()> {
        self.machine
            .check_access(addr, len, kind)
            .map_err(CubicleError::MachineFault)
    }

    // =====================================================================
    // Trace exporters
    // =====================================================================

    /// Exports the trace as Chrome `trace_event` JSON (loadable in
    /// Perfetto / `chrome://tracing`). Cross-calls become B/E duration
    /// events on the *callee's* per-cubicle "thread"; every other event
    /// is an instant event on the cubicle it concerns. Timestamps are
    /// simulated cycles, reported in the format's microsecond field.
    ///
    /// Returns `"{}"`-style empty JSON when tracing is disabled.
    pub fn export_chrome_trace(&mut self) -> String {
        self.pump_machine_events();
        let num_cores = self.machine.num_cores();
        let Some(tracer) = &self.tracer else {
            return "{\"traceEvents\":[]}".to_string();
        };
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        // One Perfetto "process" per simulated core; a single-core run
        // renders exactly the classic single-process trace.
        push(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"cubicleos\"}}"
                .to_string(),
            &mut out,
        );
        for core in 1..num_cores {
            push(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{core},\"tid\":0,\
                     \"args\":{{\"name\":\"cubicleos core {core}\"}}}}"
                ),
                &mut out,
            );
        }
        for c in &self.cubicles {
            push(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    c.id.index(),
                    json_escape(&c.name),
                ),
                &mut out,
            );
        }
        for core in 1..num_cores {
            for c in &self.cubicles {
                push(
                    format!(
                        "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{core},\"tid\":{},\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        c.id.index(),
                        json_escape(&c.name),
                    ),
                    &mut out,
                );
            }
        }
        for r in tracer.buf.records() {
            let line = match r.event {
                TraceEvent::CrossCallEnter {
                    span,
                    parent,
                    caller,
                    callee,
                    entry,
                } => {
                    let name = self
                        .entries
                        .get(entry.index())
                        .map_or_else(|| entry.to_string(), |d| d.name.clone());
                    if caller != callee {
                        // Cross-cubicle control transfer: a flow arrow
                        // from the caller's track to the callee's track,
                        // keyed by the span id.
                        push(
                            format!(
                                "{{\"ph\":\"s\",\"id\":{span},\"name\":\"cross_call\",\
                                 \"cat\":\"flow\",\"pid\":{},\"tid\":{},\"ts\":{}}}",
                                r.core,
                                caller.index(),
                                r.at,
                            ),
                            &mut out,
                        );
                        push(
                            format!(
                                "{{\"ph\":\"f\",\"bp\":\"e\",\"id\":{span},\
                                 \"name\":\"cross_call\",\"cat\":\"flow\",\"pid\":{},\
                                 \"tid\":{},\"ts\":{}}}",
                                r.core,
                                callee.index(),
                                r.at,
                            ),
                            &mut out,
                        );
                    }
                    format!(
                        "{{\"ph\":\"B\",\"name\":\"{}\",\"cat\":\"cross_call\",\"pid\":{},\
                         \"tid\":{},\"ts\":{},\"args\":{{\"caller\":\"{}\",\"seq\":{},\
                         \"span\":{span},\"parent\":{parent}}}}}",
                        json_escape(&name),
                        r.core,
                        callee.index(),
                        r.at,
                        json_escape(&self.cubicles[caller.index()].name),
                        r.seq,
                    )
                }
                TraceEvent::CrossCallExit { span, callee, .. } => format!(
                    "{{\"ph\":\"E\",\"pid\":{},\"tid\":{},\"ts\":{},\
                     \"args\":{{\"span\":{span}}}}}",
                    r.core,
                    callee.index(),
                    r.at,
                ),
                TraceEvent::FaultResolved {
                    addr,
                    owner,
                    accessor,
                    kind,
                } => instant(
                    r,
                    "fault_resolved",
                    "fault",
                    accessor.index(),
                    &format!(
                        "\"addr\":\"{addr}\",\"owner\":\"{}\",\"access\":\"{}\"",
                        json_escape(&self.cubicles[owner.index()].name),
                        kind,
                    ),
                ),
                TraceEvent::FaultDenied {
                    addr,
                    owner,
                    accessor,
                    kind,
                } => instant(
                    r,
                    "fault_denied",
                    "fault",
                    accessor.index(),
                    &format!(
                        "\"addr\":\"{addr}\",\"owner\":\"{}\",\"access\":\"{}\"",
                        json_escape(&self.cubicles[owner.index()].name),
                        kind,
                    ),
                ),
                TraceEvent::Retag { addr, from, to } => instant(
                    r,
                    "retag",
                    "mpk",
                    self.page_meta
                        .get(&addr.page())
                        .map_or(0, |m| m.owner.index()),
                    &format!("\"addr\":\"{addr}\",\"from\":\"{from}\",\"to\":\"{to}\""),
                ),
                TraceEvent::WrPkru { pkru } => instant(
                    r,
                    "wrpkru",
                    "mpk",
                    0,
                    &format!("\"pkru\":\"{:#010x}\"", pkru.raw()),
                ),
                TraceEvent::WindowOp { op, wid, peer } => instant(
                    r,
                    &format!("window_{}", op.as_str()),
                    "window",
                    0,
                    &match peer {
                        Some(p) => format!(
                            "\"wid\":{},\"peer\":\"{}\"",
                            wid.0,
                            json_escape(&self.cubicles[p.index()].name)
                        ),
                        None => format!("\"wid\":{}", wid.0),
                    },
                ),
                TraceEvent::HeapAlloc {
                    cubicle,
                    addr,
                    bytes,
                } => instant(
                    r,
                    "heap_alloc",
                    "mem",
                    cubicle.index(),
                    &format!("\"addr\":\"{addr}\",\"bytes\":{bytes}"),
                ),
                TraceEvent::HeapFree { cubicle, addr } => instant(
                    r,
                    "heap_free",
                    "mem",
                    cubicle.index(),
                    &format!("\"addr\":\"{addr}\""),
                ),
                TraceEvent::StackCopy {
                    caller,
                    callee,
                    bytes,
                } => instant(
                    r,
                    "stack_copy",
                    "mem",
                    callee.index(),
                    &format!(
                        "\"caller\":\"{}\",\"bytes\":{bytes}",
                        json_escape(&self.cubicles[caller.index()].name)
                    ),
                ),
                // Quarantine opens a span on the cubicle's track; the
                // matching Restart closes it, so the quarantined period
                // shows as one solid block in Perfetto.
                TraceEvent::Quarantine { cubicle } => format!(
                    "{{\"ph\":\"B\",\"name\":\"quarantined\",\"cat\":\"containment\",\
                     \"pid\":{},\"tid\":{},\"ts\":{}}}",
                    r.core,
                    cubicle.index(),
                    r.at,
                ),
                TraceEvent::Restart {
                    cubicle,
                    generation,
                } => format!(
                    "{{\"ph\":\"E\",\"pid\":{},\"tid\":{},\"ts\":{},\
                     \"args\":{{\"generation\":{generation}}}}}",
                    r.core,
                    cubicle.index(),
                    r.at,
                ),
                TraceEvent::FaultContained {
                    callee,
                    caller,
                    errno,
                } => instant(
                    r,
                    "fault_contained",
                    "containment",
                    caller.index(),
                    &format!(
                        "\"callee\":\"{}\",\"errno\":{errno}",
                        json_escape(&self.cubicles[callee.index()].name)
                    ),
                ),
                TraceEvent::PageReclaim { addr, key } => instant(
                    r,
                    "page_reclaim",
                    "containment",
                    0,
                    &format!("\"addr\":\"{addr}\",\"key\":\"{key}\""),
                ),
            };
            push(line, &mut out);
        }
        out.push_str("\n]}");
        out
    }

    /// Exports all counters and histograms in the Prometheus text
    /// exposition format. Works with tracing disabled too (counters
    /// only; histograms need the tracer).
    pub fn export_prometheus(&mut self) -> String {
        self.pump_machine_events();
        let rows = self.ledger();
        let mut out = String::new();
        let counter = |name: &str, help: &str, v: u64, out: &mut String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        let per_cubicle = |name: &str,
                           help: &str,
                           kind: &str,
                           f: &dyn Fn(&LedgerRow) -> u64,
                           out: &mut String| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for r in &rows {
                out.push_str(&format!(
                    "{name}{{cubicle=\"{}\"}} {}\n",
                    prom_escape(&r.name),
                    f(r),
                ));
            }
        };
        let s = &self.stats;
        counter(
            "cubicle_cross_calls_total",
            "Cross-cubicle calls dispatched.",
            s.cross_calls,
            &mut out,
        );
        counter(
            "cubicle_faults_resolved_total",
            "Trap-and-map faults resolved.",
            s.faults_resolved,
            &mut out,
        );
        counter(
            "cubicle_faults_denied_total",
            "Trap-and-map faults denied.",
            s.faults_denied,
            &mut out,
        );
        counter(
            "cubicle_acl_probes_total",
            "Window descriptors probed.",
            s.acl_probes,
            &mut out,
        );
        counter(
            "cubicle_window_ops_total",
            "Window API operations.",
            s.window_ops,
            &mut out,
        );
        counter(
            "cubicle_stack_bytes_copied_total",
            "Stack argument bytes copied by trampolines.",
            s.stack_bytes_copied,
            &mut out,
        );
        counter(
            "cubicle_ipc_msgs_total",
            "IPC baseline messages.",
            s.ipc_msgs,
            &mut out,
        );
        counter(
            "cubicle_ipc_bytes_total",
            "IPC baseline payload bytes.",
            s.ipc_bytes,
            &mut out,
        );
        counter(
            "cubicle_quarantines_total",
            "Cubicles quarantined after a contained fault.",
            s.quarantines,
            &mut out,
        );
        counter(
            "cubicle_restarts_total",
            "Microreboots of quarantined cubicles.",
            s.restarts,
            &mut out,
        );
        counter(
            "cubicle_unwound_frames_total",
            "Cross-call frames unwound while containing a fault.",
            s.unwound_frames,
            &mut out,
        );
        counter(
            "cubicle_contained_faults_total",
            "Faults converted to an errno at a healthy caller.",
            s.contained_faults,
            &mut out,
        );
        counter(
            "cubicle_watchdog_trips_total",
            "Callees quarantined for exceeding their cycle budget.",
            s.watchdog_trips,
            &mut out,
        );
        counter(
            "cubicle_batch_dispatches_total",
            "Batched cross-call dispatches (one crossing per batch).",
            s.batch_dispatches,
            &mut out,
        );
        counter(
            "cubicle_batched_calls_total",
            "Entry invocations carried inside batched dispatches.",
            s.batched_calls,
            &mut out,
        );
        counter(
            "cubicle_grant_cache_hits_total",
            "Trap-and-map faults answered by the window-grant cache.",
            s.grant_cache_hits,
            &mut out,
        );
        counter(
            "cubicle_grant_cache_misses_total",
            "Grant-cache misses that took the linear window search.",
            s.grant_cache_misses,
            &mut out,
        );
        counter(
            "cubicle_grant_cache_invalidations_total",
            "Grant-cache entries dropped by precise invalidation.",
            s.grant_cache_invalidations,
            &mut out,
        );
        counter(
            "cubicle_wal_replays_total",
            "Write-ahead-log replays performed on database open.",
            s.wal_replays,
            &mut out,
        );
        counter(
            "cubicle_wal_frames_recovered_total",
            "Committed WAL frames applied during replays.",
            s.wal_frames_recovered,
            &mut out,
        );
        counter(
            "cubicle_wal_torn_tails_discarded_total",
            "Torn or uncommitted WAL tails discarded during replays.",
            s.wal_torn_tails_discarded,
            &mut out,
        );
        counter(
            "cubicle_ramfs_journal_replays_total",
            "RAMFS inode-journal replays after microreboots.",
            s.ramfs_journal_replays,
            &mut out,
        );
        counter(
            "cubicle_group_commit_batches_total",
            "Group-commit syncs covering two or more transactions.",
            s.group_commit_batches,
            &mut out,
        );
        let m = self.machine.stats();
        counter(
            "cubicle_wrpkru_total",
            "PKRU register writes.",
            m.wrpkru,
            &mut out,
        );
        counter(
            "cubicle_retags_total",
            "Page key re-assignments (pkey_mprotect).",
            m.retags,
            &mut out,
        );
        counter(
            "cubicle_machine_faults_total",
            "Protection faults raised.",
            m.faults,
            &mut out,
        );
        counter("cubicle_mem_reads_total", "Data loads.", m.reads, &mut out);
        counter(
            "cubicle_mem_writes_total",
            "Data stores.",
            m.writes,
            &mut out,
        );
        counter(
            "cubicle_sim_tlb_hits_total",
            "Simulator software-TLB hits (host-side; no cycle effect).",
            m.tlb_hits,
            &mut out,
        );
        counter(
            "cubicle_sim_tlb_misses_total",
            "Simulator software-TLB misses, i.e. full page-table walks.",
            m.tlb_misses,
            &mut out,
        );
        counter(
            "cubicle_page_reclaims_total",
            "Pages reclaimed (unmapped) by the quarantine path.",
            m.unmaps,
            &mut out,
        );
        counter(
            "cubicle_cycles_total",
            "Simulated cycle counter.",
            self.machine.now(),
            &mut out,
        );

        // Per-core counters (one series per simulated core).
        let cores = self.machine.num_cores();
        out.push_str(
            "# HELP cubicle_core_cycles Per-core simulated cycle counter.\n\
             # TYPE cubicle_core_cycles counter\n",
        );
        for i in 0..cores {
            out.push_str(&format!(
                "cubicle_core_cycles{{core=\"{i}\"}} {}\n",
                self.machine.core_cycles(i)
            ));
        }
        type Series<S> = (&'static str, &'static str, fn(&S) -> u64);
        let core_series: [Series<CoreStats>; 4] = [
            (
                "cubicle_core_tlb_hits_total",
                "Software-TLB hits on this core.",
                |s| s.tlb_hits,
            ),
            (
                "cubicle_core_tlb_misses_total",
                "Software-TLB misses on this core.",
                |s| s.tlb_misses,
            ),
            (
                "cubicle_core_cross_calls_total",
                "Cross-calls dispatched from this core.",
                |s| s.cross_calls,
            ),
            (
                "cubicle_core_wrpkru_total",
                "PKRU writes performed on this core.",
                |s| s.wrpkru,
            ),
        ];
        for (name, help, get) in core_series {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for i in 0..cores {
                let s = self.machine.core_stats(i);
                out.push_str(&format!("{name}{{core=\"{i}\"}} {}\n", get(&s)));
            }
        }

        // Monitor lock counters (one series per lock).
        let lock_series: [Series<MonitorLockStats>; 3] = [
            (
                "cubicle_lock_acquisitions_total",
                "Monitor lock acquisitions.",
                |s| s.acquisitions,
            ),
            (
                "cubicle_lock_contended_total",
                "Monitor lock acquisitions that spun (simulated contention).",
                |s| s.contended,
            ),
            (
                "cubicle_lock_wait_cycles_total",
                "Simulated cycles spent spinning on monitor locks.",
                |s| s.wait_cycles,
            ),
        ];
        let lock_stats = self.monitor_lock_stats();
        for (name, help, get) in lock_series {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for st in &lock_stats {
                out.push_str(&format!("{name}{{lock=\"{}\"}} {}\n", st.name, get(st)));
            }
        }

        // CubicleSan sanitizer counters, only while detection is on —
        // feature-off exports are byte-identical to the pre-sanitizer
        // kernel.
        if self.race.is_some() {
            out.push_str(&format!(
                "# HELP cubicle_san_races_total Data races reported by CubicleSan.\n\
                 # TYPE cubicle_san_races_total counter\n\
                 cubicle_san_races_total {}\n\
                 # HELP cubicle_san_lockorder_edges Distinct monitor lock-order edges observed.\n\
                 # TYPE cubicle_san_lockorder_edges gauge\n\
                 cubicle_san_lockorder_edges {}\n\
                 # HELP cubicle_san_lockset_violations_total Eraser lockset violations.\n\
                 # TYPE cubicle_san_lockset_violations_total counter\n\
                 cubicle_san_lockset_violations_total {}\n\
                 # HELP cubicle_san_lockorder_cyclic 1 when the lock-order graph has a cycle.\n\
                 # TYPE cubicle_san_lockorder_cyclic gauge\n\
                 cubicle_san_lockorder_cyclic {}\n",
                self.stats.race_reports,
                self.stats.lockorder_edges,
                self.stats.lockset_violations,
                u64::from(self.lockorder_cycle().is_some()),
            ));
        }

        // Per-edge call counters (available without tracing).
        out.push_str(
            "# HELP cubicle_call_edge_total Cross-calls per caller/callee edge.\n\
             # TYPE cubicle_call_edge_total counter\n",
        );
        let mut edges: Vec<_> = self.stats.call_edges.iter().collect();
        edges.sort();
        for (&(from, to), &n) in edges {
            out.push_str(&format!(
                "cubicle_call_edge_total{{caller=\"{}\",callee=\"{}\"}} {}\n",
                prom_escape(&self.cubicles[from.index()].name),
                prom_escape(&self.cubicles[to.index()].name),
                n,
            ));
        }

        // Per-cubicle resource ledger (available without tracing).
        per_cubicle(
            "cubicle_pages_owned",
            "Pages owned by the cubicle.",
            "gauge",
            &|r| r.pages_owned as u64,
            &mut out,
        );
        per_cubicle(
            "cubicle_pages_held_foreign",
            "Foreign pages currently retagged to the cubicle via trap-and-map.",
            "gauge",
            &|r| r.pages_held_foreign as u64,
            &mut out,
        );
        per_cubicle(
            "cubicle_windows_live",
            "Live window descriptors.",
            "gauge",
            &|r| r.windows as u64,
            &mut out,
        );
        per_cubicle(
            "cubicle_windows_open",
            "Window descriptors open for at least one peer.",
            "gauge",
            &|r| r.windows_open as u64,
            &mut out,
        );
        per_cubicle(
            "cubicle_heap_bytes_used",
            "Live bytes in the cubicle's heap sub-allocator.",
            "gauge",
            &|r| r.heap_used as u64,
            &mut out,
        );
        per_cubicle(
            "cubicle_stack_bytes_used",
            "Bytes of the per-cubicle stack in use.",
            "gauge",
            &|r| r.stack_used as u64,
            &mut out,
        );
        per_cubicle(
            "cubicle_key_parked",
            "1 when key virtualisation has parked the cubicle's key.",
            "gauge",
            &|r| u64::from(r.key_parked),
            &mut out,
        );
        per_cubicle(
            "cubicle_quarantined",
            "1 while the cubicle is quarantined.",
            "gauge",
            &|r| u64::from(r.quarantined()),
            &mut out,
        );
        per_cubicle(
            "cubicle_generation",
            "Microreboot incarnation of the cubicle.",
            "gauge",
            &|r| u64::from(r.generation),
            &mut out,
        );
        per_cubicle(
            "cubicle_calls_in_total",
            "Cross-calls into the cubicle.",
            "counter",
            &|r| r.calls_in,
            &mut out,
        );
        per_cubicle(
            "cubicle_calls_out_total",
            "Cross-calls out of the cubicle.",
            "counter",
            &|r| r.calls_out,
            &mut out,
        );
        per_cubicle(
            "cubicle_grant_cache_hits",
            "Trap-and-map faults by the cubicle answered from the grant cache.",
            "counter",
            &|r| r.grant_hits,
            &mut out,
        );

        let Some(tracer) = &self.tracer else {
            return out;
        };
        counter(
            "cubicle_trace_events_dropped_total",
            "Trace records overwritten (ring full).",
            tracer.buf.dropped(),
            &mut out,
        );
        counter(
            "cubicle_trace_events_recorded_total",
            "Trace records ever pushed.",
            tracer.buf.total_recorded(),
            &mut out,
        );
        counter(
            "cubicle_fault_audit_dropped_total",
            "Fault-audit records evicted (ring full).",
            tracer.audit_dropped,
            &mut out,
        );
        counter(
            "cubicle_spans_completed_total",
            "Cross-call spans closed by the profiler.",
            tracer.spans_completed(),
            &mut out,
        );

        // Per-cubicle causal cycle attribution (span profiler).
        per_cubicle(
            "cubicle_cycles_self",
            "Exclusive cycles the span profiler attributes to the cubicle.",
            "counter",
            &|r| r.cycles_self,
            &mut out,
        );
        per_cubicle(
            "cubicle_cycles_inclusive",
            "Inclusive cycles: self plus everything the cubicle's calls caused.",
            "counter",
            &|r| r.cycles_total,
            &mut out,
        );

        // Per-edge latency histograms.
        out.push_str(
            "# HELP cubicle_cross_call_cycles Cross-call latency in simulated cycles.\n\
             # TYPE cubicle_cross_call_cycles histogram\n",
        );
        for (&(from, to), h) in tracer.metrics.edges() {
            let labels = format!(
                "caller=\"{}\",callee=\"{}\"",
                prom_escape(&self.cubicles[from.index()].name),
                prom_escape(&self.cubicles[to.index()].name),
            );
            prom_histogram("cubicle_cross_call_cycles", &labels, h, &mut out);
        }
        out.push_str(
            "# HELP cubicle_entry_cycles Per-entry-point call latency in simulated cycles.\n\
             # TYPE cubicle_entry_cycles histogram\n",
        );
        for (&entry, h) in tracer.metrics.entries() {
            let name = self
                .entries
                .get(entry.index())
                .map_or_else(|| entry.to_string(), |d| d.name.clone());
            let labels = format!("entry=\"{}\"", prom_escape(&name));
            prom_histogram("cubicle_entry_cycles", &labels, h, &mut out);
        }
        out
    }

    /// Rejection records from the loader: one line per refused image,
    /// with the total occurrence count and first offset from the
    /// exhaustive [`cubicle_mpk::insn::CodeImage::scan_all`] scan.
    /// Recorded even when tracing is off (capped at 64 entries).
    pub fn loader_audit(&self) -> &[String] {
        &self.loader_audit
    }

    /// Renders the loader + trap-and-map audit logs as human-readable
    /// text: one line per refused image, then one line per fault, saying
    /// who touched whose page and which window descriptor (or rule)
    /// decided. Fault lines are present only while tracing is enabled;
    /// loader rejections are always kept.
    pub fn export_fault_audit(&self) -> String {
        let mut out = String::new();
        for line in &self.loader_audit {
            out.push_str(line);
            out.push('\n');
        }
        for line in &self.containment_log {
            out.push_str(line);
            out.push('\n');
        }
        for line in &self.recovery_log {
            out.push_str(line);
            out.push('\n');
        }
        for a in self.fault_audit() {
            let accessor = &self.cubicles[a.accessor.index()].name;
            let owner = &self.cubicles[a.owner.index()].name;
            let access = a.access;
            let verdict = match a.decision {
                FaultDecision::OwnerReclaim => "RESOLVED (owner reclaim)".to_string(),
                FaultDecision::AclsDisabled => "RESOLVED (ACLs disabled)".to_string(),
                FaultDecision::Window(wid) => format!("RESOLVED (via {wid})"),
                FaultDecision::Denied => "DENIED (no open window)".to_string(),
            };
            out.push_str(&format!(
                "[cycle {:>12}] {accessor} {access} {} owned by {owner}: {verdict}\n",
                a.at, a.addr,
            ));
        }
        // A saturated ring must be visible: otherwise a clean-looking
        // audit could silently be missing its oldest records.
        if let Some(tracer) = &self.tracer {
            if tracer.buf.dropped() > 0 || tracer.audit_dropped > 0 {
                out.push_str(&format!(
                    "dropped: {} trace event(s) overwritten, {} fault-audit record(s) \
                     evicted (ring full)\n",
                    tracer.buf.dropped(),
                    tracer.audit_dropped,
                ));
            }
        }
        // CubicleSan verdict, only while detection is on — harnesses and
        // CI grep `races: 0` / `lockorder: acyclic` from this block, and
        // feature-off exports stay byte-identical to the pre-sanitizer
        // kernel.
        if let Some(race) = &self.race {
            for r in race.reports() {
                out.push_str(&format!("sanitizer: {r}\n"));
            }
            for v in race.violations() {
                out.push_str(&format!("sanitizer: {v}\n"));
            }
            out.push_str(&format!("races: {}\n", self.stats.race_reports));
            match race.lockorder_cycle() {
                None => out.push_str("lockorder: acyclic\n"),
                Some(cycle) => out.push_str(&format!("lockorder: cycle {cycle}\n")),
            }
            out.push_str(&format!(
                "lockset-violations: {}\n",
                self.stats.lockset_violations
            ));
        }
        out
    }
}

/// Formats one instant event ("ph":"i") for the Chrome trace, on the
/// process of the core that recorded it.
fn instant(r: &crate::trace::TraceRecord, name: &str, cat: &str, tid: usize, args: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"name\":\"{name}\",\"cat\":\"{cat}\",\"pid\":{},\"tid\":{tid},\
         \"ts\":{},\"s\":\"t\",\"args\":{{{args}}}}}",
        r.core, r.at,
    )
}

/// Appends one histogram series in Prometheus text exposition format.
///
/// The internal log2 bins are folded onto a *fixed* cumulative `le`
/// layout (0, then 2^4-1 … 2^32-1, then `+Inf`): Prometheus'
/// `histogram_quantile` and scrape-time aggregation require every
/// series of a family to expose the same bucket boundaries on every
/// scrape, which the occupied-bins-only export could not guarantee.
fn prom_histogram(name: &str, labels: &str, h: &crate::metrics::CycleHisto, out: &mut String) {
    const LE_BITS: [usize; 9] = [0, 4, 8, 12, 16, 20, 24, 28, 32];
    let buckets = h.buckets();
    for &bits in &LE_BITS {
        let cum: u64 = buckets[..=bits].iter().sum();
        let le = if bits == 0 { 0 } else { (1u64 << bits) - 1 };
        out.push_str(&format!("{name}_bucket{{{labels},le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels},le=\"+Inf\"}} {}\n",
        h.count()
    ));
    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", h.sum()));
    out.push_str(&format!("{name}_count{{{labels}}} {}\n", h.count()));
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus label-value escaping (backslash, quote, newline).
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

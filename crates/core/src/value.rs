//! Values passed across cubicle boundaries.
//!
//! Cross-cubicle calls keep "the same semantics as direct function calls:
//! e.g., the caller can pass a pointer and a scalar value to the callee"
//! (paper §2.1). A [`Value`] is therefore either a scalar or a pointer;
//! buffers are passed as *pointer + length* with a transfer direction so
//! that the message-passing baselines (which must copy) can account for
//! data movement, while CubicleOS itself passes them zero-copy.

use cubicle_mpk::VAddr;
use std::fmt;

/// Direction of a buffer argument, from the caller's perspective.
///
/// CubicleOS ignores the direction (windows make the bytes directly
/// accessible); the IPC baselines use it to decide which way the bytes
/// must be copied through messages.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BufDir {
    /// The callee reads the buffer (e.g., `write(fd, buf, n)`).
    In,
    /// The callee fills the buffer (e.g., `read(fd, buf, n)`).
    Out,
    /// The callee both reads and updates it.
    InOut,
}

/// One argument or return value of a cross-cubicle call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Value {
    /// No value (a `void` return).
    Unit,
    /// A signed scalar, also used for POSIX-style `-errno` returns.
    I64(i64),
    /// An unsigned scalar.
    U64(u64),
    /// A raw pointer into the simulated address space.
    Ptr(VAddr),
    /// A pointer + length pair with a transfer direction.
    Buf {
        /// Start of the buffer.
        addr: VAddr,
        /// Length in bytes.
        len: usize,
        /// Transfer direction.
        dir: BufDir,
    },
}

impl Value {
    /// Convenience constructor for an input buffer.
    pub fn buf_in(addr: VAddr, len: usize) -> Value {
        Value::Buf {
            addr,
            len,
            dir: BufDir::In,
        }
    }

    /// Convenience constructor for an output buffer.
    pub fn buf_out(addr: VAddr, len: usize) -> Value {
        Value::Buf {
            addr,
            len,
            dir: BufDir::Out,
        }
    }

    /// Extracts an `i64`, panicking with a descriptive message otherwise.
    ///
    /// Entry-point implementations use these accessors to destructure
    /// their arguments; a type mismatch is a bug in the trampoline
    /// signature, which the trusted builder generated, hence a panic
    /// rather than a recoverable error.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::I64`].
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            other => panic!("expected I64 argument, got {other:?}"),
        }
    }

    /// Extracts a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::U64`].
    pub fn as_u64(&self) -> u64 {
        match self {
            Value::U64(v) => *v,
            other => panic!("expected U64 argument, got {other:?}"),
        }
    }

    /// Extracts a pointer.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Ptr`].
    pub fn as_ptr(&self) -> VAddr {
        match self {
            Value::Ptr(p) => *p,
            other => panic!("expected Ptr argument, got {other:?}"),
        }
    }

    /// Extracts a buffer as `(addr, len)`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not [`Value::Buf`].
    pub fn as_buf(&self) -> (VAddr, usize) {
        match self {
            Value::Buf { addr, len, .. } => (*addr, *len),
            other => panic!("expected Buf argument, got {other:?}"),
        }
    }

    /// Bytes that an IPC transport must copy caller→callee for this value.
    pub fn bytes_in(&self) -> usize {
        match self {
            Value::Buf {
                len,
                dir: BufDir::In | BufDir::InOut,
                ..
            } => *len,
            _ => 0,
        }
    }

    /// Bytes that an IPC transport must copy callee→caller for this value.
    pub fn bytes_out(&self) -> usize {
        match self {
            Value::Buf {
                len,
                dir: BufDir::Out | BufDir::InOut,
                ..
            } => *len,
            _ => 0,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}u"),
            Value::Ptr(p) => write!(f, "{p}"),
            Value::Buf { addr, len, dir } => write!(f, "buf({addr}, {len}, {dir:?})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<VAddr> for Value {
    fn from(p: VAddr) -> Value {
        Value::Ptr(p)
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Value {
        Value::Unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::I64(-5).as_i64(), -5);
        assert_eq!(Value::U64(7).as_u64(), 7);
        assert_eq!(Value::Ptr(VAddr::new(0x10)).as_ptr(), VAddr::new(0x10));
        assert_eq!(
            Value::buf_in(VAddr::new(0x20), 4).as_buf(),
            (VAddr::new(0x20), 4)
        );
    }

    #[test]
    #[should_panic(expected = "expected I64")]
    fn type_confusion_panics() {
        Value::U64(1).as_i64();
    }

    #[test]
    fn transfer_accounting_by_direction() {
        let a = VAddr::new(0x1000);
        assert_eq!(Value::buf_in(a, 100).bytes_in(), 100);
        assert_eq!(Value::buf_in(a, 100).bytes_out(), 0);
        assert_eq!(Value::buf_out(a, 100).bytes_in(), 0);
        assert_eq!(Value::buf_out(a, 100).bytes_out(), 100);
        let io = Value::Buf {
            addr: a,
            len: 8,
            dir: BufDir::InOut,
        };
        assert_eq!(io.bytes_in(), 8);
        assert_eq!(io.bytes_out(), 8);
        assert_eq!(Value::I64(3).bytes_in() + Value::I64(3).bytes_out(), 0);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::I64(3));
        assert_eq!(Value::from(3u64), Value::U64(3));
        assert_eq!(Value::from(VAddr::new(1)), Value::Ptr(VAddr::new(1)));
        assert_eq!(Value::from(()), Value::Unit);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::I64(-1).to_string(), "-1");
        assert_eq!(Value::U64(1).to_string(), "1u");
    }
}

//! POSIX-style error numbers for component interfaces.
//!
//! Unikraft components keep POSIX call semantics, returning negative error
//! numbers across interfaces. Entry points in this reproduction do the
//! same — a cross-cubicle call returns `Value::I64(-errno)` on a domain
//! error — which keeps the trampoline ABI to scalars and pointers, exactly
//! like the C original.

use std::fmt;

/// A small POSIX errno subset used by the library OS components.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted.
    Eperm = 1,
    /// No such file or directory.
    Enoent = 2,
    /// I/O error.
    Eio = 5,
    /// Bad file descriptor.
    Ebadf = 9,
    /// Out of memory.
    Enomem = 12,
    /// Permission denied.
    Eacces = 13,
    /// Bad address. The monitor's unwind path returns this to the nearest
    /// healthy caller when a fault was contained to a quarantined cubicle.
    Efault = 14,
    /// File exists.
    Eexist = 17,
    /// Not a directory.
    Enotdir = 20,
    /// Is a directory.
    Eisdir = 21,
    /// Invalid argument.
    Einval = 22,
    /// Too many open files.
    Emfile = 24,
    /// No space left on device.
    Enospc = 28,
    /// Function not implemented.
    Enosys = 38,
    /// Directory not empty.
    Enotempty = 39,
    /// Address already in use.
    Eaddrinuse = 98,
    /// Connection reset by peer.
    Econnreset = 104,
    /// Not connected.
    Enotconn = 107,
    /// Connection timed out. The watchdog's unwind path returns this to
    /// the nearest healthy caller when a callee overran its cycle budget.
    Etimedout = 110,
    /// Connection refused.
    Econnrefused = 111,
    /// Operation would block.
    Ewouldblock = 11,
}

impl Errno {
    /// The negative `i64` this errno encodes to on the wire.
    pub const fn neg(self) -> i64 {
        -(self as i32 as i64)
    }

    /// Decodes a negative return value back into an errno.
    ///
    /// Returns `None` for non-negative values or unknown numbers.
    pub fn from_neg(value: i64) -> Option<Errno> {
        if value >= 0 {
            return None;
        }
        Some(match -value {
            1 => Errno::Eperm,
            2 => Errno::Enoent,
            5 => Errno::Eio,
            9 => Errno::Ebadf,
            11 => Errno::Ewouldblock,
            12 => Errno::Enomem,
            13 => Errno::Eacces,
            14 => Errno::Efault,
            17 => Errno::Eexist,
            20 => Errno::Enotdir,
            21 => Errno::Eisdir,
            22 => Errno::Einval,
            24 => Errno::Emfile,
            28 => Errno::Enospc,
            38 => Errno::Enosys,
            39 => Errno::Enotempty,
            98 => Errno::Eaddrinuse,
            104 => Errno::Econnreset,
            107 => Errno::Enotconn,
            110 => Errno::Etimedout,
            111 => Errno::Econnrefused,
            _ => return None,
        })
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Errno::Eperm => "EPERM",
            Errno::Enoent => "ENOENT",
            Errno::Eio => "EIO",
            Errno::Ebadf => "EBADF",
            Errno::Enomem => "ENOMEM",
            Errno::Eacces => "EACCES",
            Errno::Efault => "EFAULT",
            Errno::Eexist => "EEXIST",
            Errno::Enotdir => "ENOTDIR",
            Errno::Eisdir => "EISDIR",
            Errno::Einval => "EINVAL",
            Errno::Emfile => "EMFILE",
            Errno::Enospc => "ENOSPC",
            Errno::Enosys => "ENOSYS",
            Errno::Enotempty => "ENOTEMPTY",
            Errno::Eaddrinuse => "EADDRINUSE",
            Errno::Econnreset => "ECONNRESET",
            Errno::Enotconn => "ENOTCONN",
            Errno::Etimedout => "ETIMEDOUT",
            Errno::Econnrefused => "ECONNREFUSED",
            Errno::Ewouldblock => "EWOULDBLOCK",
        };
        f.write_str(name)
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_round_trip() {
        for e in [
            Errno::Eperm,
            Errno::Enoent,
            Errno::Eio,
            Errno::Ebadf,
            Errno::Enomem,
            Errno::Eacces,
            Errno::Efault,
            Errno::Eexist,
            Errno::Enotdir,
            Errno::Eisdir,
            Errno::Einval,
            Errno::Emfile,
            Errno::Enospc,
            Errno::Enosys,
            Errno::Enotempty,
            Errno::Eaddrinuse,
            Errno::Econnreset,
            Errno::Enotconn,
            Errno::Etimedout,
            Errno::Econnrefused,
            Errno::Ewouldblock,
        ] {
            assert!(e.neg() < 0);
            assert_eq!(Errno::from_neg(e.neg()), Some(e), "{e}");
        }
    }

    #[test]
    fn non_negative_is_not_an_error() {
        assert_eq!(Errno::from_neg(0), None);
        assert_eq!(Errno::from_neg(42), None);
    }

    #[test]
    fn unknown_number_is_none() {
        assert_eq!(Errno::from_neg(-9999), None);
    }

    #[test]
    fn display_is_upper_snake() {
        assert_eq!(Errno::Enoent.to_string(), "ENOENT");
        assert_eq!(Errno::Ewouldblock.to_string(), "EWOULDBLOCK");
    }
}

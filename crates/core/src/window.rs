//! Window descriptors: user-managed ACLs for temporal memory sharing.
//!
//! "Each window contains a set of memory ranges in a cubicle, and the set
//! of other cubicles that can access them at any point in time" (paper
//! §3). Descriptors hold an address, a size and a bitmask of cubicles
//! (§5.3); the monitor searches them linearly during trap-and-map, which
//! is fast because "all but one cubicle have less than ten windows at any
//! point in time".

use crate::ids::{CubicleId, WindowId};
use cubicle_mpk::VAddr;

/// One contiguous memory range published in a window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WindowRange {
    /// First byte of the range.
    pub start: VAddr,
    /// Length in bytes.
    pub len: usize,
}

impl WindowRange {
    /// Returns `true` if `addr` falls inside this range.
    pub fn contains(&self, addr: VAddr) -> bool {
        addr >= self.start && addr.raw() < self.start.raw() + self.len as u64
    }
}

/// A window: a set of ranges plus the ACL bitmask of cubicles that may
/// access them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Window {
    id: WindowId,
    ranges: Vec<WindowRange>,
    /// Bit *i* set ⇒ cubicle *i* may access the window's contents.
    mask: u64,
}

impl Window {
    /// Creates an empty, closed window.
    pub fn new(id: WindowId) -> Window {
        Window {
            id,
            ranges: Vec::new(),
            mask: 0,
        }
    }

    /// This window's identifier.
    pub fn id(&self) -> WindowId {
        self.id
    }

    /// The published ranges.
    pub fn ranges(&self) -> &[WindowRange] {
        &self.ranges
    }

    /// The raw ACL bitmask.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Associates the memory range `[ptr, ptr+len)` with this window
    /// (`cubicle_window_add`).
    pub fn add_range(&mut self, ptr: VAddr, len: usize) {
        self.ranges.push(WindowRange { start: ptr, len });
    }

    /// Removes the range previously added at `ptr`
    /// (`cubicle_window_remove`). Returns `true` if a range was removed.
    pub fn remove_range(&mut self, ptr: VAddr) -> bool {
        let before = self.ranges.len();
        self.ranges.retain(|r| r.start != ptr);
        self.ranges.len() != before
    }

    /// Opens the window for `cid` (`cubicle_window_open`).
    pub fn open_for(&mut self, cid: CubicleId) {
        self.mask |= cid.mask_bit();
    }

    /// Closes the window for `cid` (`cubicle_window_close`).
    pub fn close_for(&mut self, cid: CubicleId) {
        self.mask &= !cid.mask_bit();
    }

    /// Closes the window for everyone (`cubicle_window_close_all`).
    pub fn close_all(&mut self) {
        self.mask = 0;
    }

    /// Is the window currently open for `cid`?
    pub fn is_open_for(&self, cid: CubicleId) -> bool {
        self.mask & cid.mask_bit() != 0
    }

    /// Returns `(covers, allowed)` for an access by `accessor` at `addr`:
    /// whether any range covers the address and, if so, whether the ACL
    /// admits the accessor. Also reports the number of ranges probed, so
    /// the monitor can charge the linear-search cost.
    pub fn check(&self, addr: VAddr, accessor: CubicleId) -> WindowCheck {
        let mut probes = 0;
        for range in &self.ranges {
            probes += 1;
            if range.contains(addr) {
                return WindowCheck {
                    covers: true,
                    allowed: self.is_open_for(accessor),
                    probes,
                };
            }
        }
        WindowCheck {
            covers: false,
            allowed: false,
            probes,
        }
    }
}

/// Result of probing one window during trap-and-map.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WindowCheck {
    /// A range of the window covers the faulting address.
    pub covers: bool,
    /// The ACL admits the accessor (meaningful only when `covers`).
    pub allowed: bool,
    /// Number of range descriptors inspected.
    pub probes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> Window {
        Window::new(WindowId(1))
    }

    #[test]
    fn new_window_is_closed_and_empty() {
        let win = w();
        assert_eq!(win.ranges().len(), 0);
        assert_eq!(win.mask(), 0);
        assert!(!win.is_open_for(CubicleId(3)));
    }

    #[test]
    fn range_containment() {
        let r = WindowRange {
            start: VAddr::new(0x1000),
            len: 0x100,
        };
        assert!(r.contains(VAddr::new(0x1000)));
        assert!(r.contains(VAddr::new(0x10ff)));
        assert!(!r.contains(VAddr::new(0x1100)));
        assert!(!r.contains(VAddr::new(0xfff)));
    }

    #[test]
    fn open_close_per_cubicle() {
        let mut win = w();
        win.open_for(CubicleId(2));
        win.open_for(CubicleId(5));
        assert!(win.is_open_for(CubicleId(2)));
        assert!(win.is_open_for(CubicleId(5)));
        assert!(!win.is_open_for(CubicleId(3)));
        win.close_for(CubicleId(2));
        assert!(!win.is_open_for(CubicleId(2)));
        assert!(win.is_open_for(CubicleId(5)));
        win.close_all();
        assert_eq!(win.mask(), 0);
    }

    #[test]
    fn add_remove_ranges() {
        let mut win = w();
        win.add_range(VAddr::new(0x1000), 16);
        win.add_range(VAddr::new(0x2000), 32);
        assert_eq!(win.ranges().len(), 2);
        assert!(win.remove_range(VAddr::new(0x1000)));
        assert_eq!(win.ranges().len(), 1);
        assert!(!win.remove_range(VAddr::new(0x1000)));
    }

    #[test]
    fn check_reports_probes_and_acl() {
        let mut win = w();
        win.add_range(VAddr::new(0x1000), 16);
        win.add_range(VAddr::new(0x2000), 16);
        win.open_for(CubicleId(4));

        // hit on second range, allowed
        let c = win.check(VAddr::new(0x2008), CubicleId(4));
        assert!(c.covers && c.allowed);
        assert_eq!(c.probes, 2);

        // hit but ACL closed for this cubicle
        let c = win.check(VAddr::new(0x2008), CubicleId(7));
        assert!(c.covers && !c.allowed);

        // miss scans everything
        let c = win.check(VAddr::new(0x9000), CubicleId(4));
        assert!(!c.covers && !c.allowed);
        assert_eq!(c.probes, 2);
    }

    #[test]
    fn reopening_after_close_works() {
        let mut win = w();
        win.open_for(CubicleId(1));
        win.close_all();
        win.open_for(CubicleId(1));
        assert!(win.is_open_for(CubicleId(1)));
    }
}

//! Isolation modes: the knobs behind the paper's ablation and baselines.

/// Cycle cost model for a message-passing (microkernel-style) transport,
/// used by the IPC baselines of §6.5 / Figure 10.
///
/// The same component graph runs unchanged; every cross-component call is
/// charged as a synchronous IPC: a fixed kernel round trip plus a
/// per-byte marshalling cost for each buffer argument (microkernel
/// interfaces must copy — they have no windows).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IpcCostModel {
    /// Human-readable kernel name ("seL4", "Fiasco.OC", …).
    pub kernel: &'static str,
    /// Fixed cycles per call/return pair: two address-space switches, the
    /// kernel IPC path, capability/endpoint lookup, and the dispatcher on
    /// the callee side.
    pub fixed: u64,
    /// Cycles per byte moved through the message channel (covers the
    /// copy in, the copy out, and cache effects).
    pub per_byte: u64,
    /// Effective signalling granularity of bulk-data *server* interfaces
    /// (Genode packet streams): a bulk operation to a file-system server
    /// is split into packets of this many bytes, each its own kernel
    /// round trip. `0` disables packetisation. Window-based CubicleOS
    /// has no analogue — grants are per-range, not per-packet.
    pub packet_bytes: usize,
}

/// How the kernel mediates component interaction.
///
/// `Unikraft`, `NoMpk`, `NoAcl` and `Full` generate the four curves of
/// Figure 6; `Ipc` generates the Genode/microkernel baselines of
/// Figure 10.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IsolationMode {
    /// Baseline Unikraft: direct calls in a single unprotected address
    /// space. No trampolines, no MPK, windows are free no-ops.
    Unikraft,
    /// Cross-cubicle call trampolines (stack switch, entry bookkeeping)
    /// but no MPK protection: the PKRU stays wide open, so no faults and
    /// no retagging. "CubicleOS w/o MPK" in Figure 6.
    NoMpk,
    /// MPK protection active (PKRU switched per cubicle, trap-and-map
    /// runs) but window ACLs are not consulted: any faulting access is
    /// granted. "CubicleOS w/o ACLs" in Figure 6.
    NoAcl,
    /// Full CubicleOS: trampolines + MPK + window ACLs.
    #[default]
    Full,
    /// Message-based interface baseline: direct data access is replaced by
    /// per-call marshalling costs according to the given kernel model.
    Ipc(IpcCostModel),
}

impl IsolationMode {
    /// Does this mode switch PKRU across cubicles (and therefore fault)?
    pub const fn mpk_active(self) -> bool {
        matches!(self, IsolationMode::NoAcl | IsolationMode::Full)
    }

    /// Does this mode run cross-cubicle call trampolines?
    pub const fn trampolines_active(self) -> bool {
        matches!(
            self,
            IsolationMode::NoMpk | IsolationMode::NoAcl | IsolationMode::Full
        )
    }

    /// Does this mode consult (and charge for) window ACLs?
    pub const fn acls_active(self) -> bool {
        matches!(self, IsolationMode::Full)
    }

    /// Short label used by the benchmark harnesses.
    pub const fn label(self) -> &'static str {
        match self {
            IsolationMode::Unikraft => "Unikraft",
            IsolationMode::NoMpk => "CubicleOS w/o MPK",
            IsolationMode::NoAcl => "CubicleOS w/o ACLs",
            IsolationMode::Full => "CubicleOS",
            IsolationMode::Ipc(m) => m.kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_ladder_is_monotone() {
        // Each Fig. 6 configuration enables a superset of mechanisms.
        assert!(!IsolationMode::Unikraft.trampolines_active());
        assert!(IsolationMode::NoMpk.trampolines_active());
        assert!(!IsolationMode::NoMpk.mpk_active());
        assert!(IsolationMode::NoAcl.mpk_active());
        assert!(!IsolationMode::NoAcl.acls_active());
        assert!(IsolationMode::Full.mpk_active());
        assert!(IsolationMode::Full.acls_active());
    }

    #[test]
    fn ipc_mode_has_no_mpk() {
        let ipc = IsolationMode::Ipc(IpcCostModel {
            kernel: "seL4",
            fixed: 1,
            per_byte: 1,
            packet_bytes: 0,
        });
        assert!(!ipc.mpk_active());
        assert!(!ipc.acls_active());
        assert_eq!(ipc.label(), "seL4");
    }

    #[test]
    fn labels_match_figure_6() {
        assert_eq!(IsolationMode::Unikraft.label(), "Unikraft");
        assert_eq!(IsolationMode::NoMpk.label(), "CubicleOS w/o MPK");
        assert_eq!(IsolationMode::NoAcl.label(), "CubicleOS w/o ACLs");
        assert_eq!(IsolationMode::Full.label(), "CubicleOS");
    }

    #[test]
    fn default_is_full() {
        assert_eq!(IsolationMode::default(), IsolationMode::Full);
    }
}

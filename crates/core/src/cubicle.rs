//! Per-cubicle kernel state.

use crate::heap::SubAllocator;
use crate::ids::{CubicleId, WindowId};
use crate::window::Window;
use cubicle_mpk::{ProtKey, VAddr};

/// The kind of memory a page holds, recorded in the monitor's page
/// metadata map (paper §5.3: "owner and type (code, global data, stack or
/// heap)").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegionType {
    /// Executable component code.
    Code,
    /// Global (static) data.
    GlobalData,
    /// Per-cubicle stack.
    Stack,
    /// Heap.
    Heap,
}

/// Lifecycle state of a cubicle, maintained by the monitor's fault
/// containment machinery.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CubicleState {
    /// Serving: cross-calls in and out are dispatched normally.
    #[default]
    Active,
    /// The monitor contained a fault to this cubicle: its windows were
    /// destroyed, its pages reclaimed and its key parked. Cross-calls
    /// into it are rejected with [`crate::CubicleError::Quarantined`]
    /// until [`crate::System::restart`] reboots it.
    Quarantined,
}

/// One stack in a cubicle's re-entrancy pool. Slot 0 is the cubicle's
/// primary stack (the `stack_base`/`stack_len` region); further slots are
/// mapped on demand when several simulated cores are inside the cubicle
/// at overlapping *simulated* times. `busy_until` is the simulated cycle
/// at which the frame using the slot returned (`u64::MAX` while a frame
/// is live on it): a slot is free for a new entry at cycle `t` iff
/// `busy_until <= t`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StackSlot {
    /// Base of the stack region.
    pub base: VAddr,
    /// Stack size in bytes.
    pub len: usize,
    /// Simulated cycle when the slot's last frame exited (`u64::MAX`
    /// while occupied).
    pub busy_until: u64,
}

/// Kernel-side record of one cubicle.
#[derive(Debug)]
pub struct Cubicle {
    /// This cubicle's ID.
    pub id: CubicleId,
    /// Human-readable name (e.g. `VFSCORE`).
    pub name: String,
    /// The MPK key all this cubicle's pages are tagged with.
    pub key: ProtKey,
    /// Shared cubicles (LIBC-style) execute with the caller's privileges
    /// and their static data is accessible to every cubicle.
    pub shared: bool,
    /// Byte-granularity heap sub-allocator.
    pub heap: SubAllocator,
    /// Base of the per-cubicle stack region.
    pub stack_base: VAddr,
    /// Stack size in bytes.
    pub stack_len: usize,
    /// Current bump offset into the stack (grows upward in the model).
    pub stack_used: usize,
    /// Window descriptors owned by this cubicle.
    pub windows: Vec<Window>,
    next_window: u32,
    /// Lifecycle state (quarantined after a contained fault).
    pub state: CubicleState,
    /// Incremented on every microreboot; 0 for the original incarnation.
    pub generation: u32,
    /// Why the cubicle was quarantined (`None` while active).
    pub quarantine_reason: Option<String>,
    /// Set when the cycle watchdog quarantined this cubicle, so callers
    /// see `ETIMEDOUT` rather than `EFAULT` at the containment boundary.
    /// Cleared by [`crate::System::restart`].
    pub timed_out: bool,
    /// Fault-injection knob: cap on total heap pages the monitor will
    /// grant (`None` = unlimited). Growth beyond the cap fails with
    /// `OutOfMemory`, modelling heap exhaustion mid-call.
    pub heap_limit_pages: Option<usize>,
    /// Heap pages granted so far (reset on quarantine).
    pub heap_pages_granted: usize,
    /// Simulated cycle at which this cubicle was last quarantined; feeds
    /// the restart backoff policy ([`crate::System::set_restart_policy`]).
    pub quarantined_at: u64,
    /// Re-entrancy stack pool (multi-core): slot 0 mirrors the primary
    /// stack, extra slots are pooled stacks for overlapping entries.
    /// Lazily initialised on the first pooled cross-call; emptied by
    /// quarantine teardown.
    pub stack_pool: Vec<StackSlot>,
    /// Core that most recently executed inside this cubicle (host-side
    /// observability for the per-core ledger column).
    pub last_core: u32,
}

impl Cubicle {
    /// Creates an empty cubicle record.
    pub fn new(id: CubicleId, name: impl Into<String>, key: ProtKey, shared: bool) -> Cubicle {
        Cubicle {
            id,
            name: name.into(),
            key,
            shared,
            heap: SubAllocator::new(),
            stack_base: VAddr::NULL,
            stack_len: 0,
            stack_used: 0,
            windows: Vec::new(),
            next_window: 1, // window 0 is the implicit self-window
            state: CubicleState::Active,
            generation: 0,
            quarantine_reason: None,
            timed_out: false,
            heap_limit_pages: None,
            heap_pages_granted: 0,
            quarantined_at: 0,
            stack_pool: Vec::new(),
            last_core: 0,
        }
    }

    /// Is this cubicle currently quarantined?
    pub fn is_quarantined(&self) -> bool {
        self.state == CubicleState::Quarantined
    }

    /// Creates a new empty window and returns its ID.
    pub fn window_init(&mut self) -> WindowId {
        let id = WindowId(self.next_window);
        self.next_window += 1;
        self.windows.push(Window::new(id));
        id
    }

    /// Looks up a window by ID.
    pub fn window(&self, wid: WindowId) -> Option<&Window> {
        self.windows.iter().find(|w| w.id() == wid)
    }

    /// Looks up a window mutably.
    pub fn window_mut(&mut self, wid: WindowId) -> Option<&mut Window> {
        self.windows.iter_mut().find(|w| w.id() == wid)
    }

    /// Destroys a window; returns `true` if it existed.
    pub fn window_destroy(&mut self, wid: WindowId) -> bool {
        let before = self.windows.len();
        self.windows.retain(|w| w.id() != wid);
        self.windows.len() != before
    }

    /// Number of live windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> Cubicle {
        Cubicle::new(CubicleId(1), "VFS", ProtKey::new(1).unwrap(), false)
    }

    #[test]
    fn window_lifecycle() {
        let mut cu = c();
        let w1 = cu.window_init();
        let w2 = cu.window_init();
        assert_ne!(w1, w2);
        assert_eq!(cu.window_count(), 2);
        assert!(cu.window(w1).is_some());
        assert!(cu.window_destroy(w1));
        assert!(!cu.window_destroy(w1));
        assert!(cu.window(w1).is_none());
        assert_eq!(cu.window_count(), 1);
    }

    #[test]
    fn window_ids_not_reused() {
        let mut cu = c();
        let w1 = cu.window_init();
        cu.window_destroy(w1);
        let w2 = cu.window_init();
        assert_ne!(w1, w2, "destroyed IDs must not be recycled");
    }

    #[test]
    fn names_and_flags() {
        let cu = c();
        assert_eq!(cu.name, "VFS");
        assert!(!cu.shared);
        assert_eq!(cu.id, CubicleId(1));
    }
}

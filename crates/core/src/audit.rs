//! The kernel invariant auditor: `System::audit()`.
//!
//! The loader verifies a component *before* it runs (forbidden-instruction
//! scan, W^X mapping, builder signatures — paper §5.4). The auditor is the
//! complementary *runtime* check: it walks a snapshot of machine + kernel
//! state and verifies that the global isolation invariants still hold
//! after any sequence of cross-calls, trap-and-map resolutions, window
//! operations and key-virtualisation evictions. Harnesses run it at
//! scenario end; the test suite runs it after every step of randomized
//! scenarios.
//!
//! Invariant classes checked:
//!
//! * **W^X** — no mapped page is simultaneously writable and executable,
//!   and no page the monitor recorded as [`RegionType::Code`] is writable
//!   at all (the loader flips code pages to execute-only after copy-in);
//! * **causal tag consistency** (§5.6) — every page's MPK key matches the
//!   holder recorded by the monitor (owner, or the peer trap-and-map last
//!   admitted), or the parked key under tag virtualisation; a non-owner
//!   holder must be justified by a window grant; machine page table and
//!   monitor page metadata cover exactly the same pages;
//! * **window ranges** — every range published in a window descriptor
//!   covers only pages owned by the window's cubicle;
//! * **stack guards** — the unmapped guard pages below and above each
//!   cubicle stack are still unmapped, and the stack has not overflowed
//!   its region;
//! * **key uniqueness** — no two cubicles hold the same MPK key (parked
//!   cubicles excepted under tag virtualisation; quarantined cubicles
//!   excepted always, their key is the parked sentinel);
//! * **quarantine** — a quarantined cubicle is fully torn down: it owns
//!   and holds no pages, publishes no windows, carries the parked key
//!   and has no stack;
//! * **concurrency** — the monitor's lock discipline held: every lock's
//!   recorded critical sections are pairwise non-overlapping in simulated
//!   time, and each cubicle's re-entrancy stack pool is consistent (slot 0
//!   mirrors the primary stack, pooled stacks are owned `Stack` regions
//!   with intact guards, live slots match in-flight frames, quarantined
//!   cubicles have no pool);
//! * **sanitizer** — when CubicleSan is enabled
//!   ([`crate::System::set_race_detection`]), its history is clean: no
//!   data races, no lock-order cycle, no Eraser lockset violations.
//!   Silent (like any disabled subsystem) when detection is off.

use crate::cubicle::RegionType;
use crate::system::{MonitorLock, System, PARKED_KEY};
use cubicle_mpk::{pages_covering, VAddr, PAGE_SIZE};
use std::fmt;

/// The invariant class a finding belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InvariantClass {
    /// A page is writable and executable, or a code page is writable.
    WriteExecute,
    /// A page's MPK key disagrees with the monitor's holder record, a
    /// non-owner holder has no justifying window, or the machine page
    /// table and the monitor metadata disagree about what is mapped.
    TagConsistency,
    /// A window descriptor range covers a page its cubicle does not own.
    WindowRange,
    /// A stack guard page is mapped, or a stack overflowed its region.
    StackGuard,
    /// Two cubicles hold the same MPK key.
    KeyUniqueness,
    /// A quarantined cubicle still owns resources (pages, windows, a
    /// stack or a live key) that [`System::quarantine`] must reclaim.
    Quarantine,
    /// The multi-core lock/ownership discipline broke: overlapping
    /// critical sections on a monitor lock, or an inconsistent
    /// re-entrancy stack pool.
    Concurrency,
    /// CubicleSan (when enabled) recorded a data race, a lock-order
    /// cycle or an Eraser lockset violation.
    Sanitizer,
}

impl fmt::Display for InvariantClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InvariantClass::WriteExecute => "w^x",
            InvariantClass::TagConsistency => "tag-consistency",
            InvariantClass::WindowRange => "window-range",
            InvariantClass::StackGuard => "stack-guard",
            InvariantClass::KeyUniqueness => "key-uniqueness",
            InvariantClass::Quarantine => "quarantine",
            InvariantClass::Concurrency => "concurrency",
            InvariantClass::Sanitizer => "sanitizer",
        })
    }
}

/// One invariant violation discovered by [`System::audit`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuditFinding {
    /// Which invariant class fired.
    pub class: InvariantClass,
    /// Human-readable description with addresses/cubicles involved.
    pub detail: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.class, self.detail)
    }
}

/// Structured result of one [`System::audit`] walk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuditReport {
    /// All violations, in discovery order (empty when the state is
    /// consistent).
    pub findings: Vec<AuditFinding>,
    /// Mapped pages examined.
    pub pages_checked: usize,
    /// Window descriptors examined.
    pub windows_checked: usize,
    /// Cubicles examined.
    pub cubicles_checked: usize,
}

impl AuditReport {
    /// `true` when no invariant fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings belonging to `class`.
    pub fn of_class(&self, class: InvariantClass) -> impl Iterator<Item = &AuditFinding> {
        self.findings.iter().filter(move |f| f.class == class)
    }

    /// Panics with the full findings list unless the report is clean.
    /// Harness- and test-side convenience.
    ///
    /// # Panics
    ///
    /// When any invariant fired; the message lists every finding.
    pub fn assert_clean(&self, context: &str) {
        assert!(
            self.is_clean(),
            "kernel audit failed ({context}): {} finding(s)\n{self}",
            self.findings.len()
        );
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {} finding(s) over {} pages, {} windows, {} cubicles",
            self.findings.len(),
            self.pages_checked,
            self.windows_checked,
            self.cubicles_checked
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

impl System {
    /// Walks machine + kernel state and checks the global isolation
    /// invariants (see the module documentation for the classes).
    /// Read-only and free of simulated cycles: auditing is an observer,
    /// like tracing, so it can run mid-scenario without perturbing
    /// measurements.
    pub fn audit(&self) -> AuditReport {
        let mut findings = Vec::new();
        // Under tag virtualisation the parked key is a legitimate
        // transient state for any page; without it, key 15 is an
        // ordinary per-cubicle key and gets no special treatment.
        let parked_ok = self.key_virt.is_some();

        // ── pass 1: every mapped page ────────────────────────────────
        let mapped = self.machine.mapped_pages();
        for &(page, entry) in &mapped {
            if entry.flags.can_write() && entry.flags.can_execute() {
                findings.push(AuditFinding {
                    class: InvariantClass::WriteExecute,
                    detail: format!("page {} is writable and executable ({})", page, entry.flags),
                });
            }
            let Some(meta) = self.page_meta.get(&page) else {
                findings.push(AuditFinding {
                    class: InvariantClass::TagConsistency,
                    detail: format!("mapped page {page} has no monitor metadata"),
                });
                continue;
            };
            if meta.region == RegionType::Code && entry.flags.can_write() {
                findings.push(AuditFinding {
                    class: InvariantClass::WriteExecute,
                    detail: format!(
                        "code page {} of {} is writable ({})",
                        page,
                        self.cubicles[meta.owner.index()].name,
                        entry.flags
                    ),
                });
            }
            let holder = &self.cubicles[meta.holder.index()];
            if entry.key != holder.key && !(parked_ok && entry.key == PARKED_KEY) {
                findings.push(AuditFinding {
                    class: InvariantClass::TagConsistency,
                    detail: format!(
                        "page {} tagged {} but holder {} expects {}",
                        page, entry.key, holder.name, holder.key
                    ),
                });
            }
            if self.mode.acls_active() && meta.holder != meta.owner && meta.via.is_none() {
                findings.push(AuditFinding {
                    class: InvariantClass::TagConsistency,
                    detail: format!(
                        "page {} held by {} but owned by {} with no justifying window",
                        page,
                        holder.name,
                        self.cubicles[meta.owner.index()].name
                    ),
                });
            }
        }
        // The reverse direction: monitor metadata for pages the machine
        // no longer maps would let trap-and-map hand out dead addresses.
        // Sorted by page so findings render in the same order run to run
        // (the determinism lint caught this iterating the map directly).
        let mut stale: Vec<_> = self
            .page_meta
            .iter() // verify: order-ok — sorted before reporting below
            .filter(|(&page, _)| self.machine.page_entry(page.base()).is_none())
            .map(|(&page, meta)| (page, meta.owner))
            .collect();
        stale.sort_unstable_by_key(|&(page, _)| page);
        for (page, owner) in stale {
            findings.push(AuditFinding {
                class: InvariantClass::TagConsistency,
                detail: format!(
                    "monitor metadata for unmapped page {} (owner {})",
                    page,
                    self.cubicles[owner.index()].name
                ),
            });
        }

        // ── pass 2: window descriptors ───────────────────────────────
        let mut windows_checked = 0;
        for c in &self.cubicles {
            for w in &c.windows {
                windows_checked += 1;
                for r in w.ranges() {
                    for page in pages_covering(r.start, r.len) {
                        match self.page_meta.get(&page) {
                            Some(m) if m.owner == c.id => {}
                            Some(m) => findings.push(AuditFinding {
                                class: InvariantClass::WindowRange,
                                detail: format!(
                                    "{} of {} covers page {} owned by {}",
                                    w.id(),
                                    c.name,
                                    page,
                                    self.cubicles[m.owner.index()].name
                                ),
                            }),
                            None => findings.push(AuditFinding {
                                class: InvariantClass::WindowRange,
                                detail: format!(
                                    "{} of {} covers untracked page {}",
                                    w.id(),
                                    c.name,
                                    page
                                ),
                            }),
                        }
                    }
                }
            }
        }

        // ── pass 3: stack guards ─────────────────────────────────────
        for c in &self.cubicles {
            if c.stack_len == 0 {
                continue;
            }
            let above = c.stack_base + c.stack_len;
            if self.machine.page_entry(above).is_some() {
                findings.push(AuditFinding {
                    class: InvariantClass::StackGuard,
                    detail: format!("guard page above {}'s stack is mapped ({above})", c.name),
                });
            }
            if c.stack_base.raw() >= PAGE_SIZE as u64 {
                let below = VAddr::new(c.stack_base.raw() - PAGE_SIZE as u64);
                if self.machine.page_entry(below).is_some() {
                    findings.push(AuditFinding {
                        class: InvariantClass::StackGuard,
                        detail: format!("guard page below {}'s stack is mapped ({below})", c.name),
                    });
                }
            }
            if c.stack_used > c.stack_len {
                findings.push(AuditFinding {
                    class: InvariantClass::StackGuard,
                    detail: format!(
                        "{}'s stack overflowed: {} used of {} bytes",
                        c.name, c.stack_used, c.stack_len
                    ),
                });
            }
        }

        // ── pass 4: key uniqueness ───────────────────────────────────
        // Quarantined cubicles carry the parked sentinel until restart,
        // so two of them sharing it is expected, not a duplicate.
        for (i, a) in self.cubicles.iter().enumerate() {
            if (parked_ok && a.key == PARKED_KEY) || a.is_quarantined() {
                continue;
            }
            for b in self.cubicles.iter().skip(i + 1) {
                if b.key == a.key && !b.is_quarantined() {
                    findings.push(AuditFinding {
                        class: InvariantClass::KeyUniqueness,
                        detail: format!("{} and {} both hold {}", a.name, b.name, a.key),
                    });
                }
            }
        }

        // ── pass 5: quarantine teardown ──────────────────────────────
        for c in self.cubicles.iter().filter(|c| c.is_quarantined()) {
            let owned = self.page_meta.values().filter(|m| m.owner == c.id).count();
            if owned > 0 {
                findings.push(AuditFinding {
                    class: InvariantClass::Quarantine,
                    detail: format!("quarantined {} still owns {owned} page(s)", c.name),
                });
            }
            let held = self
                .page_meta
                .values()
                .filter(|m| m.holder == c.id && m.owner != c.id)
                .count();
            if held > 0 {
                findings.push(AuditFinding {
                    class: InvariantClass::Quarantine,
                    detail: format!("quarantined {} still holds {held} foreign page(s)", c.name),
                });
            }
            if !c.windows.is_empty() {
                findings.push(AuditFinding {
                    class: InvariantClass::Quarantine,
                    detail: format!(
                        "quarantined {} still publishes {} window(s)",
                        c.name,
                        c.windows.len()
                    ),
                });
            }
            if c.key != PARKED_KEY {
                findings.push(AuditFinding {
                    class: InvariantClass::Quarantine,
                    detail: format!("quarantined {} still carries live {}", c.name, c.key),
                });
            }
            if c.stack_len != 0 {
                findings.push(AuditFinding {
                    class: InvariantClass::Quarantine,
                    detail: format!("quarantined {} still has a mapped stack", c.name),
                });
            }
        }

        // ── pass 6: concurrency (lock sections + stack pools) ────────
        for lock in MonitorLock::all() {
            let st = &self.locks.locks[lock as usize];
            let mut prev_end = 0u64;
            for &(start, end) in &st.sections {
                if start < prev_end {
                    findings.push(AuditFinding {
                        class: InvariantClass::Concurrency,
                        detail: format!(
                            "{} lock sections overlap: [{start}, {end}) begins before \
                             the previous section ended at {prev_end}",
                            lock.name()
                        ),
                    });
                }
                if end < start {
                    findings.push(AuditFinding {
                        class: InvariantClass::Concurrency,
                        detail: format!(
                            "{} lock section [{start}, {end}) ends before it starts",
                            lock.name()
                        ),
                    });
                }
                prev_end = prev_end.max(end);
            }
            if st.free_at < prev_end {
                findings.push(AuditFinding {
                    class: InvariantClass::Concurrency,
                    detail: format!(
                        "{} lock free_at {} predates its last recorded section end {prev_end}",
                        lock.name(),
                        st.free_at
                    ),
                });
            }
        }
        for c in &self.cubicles {
            if c.is_quarantined() {
                if !c.stack_pool.is_empty() {
                    findings.push(AuditFinding {
                        class: InvariantClass::Concurrency,
                        detail: format!(
                            "quarantined {} still has {} pooled stack slot(s)",
                            c.name,
                            c.stack_pool.len()
                        ),
                    });
                }
                continue;
            }
            if c.stack_pool.is_empty() {
                continue;
            }
            let s0 = c.stack_pool[0];
            if s0.base != c.stack_base || s0.len != c.stack_len {
                findings.push(AuditFinding {
                    class: InvariantClass::Concurrency,
                    detail: format!(
                        "{}'s stack-pool slot 0 ({}, {} bytes) does not mirror the \
                         primary stack ({}, {} bytes)",
                        c.name, s0.base, s0.len, c.stack_base, c.stack_len
                    ),
                });
            }
            for (i, s) in c.stack_pool.iter().enumerate().skip(1) {
                for page in pages_covering(s.base, s.len) {
                    match self.page_meta.get(&page) {
                        Some(m) if m.owner == c.id && m.region == RegionType::Stack => {}
                        Some(m) => findings.push(AuditFinding {
                            class: InvariantClass::Concurrency,
                            detail: format!(
                                "{}'s pooled stack slot {i} page {} is {:?} owned by {}",
                                c.name,
                                page,
                                m.region,
                                self.cubicles[m.owner.index()].name
                            ),
                        }),
                        None => findings.push(AuditFinding {
                            class: InvariantClass::Concurrency,
                            detail: format!(
                                "{}'s pooled stack slot {i} page {} is untracked",
                                c.name, page
                            ),
                        }),
                    }
                }
                let above = s.base + s.len;
                if self.machine.page_entry(above).is_some() {
                    findings.push(AuditFinding {
                        class: InvariantClass::Concurrency,
                        detail: format!(
                            "guard page above {}'s pooled stack slot {i} is mapped ({above})",
                            c.name
                        ),
                    });
                }
            }
            let live = c
                .stack_pool
                .iter()
                .filter(|s| s.busy_until == u64::MAX)
                .count();
            let frames = self.live_pool_frames(c.id);
            if live != frames {
                findings.push(AuditFinding {
                    class: InvariantClass::Concurrency,
                    detail: format!(
                        "{} has {live} live pooled stack slot(s) but {frames} in-flight \
                         frame(s) holding one",
                        c.name
                    ),
                });
            }
        }

        // ── pass 7: sanitizer clean (CubicleSan) ─────────────────────
        // Only meaningful while detection is on; a feature-off run has
        // no detector history and this pass is silent, like any audit
        // pass over a disabled subsystem.
        if self.race_detection_enabled() {
            for r in self.race_reports() {
                findings.push(AuditFinding {
                    class: InvariantClass::Sanitizer,
                    detail: r.to_string(),
                });
            }
            if let Some(cycle) = self.lockorder_cycle() {
                findings.push(AuditFinding {
                    class: InvariantClass::Sanitizer,
                    detail: format!("lock-order cycle: {cycle}"),
                });
            }
            for v in self.lockset_violations() {
                findings.push(AuditFinding {
                    class: InvariantClass::Sanitizer,
                    detail: v,
                });
            }
        }

        AuditReport {
            findings,
            pages_checked: mapped.len(),
            windows_checked,
            cubicles_checked: self.cubicles.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_and_finding_display() {
        let f = AuditFinding {
            class: InvariantClass::WriteExecute,
            detail: "page p17 is writable and executable (rwx)".into(),
        };
        assert_eq!(
            f.to_string(),
            "[w^x] page p17 is writable and executable (rwx)"
        );
        assert_eq!(
            InvariantClass::TagConsistency.to_string(),
            "tag-consistency"
        );
        assert_eq!(InvariantClass::WindowRange.to_string(), "window-range");
        assert_eq!(InvariantClass::StackGuard.to_string(), "stack-guard");
        assert_eq!(InvariantClass::KeyUniqueness.to_string(), "key-uniqueness");
        assert_eq!(InvariantClass::Quarantine.to_string(), "quarantine");
        assert_eq!(InvariantClass::Concurrency.to_string(), "concurrency");
        assert_eq!(InvariantClass::Sanitizer.to_string(), "sanitizer");
    }

    #[test]
    fn report_render_and_filters() {
        let report = AuditReport {
            findings: vec![
                AuditFinding {
                    class: InvariantClass::StackGuard,
                    detail: "guard mapped".into(),
                },
                AuditFinding {
                    class: InvariantClass::KeyUniqueness,
                    detail: "dup".into(),
                },
            ],
            pages_checked: 10,
            windows_checked: 2,
            cubicles_checked: 3,
        };
        assert!(!report.is_clean());
        assert_eq!(report.of_class(InvariantClass::StackGuard).count(), 1);
        assert_eq!(report.of_class(InvariantClass::WriteExecute).count(), 0);
        let text = report.to_string();
        assert!(text.contains("2 finding(s) over 10 pages, 2 windows, 3 cubicles"));
        assert!(text.contains("[stack-guard] guard mapped"));
    }

    #[test]
    #[should_panic(expected = "kernel audit failed (unit)")]
    fn assert_clean_panics_with_context() {
        AuditReport {
            findings: vec![AuditFinding {
                class: InvariantClass::WriteExecute,
                detail: "boom".into(),
            }],
            pages_checked: 1,
            windows_checked: 0,
            cubicles_checked: 1,
        }
        .assert_clean("unit");
    }

    #[test]
    fn fresh_system_audits_clean() {
        let sys = crate::System::new(crate::IsolationMode::Full);
        let report = sys.audit();
        report.assert_clean("fresh system");
        assert_eq!(report.pages_checked, 0);
        assert_eq!(report.cubicles_checked, 1); // the monitor
    }
}

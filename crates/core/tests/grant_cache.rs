//! Window-grant cache: repeat trap-and-map over the same
//! `(accessor, page)` reuses the grant that authorised it last time —
//! and every operation that can narrow the remembered authority drops
//! the entry first. Each test drives a real tag ping-pong (owner write
//! reclaims the page, peer read re-faults) and then checks that the
//! cache never outlives the window that backed it.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleError, CubicleId, IsolationMode, System, Value,
    WindowId,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::VAddr;

struct Dummy;
impl_component!(Dummy);

fn boot() -> (System, CubicleId, CubicleId) {
    let b = Builder::new();
    let mut sys = System::new(IsolationMode::Full);
    sys.set_grant_cache(true);
    let a = sys
        .load(
            ComponentImage::new("A", CodeImage::plain(256)).heap_pages(8),
            Box::new(Dummy),
        )
        .unwrap();
    let bee = sys
        .load(
            ComponentImage::new("B", CodeImage::plain(256)).export(
                b.export("long b_read(const void *buf, size_t n)").unwrap(),
                |sys, _this, args| {
                    let (addr, len) = args[0].as_buf();
                    let v = sys.read_vec(addr, len)?;
                    Ok(Value::I64(i64::from(v[0])))
                },
            ),
            Box::new(Dummy),
        )
        .unwrap();
    (sys, a.cid, bee.cid)
}

/// Opens a window over a fresh page and ping-pongs it until the cache
/// holds a warm entry (first fault = miss, second = hit).
fn warm(sys: &mut System, a: CubicleId, b: CubicleId) -> (VAddr, WindowId) {
    let entry = sys.entry("b_read").unwrap();
    let (buf, wid) = sys.run_in_cubicle(a, |sys| {
        let buf = sys.heap_alloc(4096, 4096).unwrap();
        sys.write(buf, &[5]).unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 4096).unwrap();
        sys.window_open(wid, b).unwrap();
        (buf, wid)
    });
    let h0 = sys.stats().grant_cache_hits;
    for round in 0..2 {
        let r = sys.run_in_cubicle(a, |sys| {
            sys.write(buf, &[5]).unwrap(); // owner reclaim → tag ping
            sys.cross_call(entry, &[Value::buf_in(buf, 64)]).unwrap()
        });
        assert_eq!(r.as_i64(), 5, "round {round}");
    }
    assert!(
        sys.stats().grant_cache_hits > h0,
        "the second fault over a warm tuple must hit"
    );
    (buf, wid)
}

/// After an invalidating operation, the peer's next access must be
/// denied by the real ACL walk — a stale cache entry would let it
/// through (and trips a debug assertion inside the kernel first).
fn assert_denied(sys: &mut System, a: CubicleId, buf: VAddr) {
    let entry = sys.entry("b_read").unwrap();
    let inv0 = sys.stats().grant_cache_invalidations;
    assert!(inv0 > 0, "the revoking operation must purge cache entries");
    let err = sys.run_in_cubicle(a, |sys| {
        sys.write(buf, &[9]).unwrap(); // reclaim: the next read re-faults
        sys.cross_call(entry, &[Value::buf_in(buf, 64)])
    });
    assert!(
        matches!(err, Err(CubicleError::WindowDenied { .. })),
        "revoked authority must deny, got {err:?}"
    );
    sys.audit().assert_clean("after revoked access attempt");
}

#[test]
fn window_close_invalidates() {
    let (mut sys, a, b) = boot();
    let (buf, wid) = warm(&mut sys, a, b);
    sys.run_in_cubicle(a, |sys| sys.window_close(wid, b))
        .unwrap();
    assert_denied(&mut sys, a, buf);
}

#[test]
fn window_remove_invalidates() {
    let (mut sys, a, b) = boot();
    let (buf, wid) = warm(&mut sys, a, b);
    sys.run_in_cubicle(a, |sys| sys.window_remove(wid, buf))
        .unwrap();
    assert_denied(&mut sys, a, buf);
}

#[test]
fn window_destroy_invalidates() {
    let (mut sys, a, b) = boot();
    let (buf, wid) = warm(&mut sys, a, b);
    sys.run_in_cubicle(a, |sys| sys.window_destroy(wid))
        .unwrap();
    assert_denied(&mut sys, a, buf);
}

#[test]
fn ownership_transfer_invalidates() {
    let (mut sys, a, b) = boot();
    let (buf, wid) = warm(&mut sys, a, b);
    // Retag: A hands the page to B outright. The remembered grant
    // (B-over-A's-page via A's window) is now nonsense — B owns it.
    let inv0 = sys.stats().grant_cache_invalidations;
    sys.run_in_cubicle(a, |sys| sys.grant_pages_to(buf, 4096, b))
        .unwrap();
    assert!(
        sys.stats().grant_cache_invalidations > inv0,
        "ownership transfer must purge entries over the pages"
    );
    // A's window descriptor still names a range it no longer owns; drop
    // it like a well-behaved component would after handing the page off.
    sys.run_in_cubicle(a, |sys| sys.window_remove(wid, buf))
        .unwrap();
    // B reclaims its new page through implicit window 0, no window of
    // A's involved; A in turn has no authority left over it.
    let entry = sys.entry("b_read").unwrap();
    let r = sys.run_in_cubicle(b, |sys| {
        sys.cross_call(entry, &[Value::buf_in(buf, 64)]).unwrap()
    });
    assert_eq!(r.as_i64(), 5);
    let err = sys.run_in_cubicle(a, |sys| sys.read_vec(buf, 8));
    assert!(err.is_err(), "the old owner lost the page");
    sys.audit().assert_clean("after ownership transfer");
}

#[test]
fn quarantine_purges_both_sides() {
    // Accessor quarantined: its remembered grants die with it.
    let (mut sys, a, b) = boot();
    let (_buf, _wid) = warm(&mut sys, a, b);
    let inv0 = sys.stats().grant_cache_invalidations;
    sys.quarantine(b, "test: accessor dies").unwrap();
    assert!(
        sys.stats().grant_cache_invalidations > inv0,
        "quarantining the accessor must purge its entries"
    );
    sys.audit().assert_clean("accessor quarantined");

    // Owner quarantined: entries over its pages die too.
    let (mut sys, a, b) = boot();
    let (buf, _wid) = warm(&mut sys, a, b);
    let inv0 = sys.stats().grant_cache_invalidations;
    sys.quarantine(a, "test: owner dies").unwrap();
    assert!(
        sys.stats().grant_cache_invalidations > inv0,
        "quarantining the owner must purge entries over its pages"
    );
    // The page is tombstoned: nobody gets it back through the cache.
    let err = sys.run_in_cubicle(b, |sys| sys.read_vec(buf, 8));
    assert!(
        matches!(err, Err(CubicleError::Quarantined { cubicle }) if cubicle == a),
        "tombstone wins over any remembered grant, got {err:?}"
    );
    sys.audit().assert_clean("owner quarantined");
}

#[test]
fn cache_toggle_is_cost_only() {
    // The cache must change cycle counts, never outcomes: the same
    // ping-pong sequence yields the same values with it on or off.
    let run = |cache: bool| -> (i64, u64) {
        let (mut sys, a, _b) = {
            let (mut sys, a, b) = boot();
            sys.set_grant_cache(cache);
            (sys, a, b)
        };
        let entry = sys.entry("b_read").unwrap();
        let buf = sys.run_in_cubicle(a, |sys| {
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            sys.write(buf, &[7]).unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, buf, 4096).unwrap();
            sys.window_open(wid, _b).unwrap();
            buf
        });
        let mut acc = 0i64;
        for _ in 0..4 {
            acc += sys
                .run_in_cubicle(a, |sys| {
                    sys.write(buf, &[7]).unwrap();
                    sys.cross_call(entry, &[Value::buf_in(buf, 64)]).unwrap()
                })
                .as_i64();
        }
        sys.audit().assert_clean("toggle run");
        (acc, sys.stats().grant_cache_hits)
    };
    let (with_cache, hits_on) = run(true);
    let (without, hits_off) = run(false);
    assert_eq!(with_cache, without);
    assert!(hits_on > 0);
    assert_eq!(hits_off, 0);
}

//! Seeded property test for the causal span profiler: drives a random
//! workload over a four-deep component chain and asserts the span tree
//! is well-formed — valid parents, child intervals nested inside their
//! parents, per-span `self + children == total`, per-cubicle self
//! cycles summing to the attribution window — and that the flamegraph
//! and Chrome-trace exports parse.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleId, IsolationMode, SpanRecord, System, Value,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::rng::Rng64;

#[path = "support/json.rs"]
mod json;
use json::{Json, Parser};

struct Node;
impl_component!(Node);

const SEEDS: u64 = 6;
const STEPS: usize = 48;

/// Loads the four-component chain `APP → SRV → FS → DISK`. Each layer
/// does some local heap work and, depending on its argument, calls one
/// layer further down — giving spans of depth 0 through 2.
fn setup() -> (System, CubicleId) {
    let b = Builder::new();
    let mut sys = System::new(IsolationMode::Full);
    let app = sys
        .load(
            ComponentImage::new("APP", CodeImage::plain(4096)).heap_pages(32),
            Box::new(Node),
        )
        .unwrap();
    sys.load(
        ComponentImage::new("SRV", CodeImage::plain(4096))
            .heap_pages(32)
            .export(
                b.export("long srv_work(long n)").unwrap(),
                |sys, _this, args| {
                    let n = args[0].as_i64();
                    let buf = sys.heap_alloc(256, 8)?;
                    sys.write_u64(buf, n as u64)?;
                    let below = if n > 0 {
                        sys.call("fs_work", &[Value::I64(n - 1)])?.as_i64()
                    } else {
                        0
                    };
                    let own = sys.read_u64(buf)? as i64;
                    sys.heap_free(buf)?;
                    Ok(Value::I64(own + below))
                },
            ),
        Box::new(Node),
    )
    .unwrap();
    sys.load(
        ComponentImage::new("FS", CodeImage::plain(4096))
            .heap_pages(32)
            .export(
                b.export("long fs_work(long n)").unwrap(),
                |sys, _this, args| {
                    let n = args[0].as_i64();
                    let buf = sys.heap_alloc(128, 8)?;
                    sys.write_u64(buf, 3)?;
                    let below = if n > 0 {
                        sys.call("disk_io", &[Value::I64(64)])?.as_i64()
                    } else {
                        0
                    };
                    let own = sys.read_u64(buf)? as i64;
                    sys.heap_free(buf)?;
                    Ok(Value::I64(own + below))
                },
            ),
        Box::new(Node),
    )
    .unwrap();
    sys.load(
        ComponentImage::new("DISK", CodeImage::plain(4096))
            .heap_pages(32)
            .export(
                b.export("long disk_io(long n)").unwrap(),
                |sys, _this, args| {
                    let n = args[0].as_i64().max(1) as usize;
                    let buf = sys.heap_alloc(n, 8)?;
                    sys.write(buf, &vec![0xD1; n])?;
                    let v = sys.read_vec(buf, n)?;
                    sys.heap_free(buf)?;
                    Ok(Value::I64(i64::from(v[0])))
                },
            ),
        Box::new(Node),
    )
    .unwrap();
    (sys, app.cid)
}

/// Drives a seeded random mix of depth-0/1/2 calls from the driver.
fn storm(sys: &mut System, app: CubicleId, seed: u64) {
    let mut rng = Rng64::new(seed);
    for _ in 0..STEPS {
        let (entry, n) = match rng.range_usize(0, 4) {
            0 => ("srv_work", rng.range_i64(0, 3)),
            1 => ("fs_work", rng.range_i64(0, 2)),
            2 => ("disk_io", rng.range_i64(8, 200)),
            _ => ("srv_work", 2), // full-depth chain
        };
        let r = sys.run_in_cubicle(app, |sys| sys.call(entry, &[Value::I64(n)]));
        assert!(r.is_ok(), "healthy call {entry}({n}) failed: {r:?}");
    }
}

/// Asserts the structural invariants of one completed span forest.
fn check_tree(spans: &[SpanRecord]) {
    let mut seen: std::collections::HashMap<u64, &SpanRecord> = std::collections::HashMap::new();
    // Spans close innermost-first, so a parent appears *after* its
    // children in completion order; index everything up front.
    for s in spans {
        assert!(s.id >= 1, "span ids start at 1");
        assert!(seen.insert(s.id, s).is_none(), "duplicate span id {}", s.id);
    }
    for s in spans {
        assert!(s.start <= s.end, "span {} runs backwards", s.id);
        assert_eq!(
            s.self_cycles + s.child_cycles,
            s.total_cycles(),
            "span {}: self + children must equal total",
            s.id
        );
        if s.parent != 0 {
            let p = seen
                .get(&s.parent)
                .unwrap_or_else(|| panic!("span {} has unknown parent {}", s.id, s.parent));
            assert!(s.parent < s.id, "parent ids precede children");
            assert!(
                p.start <= s.start && s.end <= p.end,
                "child {} [{}, {}] must nest inside parent {} [{}, {}]",
                s.id,
                s.start,
                s.end,
                p.id,
                p.start,
                p.end
            );
            assert_eq!(s.depth, p.depth + 1, "child depth is parent depth + 1");
        } else {
            assert_eq!(s.depth, 0, "root spans sit at depth 0");
        }
    }
    // A parent's child_cycles is exactly the sum of its direct children.
    let mut child_sum: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for s in spans {
        if s.parent != 0 {
            *child_sum.entry(s.parent).or_insert(0) += s.total_cycles();
        }
    }
    for s in spans {
        assert_eq!(
            child_sum.get(&s.id).copied().unwrap_or(0),
            s.child_cycles,
            "span {}: recorded child_cycles must equal the sum of its children",
            s.id
        );
    }
}

#[test]
fn span_tree_is_well_formed_under_random_workloads() {
    for seed in 0..SEEDS {
        let (mut sys, app) = setup();
        sys.enable_tracing(1 << 16);
        storm(&mut sys, app, 0x5EED_0000 + seed);
        let ctx = format!("seed {seed}");

        let profiler = sys.span_profiler().expect("tracing is on");
        assert_eq!(profiler.spans_dropped(), 0, "{ctx}: ring must not overflow");
        assert_eq!(profiler.depth(), 0, "{ctx}: no span left open");
        let spans = sys.spans();
        assert!(!spans.is_empty(), "{ctx}: workload must produce spans");
        assert!(
            spans.iter().any(|s| s.depth == 2),
            "{ctx}: full-depth chains must produce depth-2 spans"
        );
        check_tree(&spans);

        // Per-cubicle exclusive cycles partition the attribution window.
        let window = sys.span_attribution_window().unwrap();
        let per_cubicle = sys.span_cubicle_attribution();
        let self_sum: u64 = per_cubicle.iter().map(|(_, a)| a.self_cycles).sum();
        assert_eq!(
            self_sum, window,
            "{ctx}: per-cubicle self cycles must partition the window"
        );
        assert!(
            per_cubicle.len() >= 4,
            "{ctx}: all four cubicles accrue cycles"
        );

        // Entry attribution covers every exported entry the storm hit.
        let per_entry = sys.span_entry_attribution();
        assert!(
            per_entry.len() >= 3,
            "{ctx}: srv/fs/disk entries all attributed"
        );
        for (_, a) in &per_entry {
            assert!(
                a.self_cycles <= a.total_cycles,
                "{ctx}: self never exceeds total"
            );
            assert!(a.calls > 0, "{ctx}: attributed entries were called");
        }
    }
}

#[test]
fn flamegraph_export_parses_and_sums_to_the_window() {
    let (mut sys, app) = setup();
    sys.enable_tracing(1 << 16);
    storm(&mut sys, app, 0xF01D);

    let folded = sys.export_flamegraph();
    assert!(!folded.is_empty(), "traced run must emit folded stacks");
    let mut total = 0u64;
    let mut deepest = 0usize;
    for line in folded.lines() {
        let (path, count) = line.rsplit_once(' ').expect("each line is `path count`");
        let count: u64 = count.parse().expect("count is a decimal cycle total");
        assert!(count > 0, "zero-cycle paths are omitted");
        let frames: Vec<&str> = path.split(';').collect();
        assert!(!frames[0].is_empty(), "path has a root frame");
        assert!(
            frames[0] == "APP" || frames[0] == "MONITOR",
            "stacks are rooted at the driver, got {}",
            frames[0]
        );
        for f in &frames[1..] {
            let (cubicle, entry) = f.split_once(':').expect("call frames are CUBICLE:entry");
            assert!(!cubicle.is_empty() && !entry.is_empty());
        }
        deepest = deepest.max(frames.len());
        total += count;
    }
    assert_eq!(
        total,
        sys.span_attribution_window().unwrap(),
        "folded counts are exclusive cycles and must sum to the window"
    );
    assert!(
        deepest >= 3,
        "APP;SRV;FS chains appear in the folded output"
    );
}

#[test]
fn chrome_trace_spans_parse_and_carry_ids() {
    let (mut sys, app) = setup();
    sys.enable_tracing(1 << 16);
    storm(&mut sys, app, 0xC403);

    let txt = sys.export_chrome_trace();
    let doc = Parser::parse(&txt).expect("chrome trace is valid JSON");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(v)) => v,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let mut open: Vec<u64> = Vec::new();
    let mut max_span = 0u64;
    for ev in events {
        match ev.get("ph").and_then(Json::as_str) {
            Some("B") => {
                let args = ev.get("args").expect("B events carry args");
                let span = args.get("span").and_then(Json::as_num).expect("span id") as u64;
                let parent = args
                    .get("parent")
                    .and_then(Json::as_num)
                    .expect("parent id") as u64;
                assert_eq!(
                    parent,
                    open.last().copied().unwrap_or(0),
                    "parent is enclosing span"
                );
                open.push(span);
                max_span = max_span.max(span);
            }
            Some("E") => {
                let span = ev
                    .get("args")
                    .and_then(|a| a.get("span"))
                    .and_then(Json::as_num)
                    .expect("E events carry the span id") as u64;
                assert_eq!(Some(span), open.pop(), "E pairs with the innermost B");
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "B/E events balance");
    assert!(max_span >= 1, "span ids flow into the chrome trace");
}

#[test]
fn ledger_agrees_with_span_attribution() {
    let (mut sys, app) = setup();
    sys.enable_tracing(1 << 16);
    storm(&mut sys, app, 0x1ED6);

    let per_cubicle = sys.span_cubicle_attribution();
    let window = sys.span_attribution_window().unwrap();
    let rows = sys.ledger();
    for name in ["APP", "SRV", "FS", "DISK"] {
        assert!(
            rows.iter().any(|r| r.name == name),
            "ledger has a row for {name}"
        );
    }
    let mut self_sum = 0u64;
    for row in &rows {
        let attr = per_cubicle
            .iter()
            .find(|(cid, _)| *cid == row.cubicle)
            .map(|(_, a)| *a)
            .unwrap_or_default();
        assert_eq!(
            row.cycles_self, attr.self_cycles,
            "{}: ledger mirrors the profiler",
            row.name
        );
        assert_eq!(row.cycles_total, attr.total_cycles, "{}", row.name);
        if row.name != "MONITOR" {
            assert!(
                row.pages_owned > 0,
                "{}: loaded cubicles own pages",
                row.name
            );
        }
        assert!(!row.quarantined(), "{}: healthy run", row.name);
        self_sum += row.cycles_self;
    }
    assert_eq!(self_sum, window, "ledger self cycles partition the window");
}

//! Tests of the kernel invariant auditor (`System::audit`).
//!
//! Two halves: scenarios exercising the real kernel must audit clean at
//! every point, and *seeded corruption* — reaching around the kernel's
//! bookkeeping through the `#[doc(hidden)]` test hooks — must make each
//! invariant class fire. The second half is what proves the auditor
//! actually detects what it claims to.

use cubicle_core::{
    impl_component, ComponentImage, CubicleId, InvariantClass, IsolationMode, System, Value,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::{CostModel, PageFlags, ProtKey, VAddr};

struct Dummy;
impl_component!(Dummy);

/// A kernel with an owner + peer pair, an owner-owned buffer and a
/// window over it that the peer has already read through (so a page tag
/// legitimately sits with a non-owner).
fn windowed_pair() -> (System, CubicleId, CubicleId, VAddr) {
    let mut sys = System::with_cost_model(IsolationMode::Full, CostModel::free());
    let owner = sys
        .load(
            ComponentImage::new("OWNER", CodeImage::plain(64)),
            Box::new(Dummy),
        )
        .unwrap()
        .cid;
    let peer = sys
        .load(
            ComponentImage::new("PEER", CodeImage::plain(64)),
            Box::new(Dummy),
        )
        .unwrap()
        .cid;
    let buf = sys.run_in_cubicle(owner, |sys| {
        let buf = sys.heap_alloc(4096, 4096).unwrap();
        sys.write(buf, b"window me").unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 4096).unwrap();
        sys.window_open(wid, peer).unwrap();
        buf
    });
    sys.run_in_cubicle(peer, |sys| sys.read_vec(buf, 9).unwrap());
    (sys, owner, peer, buf)
}

fn classes(sys: &System) -> Vec<InvariantClass> {
    sys.audit().findings.into_iter().map(|f| f.class).collect()
}

// ───────────────────────── clean scenarios ─────────────────────────

#[test]
fn windowed_scenario_audits_clean() {
    let (sys, _, _, _) = windowed_pair();
    let report = sys.audit();
    report.assert_clean("windowed pair, tag with peer");
    assert!(report.pages_checked > 0);
    assert_eq!(report.cubicles_checked, 3); // monitor + owner + peer
    assert_eq!(report.windows_checked, 1);
}

#[test]
fn every_isolation_mode_audits_clean() {
    for mode in [
        IsolationMode::Unikraft,
        IsolationMode::NoMpk,
        IsolationMode::NoAcl,
        IsolationMode::Full,
    ] {
        let mut sys = System::with_cost_model(mode, CostModel::free());
        let a = sys
            .load(
                ComponentImage::new("A", CodeImage::plain(64)),
                Box::new(Dummy),
            )
            .unwrap()
            .cid;
        let b = sys
            .load(
                ComponentImage::new("B", CodeImage::plain(64)),
                Box::new(Dummy),
            )
            .unwrap()
            .cid;
        let buf = sys.run_in_cubicle(a, |sys| {
            let buf = sys.heap_alloc(64, 8).unwrap();
            sys.write(buf, b"x").unwrap();
            buf
        });
        // in the ablation/baseline modes the peer may read freely; in
        // Full it is denied — either way the state must stay consistent
        let _ = sys.run_in_cubicle(b, |sys| sys.read_vec(buf, 1));
        sys.audit().assert_clean(&format!("{mode:?}"));
    }
}

#[test]
fn key_virtualisation_parking_audits_clean() {
    // more cubicles than physical keys: parked pages carry PARKED_KEY
    // while their holder's virtual binding moves around
    let mut sys = System::with_cost_model(IsolationMode::Full, CostModel::free());
    sys.enable_key_virtualisation();
    let cids: Vec<CubicleId> = (0..20)
        .map(|i| {
            sys.load(
                ComponentImage::new(format!("C{i}"), CodeImage::plain(64)),
                Box::new(Dummy),
            )
            .unwrap()
            .cid
        })
        .collect();
    for &cid in &cids {
        sys.run_in_cubicle(cid, |sys| {
            let buf = sys.heap_alloc(16, 8).unwrap();
            sys.write(buf, b"tick").unwrap();
        });
        sys.audit().assert_clean("during key-virt churn");
    }
    assert!(sys.key_evictions() > 0, "scenario must actually evict");
    sys.audit().assert_clean("after key-virt churn");
}

#[test]
fn cross_call_scenario_audits_clean() {
    let mut sys = System::with_cost_model(IsolationMode::Full, CostModel::free());
    let builder = cubicle_core::Builder::new();
    let srv = sys.load(
        ComponentImage::new("SRV", CodeImage::plain(128)).export(
            builder
                .export("ssize_t srv_echo(const void *buf, size_t len)")
                .unwrap(),
            |sys, _this, args| {
                let (src, len) = args[0].as_buf();
                let dst = sys.heap_alloc(len, 8)?;
                sys.copy(dst, src, len)?;
                Ok(Value::I64(len as i64))
            },
        ),
        Box::new(Dummy),
    );
    srv.unwrap();
    let app = sys
        .load(
            ComponentImage::new("APP", CodeImage::plain(64)),
            Box::new(Dummy),
        )
        .unwrap()
        .cid;
    let n = sys.run_in_cubicle(app, |sys| {
        let buf = sys.heap_alloc(32, 8).unwrap();
        sys.write(buf, b"ping").unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 32).unwrap();
        let srv_cid = sys.find_cubicle("SRV").unwrap();
        sys.window_open(wid, srv_cid).unwrap();
        sys.call("srv_echo", &[Value::buf_in(buf, 4)])
            .unwrap()
            .as_i64()
    });
    assert_eq!(n, 4);
    sys.audit().assert_clean("after cross call");
}

// ──────────────────── seeded corruption: each class ────────────────────

#[test]
fn wx_violation_fires_on_rwx_page() {
    let (mut sys, _, _, buf) = windowed_pair();
    sys.corrupt_machine_for_test()
        .set_page_flags(buf, PageFlags::rwx())
        .unwrap();
    let classes = classes(&sys);
    assert!(
        classes.contains(&InvariantClass::WriteExecute),
        "rwx data page must fire w^x: {classes:?}"
    );
}

#[test]
fn wx_violation_fires_on_writable_code_page() {
    let (mut sys, _, _, _) = windowed_pair();
    // find a code page (execute permission) and quietly make it writable
    let code = sys
        .machine()
        .mapped_pages()
        .into_iter()
        .find(|(_, e)| e.flags.can_execute())
        .expect("loaded components have code")
        .0;
    sys.corrupt_machine_for_test()
        .set_page_flags(code.base(), PageFlags::rw())
        .unwrap();
    let report = sys.audit();
    let detail = report
        .of_class(InvariantClass::WriteExecute)
        .next()
        .expect("writable code page must fire w^x");
    assert!(detail.detail.contains("code page"), "{detail}");
}

#[test]
fn tag_consistency_fires_on_stray_retag() {
    let (mut sys, _, _, buf) = windowed_pair();
    // keys 1 and 2 belong to the cubicles; 9 belongs to nobody
    sys.corrupt_machine_for_test()
        .set_page_key(buf, ProtKey::new(9).unwrap())
        .unwrap();
    let classes = classes(&sys);
    assert!(
        classes.contains(&InvariantClass::TagConsistency),
        "stray tag must fire tag-consistency: {classes:?}"
    );
}

#[test]
fn tag_consistency_fires_on_metadata_orphan() {
    let (mut sys, _, _, buf) = windowed_pair();
    // unmap behind the monitor's back: metadata now points at nothing
    assert!(sys.corrupt_machine_for_test().unmap_page(buf));
    let report = sys.audit();
    let finding = report
        .of_class(InvariantClass::TagConsistency)
        .next()
        .expect("orphaned metadata must fire tag-consistency");
    assert!(finding.detail.contains("unmapped page"), "{finding}");
}

#[test]
fn window_range_fires_when_granting_away_windowed_pages() {
    let (mut sys, owner, peer, buf) = windowed_pair();
    // the owner gives the windowed pages away; its window descriptor now
    // publishes memory it no longer owns
    sys.run_in_cubicle(owner, |sys| {
        sys.grant_pages_to(buf, 4096, peer).unwrap();
    });
    let classes = classes(&sys);
    assert!(
        classes.contains(&InvariantClass::WindowRange),
        "window over foreign pages must fire window-range: {classes:?}"
    );
}

#[test]
fn stack_guard_fires_when_guard_page_mapped() {
    let (mut sys, owner, _, _) = windowed_pair();
    let (guard, key) = {
        let c = sys.cubicles().find(|c| c.id == owner).unwrap();
        assert!(c.stack_len > 0, "components get stacks by default");
        (c.stack_base + c.stack_len, c.key)
    };
    sys.corrupt_machine_for_test()
        .map_page(guard, key, PageFlags::rw());
    let classes = classes(&sys);
    assert!(
        classes.contains(&InvariantClass::StackGuard),
        "mapped guard page must fire stack-guard: {classes:?}"
    );
}

#[test]
fn key_uniqueness_fires_on_duplicate_assignment() {
    let (mut sys, owner, peer, _) = windowed_pair();
    let owner_key = sys.cubicles().find(|c| c.id == owner).unwrap().key;
    sys.corrupt_cubicle_key_for_test(peer, owner_key);
    let report = sys.audit();
    let finding = report
        .of_class(InvariantClass::KeyUniqueness)
        .next()
        .expect("duplicate key must fire key-uniqueness");
    assert!(
        finding.detail.contains("OWNER") && finding.detail.contains("PEER"),
        "{finding}"
    );
}

#[test]
fn corrupted_reports_render_with_class_tags() {
    let (mut sys, _, _, buf) = windowed_pair();
    sys.corrupt_machine_for_test()
        .set_page_flags(buf, PageFlags::rwx())
        .unwrap();
    let text = sys.audit().to_string();
    assert!(text.contains("[w^x]"), "{text}");
}

//! MPK tag virtualisation (paper §8): more isolated compartments than
//! the 16 hardware keys, with lazy rebinding through trap-and-map.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleError, CubicleId, IsolationMode, System, Value,
};
use cubicle_mpk::insn::CodeImage;

struct Dummy;
impl_component!(Dummy);

fn load_n(sys: &mut System, n: usize) -> Vec<CubicleId> {
    (0..n)
        .map(|i| {
            sys.load(
                ComponentImage::new(format!("C{i}"), CodeImage::plain(256)),
                Box::new(Dummy),
            )
            .unwrap()
            .cid
        })
        .collect()
}

#[test]
fn without_virtualisation_16th_cubicle_fails() {
    let mut sys = System::new(IsolationMode::Full);
    load_n(&mut sys, 15);
    let err = sys.load(
        ComponentImage::new("X", CodeImage::plain(64)),
        Box::new(Dummy),
    );
    assert!(matches!(err, Err(CubicleError::OutOfKeys)));
}

#[test]
fn with_virtualisation_32_cubicles_load_and_run() {
    let mut sys = System::new(IsolationMode::Full);
    sys.enable_key_virtualisation();
    let cids = load_n(&mut sys, 32);
    // every cubicle can run and use its own memory
    for &cid in &cids {
        sys.run_in_cubicle(cid, |sys| {
            let p = sys.heap_alloc(64, 8).unwrap();
            sys.write(p, b"mine").unwrap();
            assert_eq!(sys.read_vec(p, 4).unwrap(), b"mine");
        });
    }
    assert!(
        sys.key_evictions() > 0,
        "more cubicles than keys forces evictions"
    );
}

#[test]
fn isolation_holds_across_rebinding() {
    let mut sys = System::new(IsolationMode::Full);
    sys.enable_key_virtualisation();
    let cids = load_n(&mut sys, 24);
    // cubicle 0 stores a secret…
    let secret = sys.run_in_cubicle(cids[0], |sys| {
        let p = sys.heap_alloc(64, 8).unwrap();
        sys.write(p, b"secret").unwrap();
        p
    });
    // …then every other cubicle runs (cycling the key pool repeatedly)…
    for &cid in &cids[1..] {
        sys.run_in_cubicle(cid, |sys| {
            let p = sys.heap_alloc(16, 8).unwrap();
            sys.write(p, b"x").unwrap();
        });
    }
    // …no one could ever read the secret…
    for &cid in &cids[1..] {
        let denied = sys.run_in_cubicle(cid, |sys| sys.read_vec(secret, 6));
        assert!(
            denied.is_err(),
            "{cid} read another cubicle's page after rebinding"
        );
    }
    // …and the owner still can, even after its key was recycled.
    let back = sys.run_in_cubicle(cids[0], |sys| sys.read_vec(secret, 6).unwrap());
    assert_eq!(back, b"secret");
}

#[test]
fn windows_still_work_under_virtualisation() {
    let builder = Builder::new();
    let mut sys = System::new(IsolationMode::Full);
    sys.enable_key_virtualisation();
    // a reader component plus enough filler to overflow the key pool
    let reader = sys
        .load(
            ComponentImage::new("READER", CodeImage::plain(256)).export(
                builder
                    .export("long reader_sum(const void *buf, size_t n)")
                    .unwrap(),
                |sys, _this, args| {
                    let (addr, len) = args[0].as_buf();
                    let v = sys.read_vec(addr, len)?;
                    Ok(Value::I64(v.iter().map(|&b| i64::from(b)).sum()))
                },
            ),
            Box::new(Dummy),
        )
        .unwrap();
    let cids = load_n(&mut sys, 20);
    let app = cids[19];
    let reader_cid = reader.cid;
    let sum = sys.run_in_cubicle(app, |sys| {
        let buf = sys.heap_alloc(4096, 4096).unwrap();
        sys.write(buf, &[1, 2, 3, 4]).unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 4096).unwrap();
        sys.window_open(wid, reader_cid).unwrap();
        sys.call("reader_sum", &[Value::buf_in(buf, 4)])
            .unwrap()
            .as_i64()
    });
    assert_eq!(sum, 10);
}

#[test]
fn shared_cubicles_stay_pinned() {
    let mut sys = System::new(IsolationMode::Full);
    sys.enable_key_virtualisation();
    let libc = sys
        .load(
            ComponentImage::new("LIBC", CodeImage::plain(64)).shared(),
            Box::new(Dummy),
        )
        .unwrap();
    let shared_buf = sys.run_in_cubicle(libc.cid, |sys| {
        let p = sys.heap_alloc(32, 8).unwrap();
        sys.write(p, b"table").unwrap();
        p
    });
    let cids = load_n(&mut sys, 20);
    // after heavy key churn, shared data is still reachable fault-free
    for &cid in &cids {
        let v = sys.run_in_cubicle(cid, |sys| sys.read_vec(shared_buf, 5).unwrap());
        assert_eq!(v, b"table");
    }
}

#[test]
fn evictions_are_charged() {
    let mut sys = System::new(IsolationMode::Full);
    sys.enable_key_virtualisation();
    let cids = load_n(&mut sys, 20);
    // warm every cubicle once
    for &cid in &cids {
        sys.run_in_cubicle(cid, |sys| {
            let p = sys.heap_alloc(8, 8).unwrap();
            sys.write(p, b"w").unwrap();
        });
    }
    let retags_before = sys.machine_stats().retags;
    let evictions_before = sys.key_evictions();
    // cycle through everyone again: rebinding must retag parked pages
    for &cid in &cids {
        sys.run_in_cubicle(cid, |sys| {
            let p = sys.heap_alloc(8, 8).unwrap();
            sys.write(p, b"w").unwrap();
        });
    }
    assert!(sys.key_evictions() > evictions_before);
    assert!(
        sys.machine_stats().retags > retags_before,
        "evictions must pay pkey_mprotect costs"
    );
}

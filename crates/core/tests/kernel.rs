//! Kernel-level integration tests: isolation, trap-and-map, windows, CFI.

use cubicle_core::{
    component_mut, impl_component, Builder, ComponentImage, CubicleError, CubicleId, IsolationMode,
    System, Value,
};
use cubicle_mpk::insn::{CodeImage, Insn};
use cubicle_mpk::CostModel;

struct Dummy;
impl_component!(Dummy);

struct Counter {
    calls: u64,
}
impl_component!(Counter);

fn load_plain(sys: &mut System, name: &str) -> cubicle_core::LoadedComponent {
    sys.load(
        ComponentImage::new(name, CodeImage::plain(256)),
        Box::new(Dummy),
    )
    .unwrap()
}

// ---------------------------------------------------------------------------
// Spatial isolation: cubicles cannot touch each other's memory
// ---------------------------------------------------------------------------

#[test]
fn cross_cubicle_access_without_window_is_denied() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    let b = load_plain(&mut sys, "B");

    let secret = sys.run_in_cubicle(a.cid, |sys| {
        let p = sys.heap_alloc(32, 8).unwrap();
        sys.write(p, b"top secret tls key").unwrap();
        p
    });

    let denial = sys.run_in_cubicle(b.cid, |sys| sys.read_vec(secret, 8));
    match denial {
        Err(CubicleError::WindowDenied {
            accessor, owner, ..
        }) => {
            assert_eq!(accessor, b.cid);
            assert_eq!(owner, a.cid);
        }
        other => panic!("expected WindowDenied, got {other:?}"),
    }
    assert_eq!(sys.stats().faults_denied, 1);
}

#[test]
fn same_cubicle_access_is_allowed() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    sys.run_in_cubicle(a.cid, |sys| {
        let p = sys.heap_alloc(64, 8).unwrap();
        sys.write(p, b"mine").unwrap();
        assert_eq!(sys.read_vec(p, 4).unwrap(), b"mine");
    });
}

#[test]
fn unikraft_mode_has_no_isolation() {
    // The baseline: single unprotected address space.
    let mut sys = System::new(IsolationMode::Unikraft);
    let a = load_plain(&mut sys, "A");
    let b = load_plain(&mut sys, "B");
    let p = sys.run_in_cubicle(a.cid, |sys| {
        let p = sys.heap_alloc(16, 8).unwrap();
        sys.write(p, b"open").unwrap();
        p
    });
    let read = sys.run_in_cubicle(b.cid, |sys| sys.read_vec(p, 4).unwrap());
    assert_eq!(read, b"open");
    assert_eq!(sys.machine_stats().faults, 0);
}

// ---------------------------------------------------------------------------
// Windows: temporal isolation with zero-copy grants
// ---------------------------------------------------------------------------

#[test]
fn open_window_grants_and_retags_zero_copy() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    let b = load_plain(&mut sys, "B");
    let b_cid = b.cid;

    let buf = sys.run_in_cubicle(a.cid, |sys| {
        let buf = sys.heap_alloc(4096, 4096).unwrap();
        sys.write(buf, b"shared payload").unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 4096).unwrap();
        sys.window_open(wid, b_cid).unwrap();
        buf
    });

    let bytes_written_before = sys.machine_stats().bytes_written;
    let data = sys.run_in_cubicle(b.cid, |sys| sys.read_vec(buf, 14).unwrap());
    assert_eq!(data, b"shared payload");
    assert_eq!(sys.stats().faults_resolved, 1, "one trap-and-map retag");
    assert_eq!(sys.machine_stats().retags, 1);
    assert_eq!(
        sys.machine_stats().bytes_written,
        bytes_written_before,
        "grant must not copy any data"
    );
}

#[test]
fn window_acl_is_per_cubicle() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    let b = load_plain(&mut sys, "B");
    let c = load_plain(&mut sys, "C");
    let b_cid = b.cid;

    let buf = sys.run_in_cubicle(a.cid, |sys| {
        let buf = sys.heap_alloc(128, 8).unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 128).unwrap();
        sys.window_open(wid, b_cid).unwrap();
        buf
    });

    assert!(sys
        .run_in_cubicle(b.cid, |sys| sys.read_vec(buf, 8))
        .is_ok());
    let denied = sys.run_in_cubicle(c.cid, |sys| sys.read_vec(buf, 8));
    assert!(matches!(denied, Err(CubicleError::WindowDenied { .. })));
}

#[test]
fn closed_window_is_lazy_causal_consistency() {
    // Closing does not eagerly revoke: B may still touch the page it was
    // granted, until A (the owner) reclaims it by accessing it.
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    let b = load_plain(&mut sys, "B");
    let (a_cid, b_cid) = (a.cid, b.cid);

    let (buf, wid) = sys.run_in_cubicle(a_cid, |sys| {
        let buf = sys.heap_alloc(64, 8).unwrap();
        sys.write(buf, b"window data").unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 64).unwrap();
        sys.window_open(wid, b_cid).unwrap();
        (buf, wid)
    });

    // B faults in the page.
    sys.run_in_cubicle(b_cid, |sys| sys.read_vec(buf, 4).unwrap());
    // A closes the window…
    sys.run_in_cubicle(a_cid, |sys| sys.window_close(wid, b_cid).unwrap());
    // …but the tag still belongs to B: access is still possible (causal
    // tag consistency, paper §5.6).
    assert!(sys
        .run_in_cubicle(b_cid, |sys| sys.read_vec(buf, 4))
        .is_ok());
    // Once the owner touches the page it is retagged back…
    sys.run_in_cubicle(a_cid, |sys| sys.read_vec(buf, 4).unwrap());
    // …and B is locked out again.
    let denied = sys.run_in_cubicle(b_cid, |sys| sys.read_vec(buf, 4));
    assert!(matches!(denied, Err(CubicleError::WindowDenied { .. })));
}

#[test]
fn window_add_rejects_non_owned_memory() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    let b = load_plain(&mut sys, "B");

    let a_buf = sys.run_in_cubicle(a.cid, |sys| sys.heap_alloc(32, 8).unwrap());
    // B cannot publish A's memory in its own windows.
    let err = sys.run_in_cubicle(b.cid, |sys| {
        let wid = sys.window_init();
        sys.window_add(wid, a_buf, 32)
    });
    assert!(matches!(err, Err(CubicleError::NotOwner { .. })));
}

#[test]
fn window_management_is_owner_only() {
    // A window created by A is invisible to B (windows are per-cubicle).
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    let b = load_plain(&mut sys, "B");
    let wid = sys.run_in_cubicle(a.cid, |sys| sys.window_init());
    let err = sys.run_in_cubicle(b.cid, |sys| sys.window_open(wid, CubicleId::MONITOR));
    assert!(matches!(err, Err(CubicleError::NoSuchWindow(_))));
}

#[test]
fn sub_page_window_grants_whole_page() {
    // Windows work at page granularity (paper §5.3 note): publishing 10
    // bytes exposes the rest of the page — developers must align.
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    let b = load_plain(&mut sys, "B");
    let b_cid = b.cid;
    let buf = sys.run_in_cubicle(a.cid, |sys| {
        let buf = sys.heap_alloc(4096, 4096).unwrap();
        sys.write(buf + 100, b"adjacent").unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 10).unwrap();
        sys.window_open(wid, b_cid).unwrap();
        buf
    });
    // The faulting access inside the 10-byte range retags the whole page…
    sys.run_in_cubicle(b_cid, |sys| sys.read_vec(buf, 4).unwrap());
    // …and the adjacent data on the same page becomes readable too.
    let leak = sys.run_in_cubicle(b_cid, |sys| sys.read_vec(buf + 100, 8).unwrap());
    assert_eq!(leak, b"adjacent");
}

#[test]
fn window_remove_disables_future_grants() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    let b = load_plain(&mut sys, "B");
    let b_cid = b.cid;
    let buf = sys.run_in_cubicle(a.cid, |sys| {
        let buf = sys.heap_alloc(64, 8).unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 64).unwrap();
        sys.window_open(wid, b_cid).unwrap();
        sys.window_remove(wid, buf).unwrap();
        buf
    });
    let denied = sys.run_in_cubicle(b_cid, |sys| sys.read_vec(buf, 4));
    assert!(matches!(denied, Err(CubicleError::WindowDenied { .. })));
}

// ---------------------------------------------------------------------------
// Cross-cubicle calls & CFI
// ---------------------------------------------------------------------------

fn counter_image(name: &str, entry: &str) -> ComponentImage {
    let builder = Builder::new();
    ComponentImage::new(name, CodeImage::plain(256)).export(
        builder.export(&format!("void {entry}(void)")).unwrap(),
        |_sys, this, _args| {
            component_mut::<Counter>(this).calls += 1;
            Ok(Value::Unit)
        },
    )
}

#[test]
fn cross_call_dispatches_and_counts_edges() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    let b = sys
        .load(
            counter_image("B", "b_touch"),
            Box::new(Counter { calls: 0 }),
        )
        .unwrap();

    sys.run_in_cubicle(a.cid, |sys| {
        for _ in 0..5 {
            sys.call("b_touch", &[]).unwrap();
        }
    });
    assert_eq!(sys.stats().edge(a.cid, b.cid), 5);
    assert_eq!(sys.stats().cross_calls, 5);
}

#[test]
fn unknown_entry_is_cfi_violation() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    let err = sys.run_in_cubicle(a.cid, |sys| sys.call("not_an_entry", &[]));
    assert!(matches!(err, Err(CubicleError::NoSuchEntry(_))));
}

#[test]
fn reentrant_cross_call_rejected() {
    // A → B → A-style nesting into the *same component* is rejected
    // (paper §5.6: nested calls are not supported and never needed).
    struct SelfCaller;
    impl_component!(SelfCaller);
    let builder = Builder::new();
    let img = ComponentImage::new("LOOP", CodeImage::plain(128)).export(
        builder.export("void loop_entry(void)").unwrap(),
        |sys, _this, _args| sys.call("loop_entry", &[]),
    );
    let mut sys = System::new(IsolationMode::Full);
    sys.load(img, Box::new(SelfCaller)).unwrap();
    let err = sys.call("loop_entry", &[]);
    assert!(matches!(err, Err(CubicleError::ReentrantCall(_))));
}

#[test]
fn callee_runs_with_its_own_privileges() {
    // While B executes, it cannot read A's memory even though A called it.
    let builder = Builder::new();
    struct Spy;
    impl_component!(Spy);
    let img = ComponentImage::new("SPY", CodeImage::plain(128)).export(
        builder.export("long spy_read(const void *p)").unwrap(),
        |sys, _this, args| {
            let target = args[0].as_ptr();
            match sys.read_vec(target, 8) {
                Ok(_) => Ok(Value::I64(1)), // leaked!
                Err(CubicleError::WindowDenied { .. }) => Ok(Value::I64(0)),
                Err(e) => Err(e),
            }
        },
    );
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    sys.load(img, Box::new(Spy)).unwrap();

    let leaked = sys.run_in_cubicle(a.cid, |sys| {
        let secret = sys.heap_alloc(32, 8).unwrap();
        sys.write(secret, b"private!").unwrap();
        // No window opened: the callee must be denied.
        sys.call("spy_read", &[Value::Ptr(secret)])
            .unwrap()
            .as_i64()
    });
    assert_eq!(
        leaked, 0,
        "callee must not read caller memory without a window"
    );
}

#[test]
fn mpk_modes_switch_pkru_on_calls() {
    let mut sys = System::new(IsolationMode::Full);
    load_plain(&mut sys, "A");
    sys.load(
        counter_image("B", "b_touch"),
        Box::new(Counter { calls: 0 }),
    )
    .unwrap();
    let w0 = sys.machine_stats().wrpkru;
    sys.call("b_touch", &[]).unwrap();
    assert_eq!(
        sys.machine_stats().wrpkru - w0,
        4,
        "2 wrpkru per transition, call + return"
    );

    let mut sys = System::new(IsolationMode::NoMpk);
    load_plain(&mut sys, "A");
    sys.load(
        counter_image("B", "b_touch"),
        Box::new(Counter { calls: 0 }),
    )
    .unwrap();
    let w0 = sys.machine_stats().wrpkru;
    sys.call("b_touch", &[]).unwrap();
    assert_eq!(sys.machine_stats().wrpkru, w0, "NoMpk never writes PKRU");
}

#[test]
fn ablation_mode_costs_are_ordered() {
    // Same workload, the four Fig. 6 configurations: cost must be
    // monotone Unikraft ≤ NoMpk ≤ NoAcl ≤ Full.
    fn run(mode: IsolationMode) -> u64 {
        let builder = Builder::new();
        let reader = ComponentImage::new("B", CodeImage::plain(128)).export(
            builder
                .export("long b_read(const void *buf, size_t n)")
                .unwrap(),
            |sys, _this, args| {
                let (addr, len) = args[0].as_buf();
                let v = sys.read_vec(addr, len)?;
                Ok(Value::I64(v[0] as i64))
            },
        );
        let mut sys = System::new(mode);
        let a = load_plain(&mut sys, "A");
        let b = sys.load(reader, Box::new(Counter { calls: 0 })).unwrap();
        let b_cid = b.cid;
        sys.run_in_cubicle(a.cid, |sys| {
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            let t0 = sys.now();
            for i in 0..100u8 {
                // the owner touches its buffer (reclaiming the page)…
                sys.write(buf, &[i]).unwrap();
                // …then grants it and calls across, as the ports do
                let wid = sys.window_init();
                sys.window_add(wid, buf, 4096).unwrap();
                sys.window_open(wid, b_cid).unwrap();
                sys.call("b_read", &[Value::buf_in(buf, 64)]).unwrap();
                sys.window_destroy(wid).unwrap();
            }
            sys.now() - t0
        })
    }
    let unikraft = run(IsolationMode::Unikraft);
    let no_mpk = run(IsolationMode::NoMpk);
    let no_acl = run(IsolationMode::NoAcl);
    let full = run(IsolationMode::Full);
    assert!(unikraft < no_mpk, "{unikraft} < {no_mpk}");
    assert!(no_mpk < no_acl, "{no_mpk} < {no_acl}");
    assert!(no_acl < full, "{no_acl} < {full}");
}

// ---------------------------------------------------------------------------
// Loader integrity (paper §5.4)
// ---------------------------------------------------------------------------

#[test]
fn loader_rejects_wrpkru_in_code() {
    let mut sys = System::new(IsolationMode::Full);
    let img = ComponentImage::new(
        "EVIL",
        CodeImage::from_insns(&[Insn::Plain { len: 10 }, Insn::Wrpkru]),
    );
    let err = sys.load(img, Box::new(Dummy));
    assert!(matches!(err, Err(CubicleError::ForbiddenInstruction(_))));
}

#[test]
fn loader_rejects_syscall_in_code() {
    let mut sys = System::new(IsolationMode::Full);
    let img = ComponentImage::new("EVIL", CodeImage::from_insns(&[Insn::Syscall]));
    assert!(matches!(
        sys.load(img, Box::new(Dummy)),
        Err(CubicleError::ForbiddenInstruction(_))
    ));
}

#[test]
fn loader_rejects_hidden_unaligned_sequence() {
    let mut sys = System::new(IsolationMode::Full);
    let img = ComponentImage::new(
        "SNEAKY",
        CodeImage::from_insns(&[Insn::ImmCarrier {
            imm: [0x0F, 0x01, 0xEF, 0x90],
        }]),
    );
    assert!(matches!(
        sys.load(img, Box::new(Dummy)),
        Err(CubicleError::ForbiddenInstruction(_))
    ));
}

#[test]
fn loader_rejects_forged_trampolines() {
    let mallory = Builder::untrusted();
    let img = ComponentImage::new("FORGED", CodeImage::plain(64)).export(
        mallory.export("void fake(void)").unwrap(),
        |_sys, _this, _args| Ok(Value::Unit),
    );
    let mut sys = System::new(IsolationMode::Full);
    let err = sys.load(img, Box::new(Dummy));
    assert!(matches!(err, Err(CubicleError::UntrustedTrampoline { .. })));
}

#[test]
fn loader_rejects_duplicate_symbols() {
    let mut sys = System::new(IsolationMode::Full);
    sys.load(counter_image("B1", "touch"), Box::new(Counter { calls: 0 }))
        .unwrap();
    let err = sys.load(counter_image("B2", "touch"), Box::new(Counter { calls: 0 }));
    assert!(matches!(err, Err(CubicleError::DuplicateSymbol(_))));
}

#[test]
fn code_pages_are_execute_only() {
    // W^X: loaded code cannot be read even by its own cubicle.
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    // Code is the first region mapped for the cubicle; find one of its
    // pages via the page-owner map by scanning low addresses.
    let mut code_addr = None;
    for page in 16..64u64 {
        let addr = cubicle_mpk::VAddr::new(page * 4096);
        if sys.page_owner(addr) == Some(a.cid) {
            code_addr = Some(addr);
            break;
        }
    }
    let code_addr = code_addr.expect("component has code pages");
    let err = sys.run_in_cubicle(a.cid, |sys| sys.read_vec(code_addr, 4));
    assert!(
        err.is_err(),
        "code pages must not be readable (execute-only)"
    );
}

#[test]
fn out_of_keys_after_15_isolated_cubicles() {
    let mut sys = System::new(IsolationMode::Full);
    for i in 0..15 {
        load_plain(&mut sys, &format!("C{i}"));
    }
    let err = sys.load(
        ComponentImage::new("C15", CodeImage::plain(64)),
        Box::new(Dummy),
    );
    assert!(matches!(err, Err(CubicleError::OutOfKeys)));
}

#[test]
fn load_into_shares_protection_domain() {
    // Fig. 9a: CORE+RAMFS merged into one compartment — components in the
    // same cubicle access each other's memory freely.
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "CORE");
    let merged = sys
        .load_into(
            ComponentImage::new("RAMFS", CodeImage::plain(64)),
            Box::new(Dummy),
            a.cid,
        )
        .unwrap();
    assert_eq!(merged.cid, a.cid);
    let p = sys.run_in_cubicle(a.cid, |sys| {
        let p = sys.heap_alloc(16, 8).unwrap();
        sys.write(p, b"same domain").unwrap();
        p
    });
    // Any code in the merged cubicle reads it without a window.
    let ok = sys.run_in_cubicle(a.cid, |sys| sys.read_vec(p, 11).unwrap());
    assert_eq!(ok, b"same domain");
}

// ---------------------------------------------------------------------------
// Shared cubicles
// ---------------------------------------------------------------------------

#[test]
fn shared_cubicle_data_is_accessible_to_all() {
    let mut sys = System::new(IsolationMode::Full);
    let libc = sys
        .load(
            ComponentImage::new("LIBC", CodeImage::plain(64)).shared(),
            Box::new(Dummy),
        )
        .unwrap();
    let a = load_plain(&mut sys, "A");
    let shared_buf = sys.run_in_cubicle(libc.cid, |sys| {
        let p = sys.heap_alloc(32, 8).unwrap();
        sys.write(p, b"global table").unwrap();
        p
    });
    // An isolated cubicle reads shared static data without any fault.
    let f0 = sys.machine_stats().faults;
    let data = sys.run_in_cubicle(a.cid, |sys| sys.read_vec(shared_buf, 12).unwrap());
    assert_eq!(data, b"global table");
    assert_eq!(sys.machine_stats().faults, f0);
}

// ---------------------------------------------------------------------------
// Memory primitives
// ---------------------------------------------------------------------------

#[test]
fn stack_alloc_balances() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    sys.run_in_cubicle(a.cid, |sys| {
        let p1 = sys.stack_alloc(100).unwrap();
        let p2 = sys.stack_alloc(100).unwrap();
        assert_ne!(p1, p2);
        sys.write(p1, b"stackvar").unwrap();
        sys.stack_free(100);
        sys.stack_free(100);
        let p3 = sys.stack_alloc(100).unwrap();
        assert_eq!(p1, p3, "stack discipline reuses the frame");
        sys.stack_free(100);
    });
}

#[test]
fn stack_overflow_detected() {
    let mut sys = System::new(IsolationMode::Full);
    let a = sys
        .load(
            ComponentImage::new("A", CodeImage::plain(64)).stack_pages(1),
            Box::new(Dummy),
        )
        .unwrap();
    let err = sys.run_in_cubicle(a.cid, |sys| sys.stack_alloc(8192));
    assert!(matches!(err, Err(CubicleError::OutOfMemory(_))));
}

#[test]
fn grant_pages_transfers_ownership() {
    let mut sys = System::new(IsolationMode::Full);
    let alloc = load_plain(&mut sys, "ALLOC");
    let app = load_plain(&mut sys, "APP");
    let app_cid = app.cid;
    let granted = sys.run_in_cubicle(alloc.cid, |sys| {
        let base = sys.alloc_pages(4);
        sys.grant_pages_to(base, 4 * 4096, app_cid).unwrap();
        base
    });
    assert_eq!(sys.page_owner(granted), Some(app.cid));
    // The app uses the pages as its own: no windows needed.
    sys.run_in_cubicle(app.cid, |sys| {
        sys.write(granted, b"now mine").unwrap();
        assert_eq!(sys.read_vec(granted, 8).unwrap(), b"now mine");
    });
}

#[test]
fn heap_grows_on_demand() {
    let mut sys = System::new(IsolationMode::Full);
    let a = sys
        .load(
            ComponentImage::new("A", CodeImage::plain(64)).heap_pages(1),
            Box::new(Dummy),
        )
        .unwrap();
    sys.run_in_cubicle(a.cid, |sys| {
        let big = sys.heap_alloc(1 << 20, 8).unwrap(); // 1 MiB ≫ 1 page
        sys.fill(big, 0xAB, 1 << 20).unwrap();
        let mut probe = [0u8; 1];
        sys.read(big + ((1 << 20) - 1), &mut probe).unwrap();
        assert_eq!(probe[0], 0xAB);
    });
}

#[test]
fn guard_gaps_catch_overruns() {
    let mut sys = System::with_cost_model(IsolationMode::Full, CostModel::free());
    let a = load_plain(&mut sys, "A");
    sys.run_in_cubicle(a.cid, |sys| {
        let base = sys.alloc_pages(1);
        // Write past the end of the allocation: hits the unmapped guard.
        let err = sys.write(base + 4096, b"overrun");
        assert!(matches!(err, Err(CubicleError::MachineFault(_))));
    });
}

#[test]
fn copy_moves_bytes_across_pages() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    sys.run_in_cubicle(a.cid, |sys| {
        let src = sys.heap_alloc(10_000, 8).unwrap();
        let dst = sys.heap_alloc(10_000, 8).unwrap();
        let pattern: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        sys.write(src, &pattern).unwrap();
        sys.copy(dst, src, 10_000).unwrap();
        assert_eq!(sys.read_vec(dst, 10_000).unwrap(), pattern);
    });
}

// ---------------------------------------------------------------------------
// Measurement plumbing
// ---------------------------------------------------------------------------

#[test]
fn since_boot_windows_counters() {
    let mut sys = System::new(IsolationMode::Full);
    let a = load_plain(&mut sys, "A");
    sys.load(
        counter_image("B", "b_touch"),
        Box::new(Counter { calls: 0 }),
    )
    .unwrap();
    sys.run_in_cubicle(a.cid, |sys| sys.call("b_touch", &[]).unwrap());
    sys.mark_boot_complete();
    sys.run_in_cubicle(a.cid, |sys| {
        sys.call("b_touch", &[]).unwrap();
        sys.call("b_touch", &[]).unwrap();
    });
    let (cycles, stats) = sys.since_boot();
    assert!(cycles > 0);
    assert_eq!(stats.cross_calls, 2, "boot-time call excluded");
}

//! Integration tests for the per-call-edge cycle watchdog: a callee
//! that overruns its cross-call cycle budget is quarantined mid-call,
//! the caller unwinds to `-ETIMEDOUT`, and unrelated cubicles keep
//! serving.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleError, CubicleId, IsolationMode, System, Value,
};
use cubicle_mpk::insn::CodeImage;

struct Node;
impl_component!(Node);

/// Loads a driver, a callee that busy-loops `spin_forever` for far more
/// cycles than any budget allows, and a healthy echo pair.
fn setup() -> (System, CubicleId, CubicleId) {
    let b = Builder::new();
    let mut sys = System::new(IsolationMode::Full);
    let app = sys
        .load(
            ComponentImage::new("APP", CodeImage::plain(4096)).heap_pages(32),
            Box::new(Node),
        )
        .unwrap();
    let spinner = sys
        .load(
            ComponentImage::new("SPIN", CodeImage::plain(4096))
                .heap_pages(32)
                .export(
                    b.export("long spin_forever(void)").unwrap(),
                    |sys, _this, _| {
                        let buf = sys.heap_alloc(64, 8)?;
                        sys.write_u64(buf, 1)?;
                        // A runaway loop: each iteration burns simulated
                        // cycles, so a cycle budget must cut it short.
                        for _ in 0..100_000 {
                            sys.read_u64(buf)?;
                        }
                        Ok(Value::I64(0))
                    },
                )
                .export(
                    b.export("long spin_quick(void)").unwrap(),
                    |sys, _this, _| {
                        let buf = sys.heap_alloc(64, 8)?;
                        sys.write_u64(buf, 7)?;
                        let v = sys.read_u64(buf)?;
                        Ok(Value::I64(v as i64))
                    },
                ),
            Box::new(Node),
        )
        .unwrap();
    sys.load(
        ComponentImage::new("ECHO", CodeImage::plain(4096))
            .heap_pages(32)
            .export(
                b.export("long echo(long v)").unwrap(),
                |_sys, _this, args| Ok(Value::I64(args[0].as_i64())),
            ),
        Box::new(Node),
    )
    .unwrap();
    (sys, app.cid, spinner.cid)
}

#[test]
fn runaway_callee_times_out_and_caller_sees_etimedout() {
    let (mut sys, app, spinner) = setup();
    sys.set_fault_containment(true);
    sys.set_cycle_budget(Some(10_000));

    // The runaway call is cut short: the callee is quarantined mid-call
    // and the unwind converts the trip to -ETIMEDOUT at the caller.
    let r = sys.run_in_cubicle(app, |sys| sys.call("spin_forever", &[]));
    assert_eq!(
        r.unwrap().as_i64(),
        -110,
        "caller sees ETIMEDOUT, not a crash"
    );
    assert_eq!(sys.stats().watchdog_trips, 1);
    assert!(
        sys.cubicle(spinner).is_quarantined(),
        "offender is quarantined"
    );

    // The rest of the system keeps serving.
    let r = sys.run_in_cubicle(app, |sys| sys.call("echo", &[Value::I64(42)]));
    assert_eq!(
        r.unwrap().as_i64(),
        42,
        "healthy pair unaffected by the trip"
    );

    // Fresh calls into the timed-out cubicle are typed-rejected until
    // restart, exactly like any other quarantined cubicle.
    let r = sys.run_in_cubicle(app, |sys| sys.call("spin_quick", &[]));
    assert!(
        matches!(r, Err(CubicleError::Quarantined { cubicle }) if cubicle == spinner),
        "quarantined-by-watchdog rejects new calls, got {r:?}"
    );

    // Kernel invariants hold after the mid-call unwind.
    assert!(sys.audit().is_clean(), "audit clean after watchdog unwind");
}

#[test]
fn watchdog_trip_without_containment_surfaces_typed_error() {
    let (mut sys, app, spinner) = setup();
    sys.set_cycle_budget(Some(10_000));
    let r = sys.run_in_cubicle(app, |sys| sys.call("spin_forever", &[]));
    assert!(
        matches!(r, Err(CubicleError::CycleBudgetExceeded { cubicle }) if cubicle == spinner),
        "raw typed error without containment, got {r:?}"
    );
    assert_eq!(sys.stats().watchdog_trips, 1);
}

#[test]
fn restart_recovers_a_timed_out_cubicle() {
    let (mut sys, app, spinner) = setup();
    sys.set_fault_containment(true);
    sys.set_cycle_budget(Some(10_000));
    let r = sys.run_in_cubicle(app, |sys| sys.call("spin_forever", &[]));
    assert_eq!(r.unwrap().as_i64(), -110);

    sys.restart(spinner).unwrap();
    let r = sys.run_in_cubicle(app, |sys| sys.call("spin_quick", &[]));
    assert_eq!(r.unwrap().as_i64(), 7, "microrebooted cubicle serves again");

    // The timed-out marker was cleared: a later ordinary fault in the
    // restarted cubicle reports EFAULT, not a stale ETIMEDOUT.
    assert_eq!(sys.stats().watchdog_trips, 1);
}

#[test]
fn edge_budget_overrides_the_global_default() {
    let (mut sys, app, spinner) = setup();
    sys.set_fault_containment(true);
    // Global budget generous enough for the spin loop; the specific
    // APP→SPIN edge gets a tight override.
    sys.set_cycle_budget(Some(u64::MAX / 2));
    sys.set_edge_cycle_budget(app, spinner, Some(10_000));
    let r = sys.run_in_cubicle(app, |sys| sys.call("spin_forever", &[]));
    assert_eq!(r.unwrap().as_i64(), -110, "edge override trips first");
    assert_eq!(sys.stats().watchdog_trips, 1);
}

#[test]
fn generous_budget_never_trips() {
    let (mut sys, app, _spinner) = setup();
    sys.set_fault_containment(true);
    sys.set_cycle_budget(Some(u64::MAX / 2));
    let r = sys.run_in_cubicle(app, |sys| sys.call("spin_quick", &[]));
    assert_eq!(r.unwrap().as_i64(), 7);
    let r = sys.run_in_cubicle(app, |sys| sys.call("echo", &[Value::I64(9)]));
    assert_eq!(r.unwrap().as_i64(), 9);
    assert_eq!(
        sys.stats().watchdog_trips,
        0,
        "healthy workload never trips"
    );
}

#[test]
fn budget_accounting_is_cycle_exact_when_disarmed() {
    // Arming and never tripping must not change simulated cycles: the
    // watchdog polls state, it does not charge the workload.
    let (mut plain, a1, _) = setup();
    let (mut armed, a2, _) = setup();
    armed.set_cycle_budget(Some(u64::MAX / 2));
    for sys_app in [(&mut plain, a1), (&mut armed, a2)] {
        let (sys, app) = sys_app;
        let r = sys.run_in_cubicle(app, |sys| sys.call("spin_quick", &[]));
        assert_eq!(r.unwrap().as_i64(), 7);
    }
    assert_eq!(
        plain.now(),
        armed.now(),
        "an armed-but-silent watchdog is free"
    );
}

//! Golden cycle-snapshot regression test for the Figure 6 scenario.
//!
//! The invariant this file guards: *the cost model is decoupled from the
//! host algorithm*. Host-side optimisations of the simulator (flat page
//! table, software TLB, fused check+copy passes, scratch buffers) must
//! leave every **simulated** observable — total cycles, per-query
//! cycles, kernel counters, machine counters — byte-for-byte identical.
//! Figures 6/7/10 are derived from exactly these numbers, so if this
//! test passes, the paper figures are unchanged.
//!
//! The snapshot was recorded from the *seed* implementation (HashMap
//! page table, two-pass check+copy, no TLB) and is deliberately never
//! regenerated as part of an optimisation PR. To re-bless after an
//! *intentional* cost-model change:
//!
//! ```sh
//! CUBICLE_BLESS=1 cargo test -p cubicle-core --test golden_fig6
//! ```

use cubicle_bench::scenario::{build_sqlite, Partitioning, UNIKRAFT_BOUNDARY_TAX};
use cubicle_core::IsolationMode;
use cubicle_sqldb::speedtest::SpeedtestConfig;

/// Small but representative: ~2.5k rows, every query group exercised,
/// thousands of cross-calls and trap-and-map faults.
const SCALE: u32 = 5;

fn golden_path() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/fig6_split_scale5.txt"
    )
}

/// Runs the Fig 6 SQLite-split scenario (full CubicleOS isolation, the
/// 4-component partitioning) and renders every simulated observable.
fn render() -> String {
    let cfg = SpeedtestConfig {
        scale: SCALE,
        ..Default::default()
    };
    let mut dep = build_sqlite(
        IsolationMode::Full,
        Partitioning::Split,
        UNIKRAFT_BOUNDARY_TAX,
    )
    .unwrap();
    let mut db = dep
        .open_db(cubicle_sqldb::pager::DEFAULT_CACHE_PAGES)
        .unwrap();
    let results = dep.run_speedtest(&mut db, &cfg).unwrap();

    let mut out = String::new();
    out.push_str(&format!("fig6 split scale={SCALE} mode=Full\n"));
    for r in &results {
        out.push_str(&format!(
            "query {:>3}: cycles={} rows={}\n",
            r.id, r.cycles, r.rows
        ));
    }
    out.push_str(&format!("total cycles: {}\n", dep.sys.now()));

    let s = dep.sys.stats();
    out.push_str(&format!("sys stats:\n{s}"));

    // Machine counters, field by field. Host-side observability counters
    // (e.g. TLB hit/miss rates) are intentionally NOT part of the golden
    // surface: they describe the simulator, not the simulated machine.
    let m = dep.sys.machine_stats();
    out.push_str(&format!(
        "machine: reads={} writes={} bytes_read={} bytes_written={} \
         wrpkru={} retags={} faults={}\n",
        m.reads, m.writes, m.bytes_read, m.bytes_written, m.wrpkru, m.retags, m.faults
    ));
    out
}

#[test]
fn fig6_split_simulated_behaviour_matches_golden() {
    let got = render();
    if std::env::var_os("CUBICLE_BLESS").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden")).unwrap();
        std::fs::write(golden_path(), &got).unwrap();
        eprintln!("blessed {}", golden_path());
        return;
    }
    let want = std::fs::read_to_string(golden_path())
        .expect("golden snapshot missing; regenerate with CUBICLE_BLESS=1");
    assert_eq!(
        got, want,
        "simulated behaviour diverged from the golden snapshot — a host-side \
         optimisation changed charged cycles, counters or fault behaviour"
    );
}

#[test]
fn fig6_scenario_is_deterministic_run_to_run() {
    // The golden test is only meaningful if the scenario itself is
    // deterministic within one build.
    assert_eq!(render(), render());
}

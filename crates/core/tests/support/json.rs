//! A minimal JSON parser shared by the observability integration tests
//! (included via `#[path]`), enough to validate exporter output.

#![allow(dead_code)] // each including test uses a different subset

#[derive(Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

pub struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub fn parse(input: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            s: input.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len()
            && matches!(
                self.s[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .ok()
            .and_then(|t| t.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.pos).copied().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.s.get(self.pos).copied().ok_or("bad escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' | b'f' => out.push(' '),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // copy the raw (possibly multi-byte) character
                    let rest =
                        std::str::from_utf8(&self.s[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got `{}`", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            kv.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                other => return Err(format!("expected , or }} got `{}`", other as char)),
            }
        }
    }
}

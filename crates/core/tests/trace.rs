//! End-to-end tests of the observability layer: trace buffer contents,
//! exporter output, metric/counter agreement and the zero-cost-when-
//! disabled guarantee.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleError, CubicleId, FaultDecision, IsolationMode,
    System, TraceEvent, Value,
};
use cubicle_mpk::insn::CodeImage;

struct Dummy;
impl_component!(Dummy);

/// Builds the canonical two-component deployment: `A` calls `b_read` in
/// `B`, passing a windowed buffer that `B` reads via trap-and-map.
fn setup(mode: IsolationMode) -> (System, CubicleId, CubicleId) {
    let builder = Builder::new();
    let mut sys = System::new(mode);
    let a = sys
        .load(
            ComponentImage::new("A", CodeImage::plain(4096)).heap_pages(32),
            Box::new(Dummy),
        )
        .unwrap();
    let b = sys
        .load(
            ComponentImage::new("B", CodeImage::plain(4096))
                .heap_pages(32)
                .export(
                    builder
                        .export("long b_read(const void *buf, size_t n)")
                        .unwrap(),
                    |sys, _this, args| {
                        let (addr, len) = args[0].as_buf();
                        let v = sys.read_vec(addr, len)?;
                        Ok(Value::I64(i64::from(v[0])))
                    },
                ),
            Box::new(Dummy),
        )
        .unwrap();
    (sys, a.cid, b.cid)
}

/// Runs `calls` windowed cross-calls from `a` into `b`.
fn run_scenario(sys: &mut System, a: CubicleId, b: CubicleId, calls: usize) {
    let entry = sys.entry("b_read").unwrap();
    sys.run_in_cubicle(a, |sys| {
        let buf = sys.heap_alloc(4096, 4096).unwrap();
        sys.write(buf, &[7]).unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 4096).unwrap();
        sys.window_open(wid, b).unwrap();
        for _ in 0..calls {
            let r = sys.cross_call(entry, &[Value::buf_in(buf, 64)]).unwrap();
            assert_eq!(r.as_i64(), 7);
        }
        sys.window_destroy(wid).unwrap();
        sys.heap_free(buf).unwrap();
    });
}

#[path = "support/json.rs"]
mod json;
use json::{Json, Parser};

// ---------------------------------------------------------------------
// The tests
// ---------------------------------------------------------------------

#[test]
fn tracing_is_cycle_exact_zero_cost() {
    let (mut plain, a1, b1) = setup(IsolationMode::Full);
    let (mut traced, a2, b2) = setup(IsolationMode::Full);
    traced.enable_tracing(4096);
    run_scenario(&mut plain, a1, b1, 25);
    run_scenario(&mut traced, a2, b2, 25);
    assert_eq!(
        plain.now(),
        traced.now(),
        "tracing must not change simulated cycle accounting"
    );
    assert_eq!(plain.stats(), traced.stats());
    assert_eq!(plain.machine_stats().retags, traced.machine_stats().retags);
    assert_eq!(plain.machine_stats().wrpkru, traced.machine_stats().wrpkru);
}

#[test]
fn every_enter_has_a_matching_exit() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 40);
    let trace = sys.trace().unwrap();
    let mut open: Vec<(CubicleId, CubicleId)> = Vec::new();
    let mut enters = 0u64;
    let mut exits = 0u64;
    for r in trace.records() {
        match r.event {
            TraceEvent::CrossCallEnter { caller, callee, .. } => {
                enters += 1;
                open.push((caller, callee));
            }
            TraceEvent::CrossCallExit { caller, callee, .. } => {
                exits += 1;
                let top = open.pop().expect("exit without matching enter");
                assert_eq!(top, (caller, callee), "exits must nest");
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "every enter must have an exit");
    assert_eq!(enters, 40);
    assert_eq!(exits, 40);
    assert_eq!(trace.dropped(), 0);
}

#[test]
fn timestamps_are_monotonic() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 10);
    let trace = sys.trace().unwrap();
    let mut last = 0u64;
    for r in trace.records() {
        assert!(
            r.at >= last,
            "timestamps must not go backwards (seq {})",
            r.seq
        );
        last = r.at;
    }
    assert!(!trace.is_empty());
}

#[test]
fn histogram_counts_equal_cross_calls() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(64); // deliberately tiny: metrics must not depend on ring retention
    run_scenario(&mut sys, a, b, 123);
    let cross_calls = sys.stats().cross_calls;
    let metrics = sys.metrics().unwrap();
    assert_eq!(metrics.total_calls(), cross_calls);
    let edge = metrics.edge(a, b).unwrap();
    assert_eq!(edge.count(), sys.stats().edge(a, b));
    assert_eq!(edge.buckets().iter().sum::<u64>(), edge.count());
    assert!(edge.p50() > 0);
    assert!(edge.p50() <= edge.p95());
    assert!(edge.p95() <= edge.p99());
    assert!(edge.p99() <= edge.max());
    let entry = sys.entry("b_read").unwrap();
    assert_eq!(metrics.entry(entry).unwrap().count(), cross_calls);
}

#[test]
fn denied_access_is_audited_exactly_once() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(4096);
    // `A` allocates a buffer but never opens a window: `B`'s read under
    // the cross-call must be denied.
    let entry = sys.entry("b_read").unwrap();
    let err = sys.run_in_cubicle(a, |sys| {
        let buf = sys.heap_alloc(4096, 4096).unwrap();
        sys.write(buf, &[1]).unwrap();
        sys.cross_call(entry, &[Value::buf_in(buf, 64)])
            .unwrap_err()
    });
    assert!(matches!(err, CubicleError::WindowDenied { .. }));
    assert_eq!(sys.stats().faults_denied, 1);

    let denied: Vec<_> = sys
        .fault_audit()
        .filter(|rec| rec.decision == FaultDecision::Denied)
        .collect();
    assert_eq!(denied.len(), 1, "exactly one denied audit record");
    assert_eq!(denied[0].accessor, b);
    assert_eq!(denied[0].owner, a);
    let audit_text = sys.export_fault_audit();
    assert!(audit_text.contains("DENIED"), "audit text: {audit_text}");
    assert!(
        audit_text.contains("owned by A"),
        "audit text: {audit_text}"
    );

    let denied_events = sys
        .trace()
        .unwrap()
        .records()
        .filter(|r| matches!(r.event, TraceEvent::FaultDenied { .. }))
        .count();
    assert_eq!(denied_events, 1);
}

#[test]
fn resolved_faults_name_the_deciding_window() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(4096);
    run_scenario(&mut sys, a, b, 1);
    assert!(sys.stats().faults_resolved > 0);
    assert!(
        sys.fault_audit()
            .any(|rec| matches!(rec.decision, FaultDecision::Window(_)) && rec.accessor == b),
        "a window-authorised resolution must appear in the audit log"
    );
    let audit_text = sys.export_fault_audit();
    assert!(
        audit_text.contains("via window#"),
        "audit text: {audit_text}"
    );
}

#[test]
fn chrome_trace_exports_valid_json_with_balanced_spans() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 15);
    let json = sys.export_chrome_trace();
    let doc = Parser::parse(&json).expect("exporter must emit valid JSON");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("missing traceEvents array: {other:?}"),
    };
    let mut begins = 0;
    let mut ends = 0;
    let mut flow_starts = 0;
    let mut flow_finishes = 0;
    let mut names = Vec::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event has ph");
        match ph {
            "B" => {
                begins += 1;
                names.push(ev.get("name").and_then(Json::as_str).unwrap().to_string());
                assert!(ev.get("ts").and_then(Json::as_num).is_some());
                // span ids thread the B/E pairs into the span tree
                assert!(ev
                    .get("args")
                    .and_then(|a| a.get("span"))
                    .and_then(Json::as_num)
                    .is_some_and(|s| s >= 1.0));
            }
            "E" => ends += 1,
            "s" => {
                flow_starts += 1;
                assert!(ev.get("id").and_then(Json::as_num).is_some());
            }
            "f" => {
                flow_finishes += 1;
                assert_eq!(ev.get("bp").and_then(Json::as_str), Some("e"));
            }
            "M" | "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(begins, 15);
    assert_eq!(ends, 15);
    assert_eq!(flow_starts, 15, "one flow arrow per cross-cubicle call");
    assert_eq!(flow_finishes, 15);
    assert!(names.iter().all(|n| n == "b_read"));
    // per-cubicle thread metadata present
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    assert!(thread_names.contains(&"A"));
    assert!(thread_names.contains(&"B"));
    assert!(thread_names.contains(&"MONITOR"));
}

#[test]
fn chrome_trace_includes_instant_events() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 3);
    let json = sys.export_chrome_trace();
    let doc = Parser::parse(&json).unwrap();
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!()
    };
    let instants: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for expected in [
        "window_init",
        "window_open",
        "window_destroy",
        "heap_alloc",
        "heap_free",
        "retag",
        "wrpkru",
        "fault_resolved",
    ] {
        assert!(
            instants.contains(&expected),
            "missing instant event {expected}"
        );
    }
}

#[test]
fn prometheus_counts_match_sysstats() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 17);
    let text = sys.export_prometheus();
    let stats = sys.stats().clone();

    let metric = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
    };
    assert_eq!(metric("cubicle_cross_calls_total "), stats.cross_calls);
    assert_eq!(
        metric("cubicle_faults_resolved_total "),
        stats.faults_resolved
    );
    assert_eq!(metric("cubicle_faults_denied_total "), stats.faults_denied);
    assert_eq!(metric("cubicle_window_ops_total "), stats.window_ops);
    assert_eq!(metric("cubicle_retags_total "), sys.machine_stats().retags);
    assert_eq!(metric("cubicle_wrpkru_total "), sys.machine_stats().wrpkru);
    assert_eq!(metric("cubicle_cycles_total "), sys.now());

    // per-edge counter and histogram agree with the kernel counters
    let edge_line = format!(
        "cubicle_call_edge_total{{caller=\"A\",callee=\"B\"}} {}",
        stats.edge(a, b)
    );
    assert!(
        text.contains(&edge_line),
        "missing `{edge_line}` in:\n{text}"
    );
    let histo_count = format!(
        "cubicle_cross_call_cycles_count{{caller=\"A\",callee=\"B\"}} {}",
        stats.edge(a, b)
    );
    assert!(
        text.contains(&histo_count),
        "missing `{histo_count}` in:\n{text}"
    );
    let inf_line = format!(
        "cubicle_cross_call_cycles_bucket{{caller=\"A\",callee=\"B\",le=\"+Inf\"}} {}",
        stats.edge(a, b)
    );
    assert!(text.contains(&inf_line), "missing `{inf_line}` in:\n{text}");
    assert!(text.contains("cubicle_entry_cycles_count{entry=\"b_read\"}"));
}

#[test]
fn trace_ring_overwrites_but_keeps_counting() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(8);
    run_scenario(&mut sys, a, b, 50);
    let cross_calls = sys.stats().cross_calls;
    let trace = sys.trace().unwrap();
    assert_eq!(trace.len(), 8);
    assert!(trace.dropped() > 0);
    assert_eq!(trace.total_recorded(), trace.dropped() + 8);
    // metrics see every call even though the ring forgot most events
    assert_eq!(sys.metrics().unwrap().total_calls(), cross_calls);
}

#[test]
fn disabled_tracing_reports_nothing() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    run_scenario(&mut sys, a, b, 5);
    assert!(!sys.tracing_enabled());
    assert!(sys.trace().is_none());
    assert!(sys.metrics().is_none());
    assert_eq!(sys.fault_audit().count(), 0);
    assert_eq!(sys.export_chrome_trace(), "{\"traceEvents\":[]}");
    assert_eq!(sys.export_fault_audit(), "");
    // counters still work without the tracer
    let text = sys.export_prometheus();
    assert!(text.contains("cubicle_cross_calls_total 5"));
    assert!(!text.contains("cubicle_cross_call_cycles_bucket"));
}

#[test]
fn ipc_and_unikraft_modes_trace_too() {
    for mode in [
        IsolationMode::Unikraft,
        IsolationMode::NoMpk,
        IsolationMode::NoAcl,
    ] {
        let (mut sys, a, b) = setup(mode);
        sys.enable_tracing(4096);
        run_scenario(&mut sys, a, b, 4);
        assert_eq!(
            sys.metrics().unwrap().total_calls(),
            sys.stats().cross_calls,
            "{mode:?}"
        );
        let json = sys.export_chrome_trace();
        Parser::parse(&json).unwrap_or_else(|e| panic!("{mode:?}: invalid JSON: {e}"));
    }
}

#[test]
fn saturated_ring_reports_drops() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(4); // tiny ring: most events are overwritten
    run_scenario(&mut sys, a, b, 30);
    let text = sys.export_prometheus();
    let dropped = sys.trace().unwrap().dropped();
    assert!(dropped > 0, "the tiny ring must have overflowed");
    let line = format!("cubicle_trace_events_dropped_total {dropped}");
    assert!(text.contains(&line), "missing `{line}` in:\n{text}");
    let audit = sys.export_fault_audit();
    assert!(
        audit.lines().any(|l| l.starts_with("dropped:")),
        "fault-audit log must surface the saturated ring:\n{audit}"
    );
    assert!(
        audit.contains(&format!("dropped: {dropped} trace event(s)")),
        "audit drop line must carry the count:\n{audit}"
    );
}

/// Round-trips the Prometheus text output through a scrape-style parser:
/// every series needs `# HELP`/`# TYPE`, histogram buckets must be
/// cumulative and end in `+Inf == _count`, and every series of a
/// histogram family must expose the identical `le` layout (a scrape
/// requirement the old occupied-bins-only export violated).
#[test]
fn prometheus_histograms_round_trip() {
    use std::collections::{BTreeSet, HashMap};

    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 23);
    let text = sys.export_prometheus();

    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    // histogram family -> (label set minus le) -> [(le, cumulative)]
    let mut buckets: HashMap<(String, String), Vec<(f64, u64)>> = HashMap::new();
    let mut counts: HashMap<(String, String), u64> = HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            helps.insert(rest.split_whitespace().next().unwrap().to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap().to_string();
            let kind = it.next().unwrap().to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown metric type in: {line}"
            );
            types.insert(name, kind);
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad series line: {line}"));
        let value: u64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-integer sample in: {line}"));
        let (name, labels) = match series.split_once('{') {
            Some((n, l)) => (n.to_string(), l.trim_end_matches('}').to_string()),
            None => (series.to_string(), String::new()),
        };
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| types.get(*f).is_some_and(|t| t == "histogram"))
            .unwrap_or(&name)
            .to_string();
        assert!(
            types.contains_key(&family),
            "series `{name}` has no # TYPE line"
        );
        assert!(
            helps.contains(&family),
            "series `{name}` has no # HELP line"
        );
        if types[&family] == "histogram" {
            let mut le = None;
            let mut rest: Vec<&str> = Vec::new();
            for kv in labels.split(',') {
                match kv.strip_prefix("le=\"") {
                    Some(v) => le = Some(v.trim_end_matches('"').to_string()),
                    None => rest.push(kv),
                }
            }
            let key = (family.clone(), rest.join(","));
            if name.ends_with("_bucket") {
                let le = le.unwrap_or_else(|| panic!("bucket without le: {line}"));
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap_or_else(|_| panic!("bad le in: {line}"))
                };
                buckets.entry(key).or_default().push((le, value));
            } else if name.ends_with("_count") {
                counts.insert(key, value);
            }
        }
    }

    assert!(
        buckets
            .keys()
            .any(|(f, _)| f == "cubicle_cross_call_cycles"),
        "expected at least the per-edge latency histogram"
    );
    let mut layouts: HashMap<&str, Vec<u64>> = HashMap::new();
    for ((family, labels), series) in &buckets {
        let mut last = 0u64;
        for &(le, cum) in series {
            assert!(
                cum >= last,
                "{family}{{{labels}}}: buckets must be cumulative (le={le}: {cum} < {last})"
            );
            last = cum;
        }
        let (last_le, last_cum) = *series.last().unwrap();
        assert!(
            last_le.is_infinite(),
            "{family}{{{labels}}}: final bucket must be +Inf"
        );
        assert_eq!(
            Some(&last_cum),
            counts.get(&(family.clone(), labels.clone())),
            "{family}{{{labels}}}: +Inf bucket must equal _count"
        );
        // identical finite bucket layout across every series of a family
        let layout: Vec<u64> = series
            .iter()
            .filter(|(le, _)| le.is_finite())
            .map(|(le, _)| *le as u64)
            .collect();
        match layouts.get(family.as_str()) {
            Some(seen) => assert_eq!(
                seen, &layout,
                "{family}: all series must share one bucket layout"
            ),
            None => {
                layouts.insert(family, layout);
            }
        }
    }
}

//! End-to-end tests of the observability layer: trace buffer contents,
//! exporter output, metric/counter agreement and the zero-cost-when-
//! disabled guarantee.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleError, CubicleId, FaultDecision, IsolationMode,
    System, TraceEvent, Value,
};
use cubicle_mpk::insn::CodeImage;

struct Dummy;
impl_component!(Dummy);

/// Builds the canonical two-component deployment: `A` calls `b_read` in
/// `B`, passing a windowed buffer that `B` reads via trap-and-map.
fn setup(mode: IsolationMode) -> (System, CubicleId, CubicleId) {
    let builder = Builder::new();
    let mut sys = System::new(mode);
    let a = sys
        .load(
            ComponentImage::new("A", CodeImage::plain(4096)).heap_pages(32),
            Box::new(Dummy),
        )
        .unwrap();
    let b = sys
        .load(
            ComponentImage::new("B", CodeImage::plain(4096))
                .heap_pages(32)
                .export(
                    builder
                        .export("long b_read(const void *buf, size_t n)")
                        .unwrap(),
                    |sys, _this, args| {
                        let (addr, len) = args[0].as_buf();
                        let v = sys.read_vec(addr, len)?;
                        Ok(Value::I64(i64::from(v[0])))
                    },
                ),
            Box::new(Dummy),
        )
        .unwrap();
    (sys, a.cid, b.cid)
}

/// Runs `calls` windowed cross-calls from `a` into `b`.
fn run_scenario(sys: &mut System, a: CubicleId, b: CubicleId, calls: usize) {
    let entry = sys.entry("b_read").unwrap();
    sys.run_in_cubicle(a, |sys| {
        let buf = sys.heap_alloc(4096, 4096).unwrap();
        sys.write(buf, &[7]).unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 4096).unwrap();
        sys.window_open(wid, b).unwrap();
        for _ in 0..calls {
            let r = sys.cross_call(entry, &[Value::buf_in(buf, 64)]).unwrap();
            assert_eq!(r.as_i64(), 7);
        }
        sys.window_destroy(wid).unwrap();
        sys.heap_free(buf).unwrap();
    });
}

// ---------------------------------------------------------------------
// A minimal JSON parser, enough to validate exporter output.
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(input: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            s: input.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len()
            && matches!(
                self.s[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .ok()
            .and_then(|t| t.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.pos).copied().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.s.get(self.pos).copied().ok_or("bad escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' | b'f' => out.push(' '),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // copy the raw (possibly multi-byte) character
                    let rest =
                        std::str::from_utf8(&self.s[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got `{}`", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            kv.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                other => return Err(format!("expected , or }} got `{}`", other as char)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// The tests
// ---------------------------------------------------------------------

#[test]
fn tracing_is_cycle_exact_zero_cost() {
    let (mut plain, a1, b1) = setup(IsolationMode::Full);
    let (mut traced, a2, b2) = setup(IsolationMode::Full);
    traced.enable_tracing(4096);
    run_scenario(&mut plain, a1, b1, 25);
    run_scenario(&mut traced, a2, b2, 25);
    assert_eq!(
        plain.now(),
        traced.now(),
        "tracing must not change simulated cycle accounting"
    );
    assert_eq!(plain.stats(), traced.stats());
    assert_eq!(plain.machine_stats().retags, traced.machine_stats().retags);
    assert_eq!(plain.machine_stats().wrpkru, traced.machine_stats().wrpkru);
}

#[test]
fn every_enter_has_a_matching_exit() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 40);
    let trace = sys.trace().unwrap();
    let mut open: Vec<(CubicleId, CubicleId)> = Vec::new();
    let mut enters = 0u64;
    let mut exits = 0u64;
    for r in trace.records() {
        match r.event {
            TraceEvent::CrossCallEnter { caller, callee, .. } => {
                enters += 1;
                open.push((caller, callee));
            }
            TraceEvent::CrossCallExit { caller, callee, .. } => {
                exits += 1;
                let top = open.pop().expect("exit without matching enter");
                assert_eq!(top, (caller, callee), "exits must nest");
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "every enter must have an exit");
    assert_eq!(enters, 40);
    assert_eq!(exits, 40);
    assert_eq!(trace.dropped(), 0);
}

#[test]
fn timestamps_are_monotonic() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 10);
    let trace = sys.trace().unwrap();
    let mut last = 0u64;
    for r in trace.records() {
        assert!(
            r.at >= last,
            "timestamps must not go backwards (seq {})",
            r.seq
        );
        last = r.at;
    }
    assert!(!trace.is_empty());
}

#[test]
fn histogram_counts_equal_cross_calls() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(64); // deliberately tiny: metrics must not depend on ring retention
    run_scenario(&mut sys, a, b, 123);
    let cross_calls = sys.stats().cross_calls;
    let metrics = sys.metrics().unwrap();
    assert_eq!(metrics.total_calls(), cross_calls);
    let edge = metrics.edge(a, b).unwrap();
    assert_eq!(edge.count(), sys.stats().edge(a, b));
    assert_eq!(edge.buckets().iter().sum::<u64>(), edge.count());
    assert!(edge.p50() > 0);
    assert!(edge.p50() <= edge.p95());
    assert!(edge.p95() <= edge.p99());
    assert!(edge.p99() <= edge.max());
    let entry = sys.entry("b_read").unwrap();
    assert_eq!(metrics.entry(entry).unwrap().count(), cross_calls);
}

#[test]
fn denied_access_is_audited_exactly_once() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(4096);
    // `A` allocates a buffer but never opens a window: `B`'s read under
    // the cross-call must be denied.
    let entry = sys.entry("b_read").unwrap();
    let err = sys.run_in_cubicle(a, |sys| {
        let buf = sys.heap_alloc(4096, 4096).unwrap();
        sys.write(buf, &[1]).unwrap();
        sys.cross_call(entry, &[Value::buf_in(buf, 64)])
            .unwrap_err()
    });
    assert!(matches!(err, CubicleError::WindowDenied { .. }));
    assert_eq!(sys.stats().faults_denied, 1);

    let denied: Vec<_> = sys
        .fault_audit()
        .filter(|rec| rec.decision == FaultDecision::Denied)
        .collect();
    assert_eq!(denied.len(), 1, "exactly one denied audit record");
    assert_eq!(denied[0].accessor, b);
    assert_eq!(denied[0].owner, a);
    let audit_text = sys.export_fault_audit();
    assert!(audit_text.contains("DENIED"), "audit text: {audit_text}");
    assert!(
        audit_text.contains("owned by A"),
        "audit text: {audit_text}"
    );

    let denied_events = sys
        .trace()
        .unwrap()
        .records()
        .filter(|r| matches!(r.event, TraceEvent::FaultDenied { .. }))
        .count();
    assert_eq!(denied_events, 1);
}

#[test]
fn resolved_faults_name_the_deciding_window() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(4096);
    run_scenario(&mut sys, a, b, 1);
    assert!(sys.stats().faults_resolved > 0);
    assert!(
        sys.fault_audit()
            .any(|rec| matches!(rec.decision, FaultDecision::Window(_)) && rec.accessor == b),
        "a window-authorised resolution must appear in the audit log"
    );
    let audit_text = sys.export_fault_audit();
    assert!(
        audit_text.contains("via window#"),
        "audit text: {audit_text}"
    );
}

#[test]
fn chrome_trace_exports_valid_json_with_balanced_spans() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 15);
    let json = sys.export_chrome_trace();
    let doc = Parser::parse(&json).expect("exporter must emit valid JSON");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("missing traceEvents array: {other:?}"),
    };
    let mut begins = 0;
    let mut ends = 0;
    let mut names = Vec::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .expect("every event has ph");
        match ph {
            "B" => {
                begins += 1;
                names.push(ev.get("name").and_then(Json::as_str).unwrap().to_string());
                assert!(ev.get("ts").and_then(Json::as_num).is_some());
            }
            "E" => ends += 1,
            "M" | "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(begins, 15);
    assert_eq!(ends, 15);
    assert!(names.iter().all(|n| n == "b_read"));
    // per-cubicle thread metadata present
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    assert!(thread_names.contains(&"A"));
    assert!(thread_names.contains(&"B"));
    assert!(thread_names.contains(&"MONITOR"));
}

#[test]
fn chrome_trace_includes_instant_events() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 3);
    let json = sys.export_chrome_trace();
    let doc = Parser::parse(&json).unwrap();
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!()
    };
    let instants: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for expected in [
        "window_init",
        "window_open",
        "window_destroy",
        "heap_alloc",
        "heap_free",
        "retag",
        "wrpkru",
        "fault_resolved",
    ] {
        assert!(
            instants.contains(&expected),
            "missing instant event {expected}"
        );
    }
}

#[test]
fn prometheus_counts_match_sysstats() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(1 << 16);
    run_scenario(&mut sys, a, b, 17);
    let text = sys.export_prometheus();
    let stats = sys.stats().clone();

    let metric = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
    };
    assert_eq!(metric("cubicle_cross_calls_total "), stats.cross_calls);
    assert_eq!(
        metric("cubicle_faults_resolved_total "),
        stats.faults_resolved
    );
    assert_eq!(metric("cubicle_faults_denied_total "), stats.faults_denied);
    assert_eq!(metric("cubicle_window_ops_total "), stats.window_ops);
    assert_eq!(metric("cubicle_retags_total "), sys.machine_stats().retags);
    assert_eq!(metric("cubicle_wrpkru_total "), sys.machine_stats().wrpkru);
    assert_eq!(metric("cubicle_cycles_total "), sys.now());

    // per-edge counter and histogram agree with the kernel counters
    let edge_line = format!(
        "cubicle_call_edge_total{{caller=\"A\",callee=\"B\"}} {}",
        stats.edge(a, b)
    );
    assert!(
        text.contains(&edge_line),
        "missing `{edge_line}` in:\n{text}"
    );
    let histo_count = format!(
        "cubicle_cross_call_cycles_count{{caller=\"A\",callee=\"B\"}} {}",
        stats.edge(a, b)
    );
    assert!(
        text.contains(&histo_count),
        "missing `{histo_count}` in:\n{text}"
    );
    let inf_line = format!(
        "cubicle_cross_call_cycles_bucket{{caller=\"A\",callee=\"B\",le=\"+Inf\"}} {}",
        stats.edge(a, b)
    );
    assert!(text.contains(&inf_line), "missing `{inf_line}` in:\n{text}");
    assert!(text.contains("cubicle_entry_cycles_count{entry=\"b_read\"}"));
}

#[test]
fn trace_ring_overwrites_but_keeps_counting() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.enable_tracing(8);
    run_scenario(&mut sys, a, b, 50);
    let cross_calls = sys.stats().cross_calls;
    let trace = sys.trace().unwrap();
    assert_eq!(trace.len(), 8);
    assert!(trace.dropped() > 0);
    assert_eq!(trace.total_recorded(), trace.dropped() + 8);
    // metrics see every call even though the ring forgot most events
    assert_eq!(sys.metrics().unwrap().total_calls(), cross_calls);
}

#[test]
fn disabled_tracing_reports_nothing() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    run_scenario(&mut sys, a, b, 5);
    assert!(!sys.tracing_enabled());
    assert!(sys.trace().is_none());
    assert!(sys.metrics().is_none());
    assert_eq!(sys.fault_audit().count(), 0);
    assert_eq!(sys.export_chrome_trace(), "{\"traceEvents\":[]}");
    assert_eq!(sys.export_fault_audit(), "");
    // counters still work without the tracer
    let text = sys.export_prometheus();
    assert!(text.contains("cubicle_cross_calls_total 5"));
    assert!(!text.contains("cubicle_cross_call_cycles_bucket"));
}

#[test]
fn ipc_and_unikraft_modes_trace_too() {
    for mode in [
        IsolationMode::Unikraft,
        IsolationMode::NoMpk,
        IsolationMode::NoAcl,
    ] {
        let (mut sys, a, b) = setup(mode);
        sys.enable_tracing(4096);
        run_scenario(&mut sys, a, b, 4);
        assert_eq!(
            sys.metrics().unwrap().total_calls(),
            sys.stats().cross_calls,
            "{mode:?}"
        );
        let json = sys.export_chrome_trace();
        Parser::parse(&json).unwrap_or_else(|e| panic!("{mode:?}: invalid JSON: {e}"));
    }
}

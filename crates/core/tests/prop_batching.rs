//! Property: a batched cross-call dispatch is observationally equivalent
//! to the same invocations issued one by one — identical return values,
//! and on an injected fault the identical contained errno at the same
//! position (the batch terminates writev-style with that errno as its
//! final element). `System::audit()` stays clean after every step of
//! both executions; only the *cost* differs (the batch amortises one
//! crossing over N elements).

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleError, CubicleId, IsolationMode, System, Value,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::rng::Rng64;
use cubicle_mpk::VAddr;

struct Dummy;
impl_component!(Dummy);

/// An address far above anything the monitor ever maps.
const WILD: VAddr = VAddr::new(0x0FFF_0000);

const MAX_ELEMS: usize = 12;

fn boot() -> (System, CubicleId, CubicleId) {
    let b = Builder::new();
    let mut sys = System::new(IsolationMode::Full);
    sys.set_fault_containment(true);
    let a = sys
        .load(
            ComponentImage::new("A", CodeImage::plain(256)).heap_pages(MAX_ELEMS + 2),
            Box::new(Dummy),
        )
        .unwrap();
    let bee = sys
        .load(
            ComponentImage::new("B", CodeImage::plain(256)).export(
                b.export("long b_op(const void *buf, size_t n, uint64_t fault)")
                    .unwrap(),
                |sys, _this, args| {
                    if args[1].as_u64() != 0 {
                        sys.read_vec(WILD, 8)?; // injected wild access
                    }
                    let (addr, len) = args[0].as_buf();
                    let v = sys.read_vec(addr, len)?;
                    Ok(Value::I64(i64::from(v[0]) * 3 + len as i64))
                },
            ),
            Box::new(Dummy),
        )
        .unwrap();
    (sys, a.cid, bee.cid)
}

/// One generated workload: per-element payload bytes plus at most one
/// injected-fault position.
struct Plan {
    payload: Vec<u8>,
    fault_at: Option<usize>,
}

fn plan(rng: &mut Rng64) -> Plan {
    let n = rng.range_usize(1, MAX_ELEMS + 1);
    let payload = (0..n).map(|_| rng.next_u32() as u8).collect();
    let fault_at = if rng.range_usize(0, 3) == 0 {
        Some(rng.range_usize(0, n))
    } else {
        None
    };
    Plan { payload, fault_at }
}

/// Allocates one page per element under a single window opened to B.
fn stage(sys: &mut System, a: CubicleId, b: CubicleId, plan: &Plan) -> Vec<VAddr> {
    sys.run_in_cubicle(a, |sys| {
        let wid = sys.window_init();
        let bufs: Vec<VAddr> = plan
            .payload
            .iter()
            .map(|&v| {
                let buf = sys.heap_alloc(4096, 4096).unwrap();
                sys.write(buf, &[v]).unwrap();
                sys.window_add(wid, buf, 4096).unwrap();
                buf
            })
            .collect();
        sys.window_open(wid, b).unwrap();
        bufs
    })
}

fn fault_flag(plan: &Plan, i: usize) -> u64 {
    u64::from(plan.fault_at == Some(i))
}

/// The unbatched reference execution: values collected until the first
/// contained errno (inclusive), mirroring the batch's short count.
fn run_unbatched(plan: &Plan) -> (Vec<i64>, System) {
    let (mut sys, a, b) = boot();
    let entry = sys.entry("b_op").unwrap();
    let bufs = stage(&mut sys, a, b, plan);
    let mut out = Vec::new();
    for (i, &buf) in bufs.iter().enumerate() {
        let r = sys.run_in_cubicle(a, |sys| {
            sys.cross_call(
                entry,
                &[Value::buf_in(buf, 64), Value::U64(fault_flag(plan, i))],
            )
        });
        sys.audit().assert_clean("unbatched step");
        match r {
            Ok(v) => {
                let v = v.as_i64();
                out.push(v);
                if v < 0 {
                    break; // contained errno terminates the sequence
                }
            }
            Err(CubicleError::Quarantined { .. }) => break,
            Err(e) => panic!("unexpected kernel error: {e:?}"),
        }
    }
    (out, sys)
}

fn run_batched(plan: &Plan) -> (Vec<i64>, System) {
    let (mut sys, a, b) = boot();
    sys.set_cross_call_batching(true);
    let entry = sys.entry("b_op").unwrap();
    let bufs = stage(&mut sys, a, b, plan);
    let elems: Vec<[Value; 2]> = bufs
        .iter()
        .enumerate()
        .map(|(i, &buf)| [Value::buf_in(buf, 64), Value::U64(fault_flag(plan, i))])
        .collect();
    let refs: Vec<&[Value]> = elems.iter().map(|e| e.as_slice()).collect();
    let rs = sys
        .run_in_cubicle(a, |sys| sys.cross_call_batch(entry, &refs))
        .unwrap();
    sys.audit().assert_clean("batched step");
    (rs.iter().map(Value::as_i64).collect(), sys)
}

#[test]
fn batched_equals_unbatched_over_seeded_workloads() {
    let mut rng = Rng64::new(0xBA7C_4ED0);
    for round in 0..24 {
        let plan = plan(&mut rng);
        let (want, ref_sys) = run_unbatched(&plan);
        let (got, bat_sys) = run_batched(&plan);
        assert_eq!(
            got, want,
            "round {round}: payload {:?} fault {:?}",
            plan.payload, plan.fault_at
        );
        // Fault attribution matches: both executions agree on whether B
        // was quarantined and on the containment counters.
        assert_eq!(
            bat_sys.stats().contained_faults,
            ref_sys.stats().contained_faults,
            "round {round}: containment must not depend on batching"
        );
        if let Some(k) = plan.fault_at {
            assert_eq!(got.len(), k + 1, "short count ends at the fault");
            assert!(got[k] < 0, "the terminal element is the errno");
        } else {
            assert_eq!(got.len(), plan.payload.len());
        }
        // The batch is one edge crossing regardless of element count.
        assert_eq!(bat_sys.stats().batch_dispatches, 1);
        assert_eq!(
            bat_sys.stats().batched_calls,
            plan.payload.len() as u64,
            "every element is accounted to the batch"
        );
    }
}

#[test]
fn one_element_batch_costs_exactly_one_cross_call() {
    let plan = Plan {
        payload: vec![42],
        fault_at: None,
    };
    // Simulated cycles must be identical: the batch protocol adds
    // nothing over `cross_call` for a single element.
    let (mut sys_u, a, _b) = boot();
    let entry = sys_u.entry("b_op").unwrap();
    let bufs = stage(&mut sys_u, a, _b, &plan);
    let c0 = sys_u.now();
    sys_u
        .run_in_cubicle(a, |sys| {
            sys.cross_call(entry, &[Value::buf_in(bufs[0], 64), Value::U64(0)])
        })
        .unwrap();
    let unbatched_cycles = sys_u.now() - c0;

    let (mut sys_b, a, _b) = boot();
    sys_b.set_cross_call_batching(true);
    let entry = sys_b.entry("b_op").unwrap();
    let bufs = stage(&mut sys_b, a, _b, &plan);
    let c0 = sys_b.now();
    sys_b
        .run_in_cubicle(a, |sys| {
            sys.cross_call_batch(entry, &[&[Value::buf_in(bufs[0], 64), Value::U64(0)]])
        })
        .unwrap();
    let batched_cycles = sys_b.now() - c0;

    assert_eq!(batched_cycles, unbatched_cycles);
}

//! Property test: kernel invariants hold under randomized fault storms.
//!
//! Drives random interleavings of healthy cross-calls, wild accesses,
//! manual quarantines, microreboots and dangling-pointer touches over a
//! small cubicle population, asserting after **every** step that
//! `System::audit()` is clean and that a healthy pair of cubicles can
//! still complete a cross-call — the paper's containment claim: a fault
//! never escapes the offending compartment.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleError, CubicleId, IsolationMode, System, Value,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::rng::Rng64;
use cubicle_mpk::VAddr;

struct Node;
impl_component!(Node);

const POP: usize = 4;
const STEPS: usize = 64;
const CASES: u64 = 24;

/// Far above anything the monitor maps in these runs.
const WILD: VAddr = VAddr::new(0x0FFF_0000);

fn node_image(i: usize) -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new(format!("N{i}"), CodeImage::plain(128))
        .export(
            b.export(&format!("long ping{i}(void)")).unwrap(),
            |_sys, _this, _| Ok(Value::I64(1)),
        )
        .export(
            b.export(&format!("long crash{i}(void)")).unwrap(),
            |sys, _this, _| {
                sys.read_vec(VAddr::new(0x0FFF_0000), 8)?;
                Ok(Value::I64(0))
            },
        )
}

#[test]
fn audit_stays_clean_under_random_fault_storms() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xFA17_0000 + case);
        let mut sys = System::new(IsolationMode::Full);
        sys.set_fault_containment(true);

        let mut ids: Vec<CubicleId> = Vec::new();
        let mut bufs: Vec<VAddr> = Vec::new();
        for i in 0..POP {
            let loaded = sys.load(node_image(i), Box::new(Node)).unwrap();
            ids.push(loaded.cid);
            bufs.push(sys.run_in_cubicle(loaded.cid, |sys| sys.heap_alloc(64, 8).unwrap()));
        }
        // Mirror of the kernel's view, updated as we inject faults.
        let mut dead = [false; POP];

        for step in 0..STEPS {
            let ctx = format!("case {case} step {step}");
            match rng.range_usize(0, 6) {
                // Cross-call between two random cubicles.
                0 => {
                    let a = rng.range_usize(0, POP);
                    let c = rng.range_usize(0, POP);
                    let r = sys.run_in_cubicle(ids[a], |sys| sys.call(&format!("ping{c}"), &[]));
                    if dead[a] || dead[c] {
                        assert!(
                            matches!(r, Err(CubicleError::Quarantined { .. })),
                            "{ctx}: call touching quarantined must be typed-rejected, got {r:?}"
                        );
                    } else if a == c {
                        // Merged component: no trampoline, plain call.
                        assert_eq!(r.unwrap().as_i64(), 1, "{ctx}");
                    } else {
                        assert_eq!(r.unwrap().as_i64(), 1, "{ctx}");
                    }
                }
                // A cubicle wild-reads unmapped memory in its own frame.
                1 => {
                    let a = rng.range_usize(0, POP);
                    let r = sys.run_in_cubicle(ids[a], |sys| sys.read_vec(WILD, 8));
                    assert!(r.is_err(), "{ctx}: wild read must fail");
                    if !dead[a] {
                        // Containment policy quarantines the accessor.
                        assert!(sys.cubicle(ids[a]).is_quarantined(), "{ctx}");
                        dead[a] = true;
                    }
                }
                // A healthy caller cross-calls an entry that faults.
                2 => {
                    let a = rng.range_usize(0, POP);
                    let c = rng.range_usize(0, POP);
                    let r = sys.run_in_cubicle(ids[a], |sys| sys.call(&format!("crash{c}"), &[]));
                    if dead[a] || dead[c] {
                        assert!(matches!(r, Err(CubicleError::Quarantined { .. })), "{ctx}");
                    } else if a == c {
                        // Fault in a merged frame: no healthy boundary
                        // below the offender, so the raw error surfaces.
                        assert!(r.is_err(), "{ctx}");
                        dead[a] = true;
                    } else {
                        assert_eq!(r.unwrap().as_i64(), -14, "{ctx}: EFAULT at caller");
                        dead[c] = true;
                    }
                }
                // Monitor-initiated quarantine.
                3 => {
                    let a = rng.range_usize(0, POP);
                    let r = sys.quarantine(ids[a], "storm");
                    if dead[a] {
                        assert!(matches!(r, Err(CubicleError::InvalidArgument(_))), "{ctx}");
                    } else {
                        r.unwrap();
                        dead[a] = true;
                    }
                }
                // Microreboot a quarantined cubicle.
                4 => {
                    let a = rng.range_usize(0, POP);
                    let r = sys.restart(ids[a]);
                    if dead[a] {
                        r.unwrap();
                        dead[a] = false;
                        // Fresh heap: the old buffer address is gone for good.
                        bufs[a] = sys.run_in_cubicle(ids[a], |sys| sys.heap_alloc(64, 8).unwrap());
                    } else {
                        assert!(matches!(r, Err(CubicleError::InvalidArgument(_))), "{ctx}");
                    }
                }
                // Touch another cubicle's buffer (live or tombstoned).
                _ => {
                    let a = rng.range_usize(0, POP);
                    let t = rng.range_usize(0, POP);
                    let addr = bufs[t];
                    let r = sys.run_in_cubicle(ids[a], |sys| sys.read_vec(addr, 8));
                    if a == t && !dead[a] {
                        assert!(r.is_ok(), "{ctx}: own live buffer readable");
                    } else if dead[a] {
                        assert!(r.is_err(), "{ctx}: quarantined context cannot read");
                    } else if dead[t] {
                        // Tombstoned page: a typed error naming the dead
                        // cubicle, and the toucher is NOT punished.
                        assert!(
                            matches!(r, Err(CubicleError::Quarantined { cubicle }) if cubicle == ids[t]),
                            "{ctx}: expected tombstone error, got {r:?}"
                        );
                        assert!(!sys.cubicle(ids[a]).is_quarantined(), "{ctx}");
                    } else {
                        // Live foreign page with no window: an isolation
                        // violation — the policy quarantines the accessor.
                        assert!(r.is_err(), "{ctx}");
                        assert!(sys.cubicle(ids[a]).is_quarantined(), "{ctx}");
                        dead[a] = true;
                    }
                }
            }

            // Invariants, after every single step.
            sys.audit().assert_clean(&ctx);
            for (i, id) in ids.iter().enumerate() {
                assert_eq!(sys.cubicle(*id).is_quarantined(), dead[i], "{ctx}: N{i}");
            }
            // The containment claim: any healthy pair still serves.
            let healthy: Vec<usize> = (0..POP).filter(|&i| !dead[i]).collect();
            if healthy.len() >= 2 {
                let a = healthy[0];
                let c = healthy[healthy.len() - 1];
                let r = sys.run_in_cubicle(ids[a], |sys| sys.call(&format!("ping{c}"), &[]));
                assert_eq!(r.unwrap().as_i64(), 1, "{ctx}: healthy pair must serve");
            }
        }
    }
}

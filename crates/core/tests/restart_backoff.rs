//! Restart backoff policy: a crash-looping cubicle waits exponentially
//! longer between incarnations (delay = base × 2^generation, measured in
//! simulated cycles from the quarantine timestamp), and is refused
//! permanently once its restart strikes are spent.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleError, IsolationMode, RestartPolicy, System,
    Value,
};
use cubicle_mpk::insn::CodeImage;

struct Dummy;
impl_component!(Dummy);

fn boot(policy: RestartPolicy) -> (System, cubicle_core::CubicleId) {
    let mut sys = System::new(IsolationMode::Full);
    sys.set_restart_policy(Some(policy));
    let b = Builder::new();
    let v = sys
        .load(
            ComponentImage::new("V", CodeImage::plain(256))
                .export(b.export("long v_ping(void)").unwrap(), |_sys, _this, _| {
                    Ok(Value::I64(1))
                }),
            Box::new(Dummy),
        )
        .unwrap();
    (sys, v.cid)
}

#[test]
fn backoff_delays_each_incarnation_exponentially() {
    const BASE: u64 = 1_000_000;
    let (mut sys, v) = boot(RestartPolicy {
        base_backoff_cycles: BASE,
        max_restarts: 8,
    });

    // Generation 0: the first restart must wait base × 2^0 cycles from
    // the quarantine timestamp (the teardown itself burns cycles, so the
    // deadline anchors on the stamp, not on when quarantine() returned).
    sys.quarantine(v, "strike 1").unwrap();
    let deadline = match sys.restart(v) {
        Err(CubicleError::RestartBackoff { cubicle, ready_at }) => {
            assert_eq!(cubicle, v);
            assert_eq!(ready_at, sys.cubicle(v).quarantined_at + BASE);
            ready_at
        }
        other => panic!("expected RestartBackoff, got {other:?}"),
    };
    // Still early one cycle before the deadline …
    sys.charge(deadline - sys.now() - 1);
    assert!(matches!(
        sys.restart(v),
        Err(CubicleError::RestartBackoff { .. })
    ));
    // … and allowed exactly at it.
    sys.charge(1);
    sys.restart(v).unwrap();
    sys.audit().assert_clean("after first backoff restart");

    // Generation 1: the delay doubles.
    sys.quarantine(v, "strike 2").unwrap();
    match sys.restart(v) {
        Err(CubicleError::RestartBackoff { ready_at, .. }) => {
            assert_eq!(ready_at, sys.cubicle(v).quarantined_at + 2 * BASE);
        }
        other => panic!("expected RestartBackoff, got {other:?}"),
    }
    sys.charge(2 * BASE);
    sys.restart(v).unwrap();
    sys.audit().assert_clean("after second backoff restart");

    // Backoff errors are kernel-level refusals, not contained faults.
    sys.quarantine(v, "strike 3").unwrap();
    let err = sys.restart(v).unwrap_err();
    assert_eq!(err.contained_errno(), None);
}

#[test]
fn strikes_exhausted_means_permanent_quarantine() {
    let (mut sys, v) = boot(RestartPolicy {
        base_backoff_cycles: 10,
        max_restarts: 3,
    });

    for strike in 1..=3 {
        sys.quarantine(v, "crash loop").unwrap();
        sys.charge(1 << 20); // far past any backoff deadline
        sys.restart(v)
            .unwrap_or_else(|e| panic!("strike {strike} should restart: {e:?}"));
    }

    // Fourth quarantine: generation == max_restarts, written off.
    sys.quarantine(v, "final crash").unwrap();
    sys.charge(1 << 20);
    match sys.restart(v) {
        Err(CubicleError::PermanentlyQuarantined { cubicle }) => assert_eq!(cubicle, v),
        other => panic!("expected PermanentlyQuarantined, got {other:?}"),
    }
    // The refusal is stable — waiting longer changes nothing.
    sys.charge(1 << 30);
    assert!(matches!(
        sys.restart(v),
        Err(CubicleError::PermanentlyQuarantined { .. })
    ));
    let err = sys.restart(v).unwrap_err();
    assert_eq!(err.contained_errno(), None);
    sys.audit()
        .assert_clean("permanent quarantine leaves a clean kernel");
}

#[test]
fn no_policy_means_immediate_restart() {
    let (mut sys, v) = boot(RestartPolicy {
        base_backoff_cycles: 1_000,
        max_restarts: 1,
    });
    sys.set_restart_policy(None);
    for _ in 0..4 {
        sys.quarantine(v, "crash").unwrap();
        sys.restart(v).unwrap(); // no delay, no strike budget
    }
    sys.audit().assert_clean("policy-free restarts");
}

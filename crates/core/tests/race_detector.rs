//! CubicleSan integration tests: the seeded lock-elision experiment,
//! silence on well-behaved multi-core runs, cycle identity with
//! detection on vs off, the audit's sanitizer class, and the
//! fault-audit export block the harnesses grep.

use cubicle_core::{impl_component, ComponentImage, IsolationMode, System};
use cubicle_mpk::insn::CodeImage;

struct Dummy;
impl_component!(Dummy);

fn load_plain(sys: &mut System, name: &str) -> cubicle_core::LoadedComponent {
    sys.load(
        ComponentImage::new(name, CodeImage::plain(256)),
        Box::new(Dummy),
    )
    .unwrap()
}

/// A deterministic multi-core workload that takes every monitor lock:
/// heap traffic (Ledger), window grants (Windows), trap-and-map faults
/// (PageMeta) and the cross-core grant-cache hits they warm
/// (GrantCache), spread over 4 cores.
fn multicore_workload(sys: &mut System) {
    sys.set_num_cores(4);
    let a = load_plain(sys, "A");
    let b = load_plain(sys, "B");
    let b_cid = b.cid;

    for round in 0..4usize {
        sys.switch_to_core(round);
        let buf = sys.run_in_cubicle(a.cid, |sys| {
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            sys.write(buf, b"cross-core payload").unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, buf, 4096).unwrap();
            sys.window_open(wid, b_cid).unwrap();
            buf
        });
        sys.switch_to_core((round + 1) % 4);
        let data = sys.run_in_cubicle(b.cid, |sys| sys.read_vec(buf, 18).unwrap());
        assert_eq!(data, b"cross-core payload");
        sys.switch_to_core(round);
        sys.run_in_cubicle(a.cid, |sys| sys.heap_free(buf).unwrap());
    }
}

#[test]
fn seeded_lock_elision_reports_exactly_that_pair() {
    let mut sys = System::new(IsolationMode::Full);
    sys.set_race_detection(true);
    sys.set_num_cores(2);

    // The well-behaved half on core 0, the elided write on core 1 with
    // no intervening lock traffic: no happens-before edge, no common
    // lock — the canonical race.
    sys.switch_to_core(0);
    sys.san_probe_locked_for_test();
    sys.switch_to_core(1);
    sys.san_probe_elided_for_test();

    let reports = sys.race_reports();
    assert_eq!(reports.len(), 1, "exactly the seeded pair: {reports:?}");
    let text = reports[0].to_string();
    assert!(
        text.contains("san_probe:page_meta.locked_write")
            && text.contains("san_probe:page_meta.elided_write"),
        "report must attribute both sites: {text}"
    );
    assert!(text.contains("page_meta"), "object named: {text}");
    assert_eq!(sys.stats().race_reports, 1);
}

#[test]
fn clean_multicore_run_is_silent() {
    let mut sys = System::new(IsolationMode::Full);
    sys.set_race_detection(true);
    multicore_workload(&mut sys);

    assert_eq!(sys.race_reports().len(), 0, "{:?}", sys.race_reports());
    assert_eq!(sys.lockorder_cycle(), None);
    assert!(sys.lockset_violations().is_empty());
    assert!(
        sys.lockorder_edges() > 0,
        "the workload must actually nest locks for the graph to mean anything"
    );
    let audit = sys.audit();
    assert!(audit.is_clean(), "sanitizer-clean audit:\n{audit}");
}

#[test]
fn detection_is_a_pure_observer_cycles_bit_identical() {
    let run = |detect: bool| -> (u64, Vec<u64>) {
        let mut sys = System::new(IsolationMode::Full);
        sys.set_race_detection(detect);
        multicore_workload(&mut sys);
        (sys.now(), (0..4).map(|i| sys.core_cycles(i)).collect())
    };
    let (now_off, cores_off) = run(false);
    let (now_on, cores_on) = run(true);
    assert_eq!(now_off, now_on, "detector charged simulated cycles");
    assert_eq!(cores_off, cores_on, "per-core clocks must be bit-identical");
}

#[test]
fn audit_carries_the_sanitizer_class() {
    let mut sys = System::new(IsolationMode::Full);
    sys.set_race_detection(true);
    sys.set_num_cores(2);
    sys.switch_to_core(0);
    sys.san_probe_locked_for_test();
    sys.switch_to_core(1);
    sys.san_probe_elided_for_test();

    let audit = sys.audit();
    assert!(!audit.is_clean(), "race must dirty the audit");
    let text = audit.to_string();
    assert!(text.contains("sanitizer"), "class named in report:\n{text}");
    assert!(
        text.contains("san_probe:page_meta.elided_write"),
        "finding carries the offending site:\n{text}"
    );
}

#[test]
fn export_block_is_gated_on_detection() {
    // Off: the export must stay byte-free of sanitizer lines, so
    // feature-off runs are identical to the pre-sanitizer kernel.
    let mut sys = System::new(IsolationMode::Full);
    multicore_workload(&mut sys);
    let off = sys.export_fault_audit();
    assert!(!off.contains("races:"), "off-export leaked: {off}");
    assert!(!off.contains("lockorder:"));
    assert!(!off.contains("sanitizer:"));

    // On and clean: exactly the lines CI greps.
    let mut sys = System::new(IsolationMode::Full);
    sys.set_race_detection(true);
    multicore_workload(&mut sys);
    let on = sys.export_fault_audit();
    assert!(on.contains("races: 0\n"), "{on}");
    assert!(on.contains("lockorder: acyclic\n"), "{on}");
    assert!(on.contains("lockset-violations: 0\n"), "{on}");

    // On and racy: the report line appears, greppable as non-zero.
    let mut sys = System::new(IsolationMode::Full);
    sys.set_race_detection(true);
    sys.set_num_cores(2);
    sys.switch_to_core(0);
    sys.san_probe_locked_for_test();
    sys.switch_to_core(1);
    sys.san_probe_elided_for_test();
    let racy = sys.export_fault_audit();
    assert!(racy.contains("races: 1\n"), "{racy}");
    assert!(racy.contains("sanitizer:"), "{racy}");
}

#[test]
fn disabling_detection_clears_history() {
    let mut sys = System::new(IsolationMode::Full);
    sys.set_race_detection(true);
    sys.set_num_cores(2);
    sys.switch_to_core(0);
    sys.san_probe_locked_for_test();
    sys.switch_to_core(1);
    sys.san_probe_elided_for_test();
    assert_eq!(sys.race_reports().len(), 1);

    sys.set_race_detection(false);
    assert!(!sys.race_detection_enabled());
    assert!(sys.race_reports().is_empty());
    assert_eq!(sys.lockorder_edges(), 0);

    // Re-enabling starts from a clean slate.
    sys.set_race_detection(true);
    assert!(sys.race_reports().is_empty());
}

//! Property-based tests of the isolation invariants (proptest).
//!
//! The central safety property of CubicleOS: **no sequence of window
//! operations ever lets a cubicle read memory whose owner has not
//! currently opened a covering window for it** — and conversely, an
//! open window always admits the grantee.

use cubicle_core::{
    impl_component, ComponentImage, CubicleError, CubicleId, IsolationMode, System, WindowId,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::VAddr;
use cubicle_mpk::CostModel;
use proptest::prelude::*;

struct Dummy;
impl_component!(Dummy);

#[derive(Clone, Copy, Debug)]
enum WinOp {
    Open(u8),     // open for peer i
    Close(u8),    // close for peer i
    CloseAll,
    OwnerTouch,   // owner reclaims the page
    PeerRead(u8), // peer i attempts a read
}

fn arb_op() -> impl Strategy<Value = WinOp> {
    prop_oneof![
        (0u8..3).prop_map(WinOp::Open),
        (0u8..3).prop_map(WinOp::Close),
        Just(WinOp::CloseAll),
        Just(WinOp::OwnerTouch),
        (0u8..3).prop_map(WinOp::PeerRead),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window_acl_algebra_never_leaks(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut sys = System::with_cost_model(IsolationMode::Full, CostModel::free());
        let owner = sys
            .load(ComponentImage::new("OWNER", CodeImage::plain(64)), Box::new(Dummy))
            .unwrap()
            .cid;
        let peers: Vec<CubicleId> = (0..3)
            .map(|i| {
                sys.load(ComponentImage::new(format!("P{i}"), CodeImage::plain(64)), Box::new(Dummy))
                    .unwrap()
                    .cid
            })
            .collect();
        let (buf, wid): (VAddr, WindowId) = sys.run_in_cubicle(owner, |sys| {
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            sys.write(buf, b"owner data").unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, buf, 4096).unwrap();
            (buf, wid)
        });

        // model state: which peers the window is open for, and — for the
        // causal-consistency rule — who currently "holds" the page tag.
        let mut open = [false; 3];
        let mut holder: Option<usize> = None; // None = owner holds it

        for op in ops {
            match op {
                WinOp::Open(i) => {
                    let i = i as usize;
                    sys.run_in_cubicle(owner, |sys| sys.window_open(wid, peers[i]).unwrap());
                    open[i] = true;
                }
                WinOp::Close(i) => {
                    let i = i as usize;
                    sys.run_in_cubicle(owner, |sys| sys.window_close(wid, peers[i]).unwrap());
                    open[i] = false;
                }
                WinOp::CloseAll => {
                    sys.run_in_cubicle(owner, |sys| sys.window_close_all(wid).unwrap());
                    open = [false; 3];
                }
                WinOp::OwnerTouch => {
                    sys.run_in_cubicle(owner, |sys| sys.read_vec(buf, 4).unwrap());
                    holder = None;
                }
                WinOp::PeerRead(i) => {
                    let i = i as usize;
                    let res = sys.run_in_cubicle(peers[i], |sys| sys.read_vec(buf, 4));
                    // expected: allowed iff the window is open for the
                    // peer, or the peer already holds the page tag
                    // (causal consistency after a lazy close).
                    let expect_ok = open[i] || holder == Some(i);
                    match res {
                        Ok(_) => {
                            prop_assert!(
                                expect_ok,
                                "peer {i} read owner memory while closed (holder {holder:?})"
                            );
                            holder = Some(i);
                        }
                        Err(CubicleError::WindowDenied { .. }) => {
                            prop_assert!(
                                !expect_ok,
                                "peer {i} denied although window open (holder {holder:?})"
                            );
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                    }
                }
            }
        }
    }

    #[test]
    fn suballocator_never_hands_out_overlaps(
        ops in proptest::collection::vec((any::<bool>(), 1usize..400), 1..80)
    ) {
        use cubicle_core::SubAllocator;
        let mut heap = SubAllocator::new();
        heap.add_region(VAddr::new(0x10000), 16 * 4096);
        let mut live: Vec<(u64, usize)> = Vec::new();
        for (is_alloc, size) in ops {
            if is_alloc || live.is_empty() {
                if let Some(a) = heap.alloc(size, 8) {
                    let start = a.raw();
                    for &(s, l) in &live {
                        prop_assert!(
                            start + size as u64 <= s || s + l as u64 <= start,
                            "overlap: [{start:#x}+{size}] vs [{s:#x}+{l}]"
                        );
                    }
                    live.push((start, size));
                }
            } else {
                let (start, _) = live.swap_remove(size % live.len());
                heap.free(VAddr::new(start)).unwrap();
            }
        }
        // everything still accounted for
        let total: usize = live.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(heap.in_use(), total);
    }
}

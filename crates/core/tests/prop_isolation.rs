//! Randomized tests of the isolation invariants.
//!
//! The central safety property of CubicleOS: **no sequence of window
//! operations ever lets a cubicle read memory whose owner has not
//! currently opened a covering window for it** — and conversely, an
//! open window always admits the grantee.
//!
//! Formerly proptest-based; rewritten over the in-tree deterministic
//! [`Rng64`] so the suite builds fully offline.

use cubicle_core::{
    impl_component, ComponentImage, CubicleError, CubicleId, IsolationMode, System, WindowId,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::rng::Rng64;
use cubicle_mpk::CostModel;
use cubicle_mpk::VAddr;

struct Dummy;
impl_component!(Dummy);

#[derive(Clone, Copy, Debug)]
enum WinOp {
    Open(usize),  // open for peer i
    Close(usize), // close for peer i
    CloseAll,
    OwnerTouch,      // owner reclaims the page
    PeerRead(usize), // peer i attempts a read
}

fn rand_op(rng: &mut Rng64) -> WinOp {
    match rng.range_usize(0, 5) {
        0 => WinOp::Open(rng.range_usize(0, 3)),
        1 => WinOp::Close(rng.range_usize(0, 3)),
        2 => WinOp::CloseAll,
        3 => WinOp::OwnerTouch,
        _ => WinOp::PeerRead(rng.range_usize(0, 3)),
    }
}

#[test]
fn window_acl_algebra_never_leaks() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xAC1_0000 + case);
        let mut sys = System::with_cost_model(IsolationMode::Full, CostModel::free());
        let owner = sys
            .load(
                ComponentImage::new("OWNER", CodeImage::plain(64)),
                Box::new(Dummy),
            )
            .unwrap()
            .cid;
        let peers: Vec<CubicleId> = (0..3)
            .map(|i| {
                sys.load(
                    ComponentImage::new(format!("P{i}"), CodeImage::plain(64)),
                    Box::new(Dummy),
                )
                .unwrap()
                .cid
            })
            .collect();
        let (buf, wid): (VAddr, WindowId) = sys.run_in_cubicle(owner, |sys| {
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            sys.write(buf, b"owner data").unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, buf, 4096).unwrap();
            (buf, wid)
        });

        // model state: which peers the window is open for, and — for the
        // causal-consistency rule — who currently "holds" the page tag.
        let mut open = [false; 3];
        let mut holder: Option<usize> = None; // None = owner holds it

        for step in 0..rng.range_usize(1, 60) {
            match rand_op(&mut rng) {
                WinOp::Open(i) => {
                    sys.run_in_cubicle(owner, |sys| sys.window_open(wid, peers[i]).unwrap());
                    open[i] = true;
                }
                WinOp::Close(i) => {
                    sys.run_in_cubicle(owner, |sys| sys.window_close(wid, peers[i]).unwrap());
                    open[i] = false;
                }
                WinOp::CloseAll => {
                    sys.run_in_cubicle(owner, |sys| sys.window_close_all(wid).unwrap());
                    open = [false; 3];
                }
                WinOp::OwnerTouch => {
                    sys.run_in_cubicle(owner, |sys| sys.read_vec(buf, 4).unwrap());
                    holder = None;
                }
                WinOp::PeerRead(i) => {
                    let res = sys.run_in_cubicle(peers[i], |sys| sys.read_vec(buf, 4));
                    // expected: allowed iff the window is open for the
                    // peer, or the peer already holds the page tag
                    // (causal consistency after a lazy close).
                    let expect_ok = open[i] || holder == Some(i);
                    match res {
                        Ok(_) => {
                            assert!(
                                expect_ok,
                                "case {case}: peer {i} read owner memory while closed \
                                 (holder {holder:?})"
                            );
                            holder = Some(i);
                        }
                        Err(CubicleError::WindowDenied { .. }) => {
                            assert!(
                                !expect_ok,
                                "case {case}: peer {i} denied although window open \
                                 (holder {holder:?})"
                            );
                        }
                        Err(e) => panic!("case {case}: unexpected error: {e}"),
                    }
                }
            }
            // global invariants must hold after *every* step, whatever
            // the interleaving of opens, closes, reclaims and reads
            sys.audit()
                .assert_clean(&format!("case {case}, step {step}"));
        }
    }
}

#[test]
fn suballocator_never_hands_out_overlaps() {
    use cubicle_core::SubAllocator;
    for case in 0..80u64 {
        let mut rng = Rng64::new(0x5BA1_0000 + case);
        let mut heap = SubAllocator::new();
        heap.add_region(VAddr::new(0x10000), 16 * 4096);
        let mut live: Vec<(u64, usize)> = Vec::new();
        for _ in 0..rng.range_usize(1, 80) {
            let is_alloc = rng.flip();
            let size = rng.range_usize(1, 400);
            if is_alloc || live.is_empty() {
                if let Some(a) = heap.alloc(size, 8) {
                    let start = a.raw();
                    for &(s, l) in &live {
                        assert!(
                            start + size as u64 <= s || s + l as u64 <= start,
                            "case {case}: overlap [{start:#x}+{size}] vs [{s:#x}+{l}]"
                        );
                    }
                    live.push((start, size));
                }
            } else {
                let (start, _) = live.swap_remove(size % live.len());
                heap.free(VAddr::new(start)).unwrap();
            }
        }
        // everything still accounted for
        let total: usize = live.iter().map(|&(_, l)| l).sum();
        assert_eq!(heap.in_use(), total, "case {case}");
    }
}

//! Fault containment: quarantine, cross-call unwinding, microreboot.
//!
//! The tentpole robustness property: a cubicle that faults is confined
//! to itself. The monitor quarantines the offender (reclaiming its
//! pages, windows and key), unwinds the in-flight cross-call chain to
//! the nearest healthy caller as a POSIX errno, rejects further calls
//! into the offender with a typed error, and can microreboot it through
//! the trusted loader path — all while `System::audit()` stays clean.

use cubicle_core::{
    component_mut, impl_component, Builder, ComponentImage, CubicleError, CubicleState,
    InvariantClass, IsolationMode, System, TraceEvent, Value,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::VAddr;

struct Dummy;
impl_component!(Dummy);

/// An address far above anything the monitor ever maps.
const WILD: VAddr = VAddr::new(0x0FFF_0000);

fn load_plain(sys: &mut System, name: &str) -> cubicle_core::LoadedComponent {
    sys.load(
        ComponentImage::new(name, CodeImage::plain(256)),
        Box::new(Dummy),
    )
    .unwrap()
}

/// A component whose entries exercise every injected-fault shape.
struct Victim {
    restarted: u32,
}
impl Victim {
    fn note_restart(&mut self) {
        self.restarted += 1;
    }
}
impl_component!(Victim, restart = note_restart);

fn victim_image(name: &str) -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new(name, CodeImage::plain(512))
        .export(b.export("long v_ping(void)").unwrap(), |_sys, _this, _| {
            Ok(Value::I64(1))
        })
        .export(b.export("long v_wild(void)").unwrap(), |sys, _this, _| {
            sys.read_vec(WILD, 8)?;
            Ok(Value::I64(0))
        })
        .export(
            b.export("long v_wild_swallow(void)").unwrap(),
            |sys, _this, _| {
                // Faults, then pretends nothing happened: the monitor
                // must not trust the swallowed error.
                let _ = sys.read_vec(WILD, 8);
                Ok(Value::I64(7))
            },
        )
        .export(
            b.export("long v_deref(const void *p)").unwrap(),
            |sys, _this, args| {
                sys.read_vec(args[0].as_ptr(), 8)?;
                Ok(Value::I64(0))
            },
        )
        .export(
            b.export("long v_hog(uint64_t bytes)").unwrap(),
            |sys, _this, args| {
                sys.heap_alloc(args[0].as_u64() as usize, 8)?;
                Ok(Value::I64(0))
            },
        )
        .export(
            b.export("long v_restarts(void)").unwrap(),
            |_sys, this, _| {
                Ok(Value::I64(i64::from(
                    component_mut::<Victim>(this).restarted,
                )))
            },
        )
}

fn setup() -> (System, cubicle_core::CubicleId, cubicle_core::CubicleId) {
    let mut sys = System::new(IsolationMode::Full);
    sys.set_fault_containment(true);
    let app = load_plain(&mut sys, "APP");
    let victim = sys
        .load(victim_image("VICTIM"), Box::new(Victim { restarted: 0 }))
        .unwrap();
    (sys, app.cid, victim.cid)
}

// ---------------------------------------------------------------------------
// Quarantine teardown
// ---------------------------------------------------------------------------

#[test]
fn quarantine_reclaims_everything_and_audits_clean() {
    let (mut sys, app, victim) = setup();
    // Give the victim live state: a buffer published through a window.
    let buf = sys.run_in_cubicle(victim, |sys| {
        let buf = sys.heap_alloc(64, 8).unwrap();
        sys.write(buf, b"victim data").unwrap();
        let wid = sys.window_init();
        sys.window_add(wid, buf, 64).unwrap();
        sys.window_open(wid, app).unwrap();
        buf
    });

    sys.quarantine(victim, "test teardown").unwrap();

    assert!(sys.cubicle(victim).is_quarantined());
    assert_eq!(sys.cubicle(victim).state, CubicleState::Quarantined);
    assert_eq!(sys.stats().quarantines, 1);
    sys.audit().assert_clean("post quarantine");

    // The reclaimed page is tombstoned: a dangling reference yields a
    // typed error naming the dead cubicle, not a wild machine fault.
    let err = sys.run_in_cubicle(app, |sys| sys.read_vec(buf, 8));
    assert!(
        matches!(err, Err(CubicleError::Quarantined { cubicle }) if cubicle == victim),
        "tombstone must name the dead cubicle, got {err:?}"
    );

    // Cross-calls into the offender are refused with a typed error.
    let err = sys.run_in_cubicle(app, |sys| sys.call("v_ping", &[]));
    assert!(matches!(err, Err(CubicleError::Quarantined { cubicle }) if cubicle == victim));

    // The monitor grants a quarantined cubicle nothing.
    let err = sys.heap_alloc_for(victim, 64, 8);
    assert!(matches!(err, Err(CubicleError::Quarantined { .. })));
}

#[test]
fn quarantine_rejects_monitor_unknown_and_double() {
    let (mut sys, _app, victim) = setup();
    assert!(matches!(
        sys.quarantine(cubicle_core::CubicleId::MONITOR, "no"),
        Err(CubicleError::InvalidArgument(_))
    ));
    assert!(matches!(
        sys.quarantine(cubicle_core::CubicleId(99), "no"),
        Err(CubicleError::NoSuchCubicle(_))
    ));
    sys.quarantine(victim, "first").unwrap();
    assert!(matches!(
        sys.quarantine(victim, "second"),
        Err(CubicleError::InvalidArgument(_))
    ));
}

// ---------------------------------------------------------------------------
// Containment policy: auto-quarantine + unwind to errno
// ---------------------------------------------------------------------------

#[test]
fn wild_access_quarantines_callee_and_unwinds_to_errno() {
    let (mut sys, app, victim) = setup();
    let r = sys.run_in_cubicle(app, |sys| sys.call("v_wild", &[]));
    // The fault was contained: the healthy caller sees -EFAULT, not Err.
    assert_eq!(r.unwrap().as_i64(), -14, "EFAULT at the healthy boundary");
    assert!(sys.cubicle(victim).is_quarantined());
    let s = sys.stats();
    assert_eq!(
        (s.quarantines, s.unwound_frames, s.contained_faults),
        (1, 1, 1)
    );
    sys.audit().assert_clean("post contained fault");

    // The rest of the system keeps serving.
    let ok = sys.run_in_cubicle(app, |sys| sys.heap_alloc(64, 8));
    assert!(ok.is_ok());
}

#[test]
fn swallowed_fault_in_quarantined_callee_is_overridden() {
    let (mut sys, app, victim) = setup();
    let r = sys.run_in_cubicle(app, |sys| sys.call("v_wild_swallow", &[]));
    // The callee returned Ok(7), but it was quarantined mid-call: the
    // monitor does not trust a faulting component's own return value.
    assert_eq!(r.unwrap().as_i64(), -14);
    assert!(sys.cubicle(victim).is_quarantined());
}

#[test]
fn bad_pointer_passing_blames_the_caller() {
    let (mut sys, app, victim) = setup();
    // APP passes a pointer to its own memory without opening a window:
    // the confused-deputy rule blames the pointer's owner in the call
    // chain, not the deputy that dereferenced it.
    let r = sys.run_in_cubicle(app, |sys| {
        let secret = sys.heap_alloc(32, 8).unwrap();
        sys.call("v_deref", &[Value::Ptr(secret)])
    });
    // APP itself is the quarantined party, so the error unwinds as Err
    // all the way out of its own frame.
    assert!(
        r.is_err(),
        "no healthy boundary inside the offender's chain"
    );
    assert!(sys.cubicle(app).is_quarantined(), "owner is the offender");
    assert!(
        !sys.cubicle(victim).is_quarantined(),
        "deputy stays healthy"
    );
    sys.audit().assert_clean("post confused-deputy quarantine");
}

#[test]
fn heap_exhaustion_unwinds_as_enomem_without_quarantine() {
    let (mut sys, app, victim) = setup();
    sys.set_heap_limit(victim, Some(64)).unwrap();
    let r = sys.run_in_cubicle(app, |sys| {
        sys.call("v_hog", &[Value::U64(64 * 1024 * 1024)])
    });
    assert_eq!(r.unwrap().as_i64(), -12, "ENOMEM at the healthy boundary");
    // Resource exhaustion is contained but is not an isolation breach:
    // the callee stays in service.
    assert!(!sys.cubicle(victim).is_quarantined());
    assert_eq!(sys.stats().contained_faults, 1);
    let ok = sys.run_in_cubicle(app, |sys| sys.call("v_ping", &[]));
    assert_eq!(ok.unwrap().as_i64(), 1);
}

#[test]
fn policy_off_keeps_raw_errors_and_never_quarantines() {
    let mut sys = System::new(IsolationMode::Full);
    let app = load_plain(&mut sys, "APP");
    let victim = sys
        .load(victim_image("VICTIM"), Box::new(Victim { restarted: 0 }))
        .unwrap();
    assert!(!sys.fault_containment());
    let r = sys.run_in_cubicle(app.cid, |sys| sys.call("v_wild", &[]));
    assert!(matches!(r, Err(CubicleError::MachineFault(_))));
    assert!(!sys.cubicle(victim.cid).is_quarantined());
    let s = sys.stats();
    assert_eq!(
        (s.quarantines, s.unwound_frames, s.contained_faults),
        (0, 0, 0)
    );
}

// ---------------------------------------------------------------------------
// Microreboot
// ---------------------------------------------------------------------------

#[test]
fn restart_reboots_through_the_loader_and_serves_again() {
    let (mut sys, app, victim) = setup();
    let r = sys.run_in_cubicle(app, |sys| sys.call("v_wild", &[]));
    assert_eq!(r.unwrap().as_i64(), -14);
    assert!(sys.cubicle(victim).is_quarantined());

    sys.restart(victim).unwrap();

    let c = sys.cubicle(victim);
    assert_eq!(c.state, CubicleState::Active);
    assert_eq!(c.generation, 1);
    assert_eq!(sys.stats().restarts, 1);
    sys.audit().assert_clean("post restart");

    // Entry IDs survived the reboot; the component's restart hook ran.
    let (ping, restarts) = sys.run_in_cubicle(app, |sys| {
        let ping = sys.call("v_ping", &[]).unwrap().as_i64();
        let restarts = sys.call("v_restarts", &[]).unwrap().as_i64();
        (ping, restarts)
    });
    assert_eq!(ping, 1);
    assert_eq!(restarts, 1, "Component::on_restart must have run");

    // And the reborn cubicle can fault & recover again (generation 2).
    let r = sys.run_in_cubicle(app, |sys| sys.call("v_wild", &[]));
    assert_eq!(r.unwrap().as_i64(), -14);
    sys.restart(victim).unwrap();
    assert_eq!(sys.cubicle(victim).generation, 2);
    sys.audit().assert_clean("post second restart");
}

#[test]
fn restart_requires_a_quarantined_idle_cubicle() {
    let (mut sys, _app, victim) = setup();
    assert!(matches!(
        sys.restart(victim),
        Err(CubicleError::InvalidArgument(_))
    ));
    assert!(matches!(
        sys.restart(cubicle_core::CubicleId(99)),
        Err(CubicleError::NoSuchCubicle(_))
    ));
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

#[test]
fn containment_emits_trace_events_and_exports() {
    let (mut sys, app, victim) = setup();
    sys.enable_tracing(4096);
    let r = sys.run_in_cubicle(app, |sys| sys.call("v_wild", &[]));
    assert_eq!(r.unwrap().as_i64(), -14);
    sys.restart(victim).unwrap();

    let events: Vec<TraceEvent> = sys.trace().unwrap().records().map(|r| r.event).collect();
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Quarantine { cubicle } if *cubicle == victim)));
    assert!(events.iter().any(
        |e| matches!(e, TraceEvent::Restart { cubicle, generation: 1 } if *cubicle == victim)
    ));
    assert!(events.iter().any(
        |e| matches!(e, TraceEvent::FaultContained { callee, caller, errno: -14 }
                if *callee == victim && *caller == app)
    ));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::PageReclaim { .. })));

    let chrome = sys.export_chrome_trace();
    assert!(chrome.contains("\"quarantined\""));
    assert!(chrome.contains("fault_contained"));
    assert!(chrome.contains("page_reclaim"));

    let prom = sys.export_prometheus();
    assert!(prom.contains("cubicle_quarantines_total 1"));
    assert!(prom.contains("cubicle_restarts_total 1"));
    assert!(prom.contains("cubicle_unwound_frames_total 1"));
    assert!(prom.contains("cubicle_contained_faults_total 1"));
    assert!(prom.contains("cubicle_page_reclaims_total"));

    let audit_log = sys.export_fault_audit();
    assert!(audit_log.contains("containment: quarantined VICTIM"));
    assert!(audit_log.contains("containment: restarted VICTIM"));

    let stats_text = sys.stats().to_string();
    assert!(stats_text.contains("quarantines: 1"));
}

#[test]
fn healthy_stats_display_omits_containment_line() {
    // The golden Fig. 6 surface: a run without containment events must
    // render exactly as before this machinery existed.
    let (mut sys, app, _victim) = setup();
    let ok = sys.run_in_cubicle(app, |sys| sys.call("v_ping", &[]));
    assert_eq!(ok.unwrap().as_i64(), 1);
    assert!(!sys.stats().to_string().contains("quarantines"));
}

#[test]
fn audit_flags_a_half_torn_down_quarantine() {
    let (mut sys, _app, victim) = setup();
    sys.run_in_cubicle(victim, |sys| {
        sys.heap_alloc(64, 8).unwrap();
    });
    // Seeded corruption: mark quarantined without the teardown.
    sys.corrupt_quarantine_for_test(victim);
    let report = sys.audit();
    assert!(!report.is_clean());
    assert!(
        report.of_class(InvariantClass::Quarantine).count() >= 2,
        "pages + live key (at least) must be flagged:\n{report}"
    );
}

//! End-to-end HTTP tests over the full 8-partition deployment.

use cubicle_core::IsolationMode;
use cubicle_httpd::{boot_web, WebDeployment};
use cubicle_net::WireModel;

fn fast_wire() -> WireModel {
    WireModel {
        hop_cycles: 2_000,
        per_byte_cycles: 1,
        request_overhead_cycles: 0,
    }
}

fn served(dep: &mut WebDeployment) -> u64 {
    dep.sys
        .with_component_mut::<cubicle_httpd::Httpd, _>(dep.httpd_slot, |h, _| h.requests_served)
        .unwrap()
}

#[test]
fn serves_a_small_file() {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    dep.put_file("/hello.html", b"<h1>cubicles</h1>").unwrap();
    let (latency, resp) = dep.fetch("/hello.html", fast_wire()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"<h1>cubicles</h1>");
    assert!(latency > 0);
    assert_eq!(served(&mut dep), 1);
}

#[test]
fn serves_large_files_across_many_segments() {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    let content: Vec<u8> = (0..300_000u32).map(|i| (i % 253) as u8).collect();
    dep.put_file("/big.bin", &content).unwrap();
    let (_lat, resp) = dep.fetch("/big.bin", fast_wire()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body.len(), content.len());
    assert_eq!(resp.body, content);
}

#[test]
fn missing_file_is_404() {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    let (_lat, resp) = dep.fetch("/nope.html", fast_wire()).unwrap();
    assert_eq!(resp.status, 404);
}

#[test]
fn sequential_requests_reuse_the_stack() {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    for i in 0..5 {
        dep.put_file(&format!("/f{i}.txt"), format!("content {i}").as_bytes())
            .unwrap();
    }
    for i in 0..5 {
        let (_lat, resp) = dep.fetch(&format!("/f{i}.txt"), fast_wire()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, format!("content {i}").as_bytes());
    }
    assert_eq!(served(&mut dep), 5);
    assert_eq!(
        dep.sys.stats().faults_denied,
        0,
        "no isolation violations while serving"
    );
}

#[test]
fn works_in_all_isolation_modes() {
    for mode in [
        IsolationMode::Unikraft,
        IsolationMode::NoMpk,
        IsolationMode::NoAcl,
        IsolationMode::Full,
    ] {
        let mut dep = boot_web(mode).unwrap();
        dep.put_file("/x", b"same bytes in every mode").unwrap();
        let (_lat, resp) = dep.fetch("/x", fast_wire()).unwrap();
        assert_eq!(resp.status, 200, "{mode:?}");
        assert_eq!(resp.body, b"same bytes in every mode", "{mode:?}");
    }
}

#[test]
fn isolation_slows_downloads_monotonically() {
    // Figure 7's premise: the same download costs more under CubicleOS.
    let content = vec![0xAAu8; 128 * 1024];
    let mut latencies = Vec::new();
    for mode in [IsolationMode::Unikraft, IsolationMode::Full] {
        let mut dep = boot_web(mode).unwrap();
        dep.put_file("/payload", &content).unwrap();
        let (lat, resp) = dep.fetch("/payload", fast_wire()).unwrap();
        assert_eq!(resp.body.len(), content.len());
        latencies.push(lat);
    }
    assert!(
        latencies[1] > latencies[0],
        "CubicleOS ({}) must be slower than Unikraft ({})",
        latencies[1],
        latencies[0]
    );
}

#[test]
fn figure5_component_graph() {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    dep.put_file("/f", &vec![1u8; 100_000]).unwrap();
    dep.sys.mark_boot_complete(); // measure the request only
    dep.fetch("/f", fast_wire()).unwrap();
    let sys = &dep.sys;
    let (_, stats) = sys.since_boot();
    let nginx = sys.find_cubicle("NGINX").unwrap();
    let lwip = sys.find_cubicle("LWIP").unwrap();
    let netdev = sys.find_cubicle("NETDEV").unwrap();
    let vfs = sys.find_cubicle("VFSCORE").unwrap();
    let ramfs = sys.find_cubicle("RAMFS").unwrap();
    // the Figure 5 edges, all active:
    assert!(stats.edge(nginx, lwip) > 0);
    assert!(stats.edge(lwip, netdev) > 0);
    assert!(stats.edge(nginx, vfs) > 0);
    assert!(stats.edge(vfs, ramfs) > 0);
    // and the forbidden shortcuts, all absent:
    assert_eq!(stats.edge(nginx, netdev), 0);
    assert_eq!(stats.edge(nginx, ramfs), 0);
    assert_eq!(stats.edge(lwip, ramfs), 0);
    // LWIP→NETDEV dominates NGINX→LWIP (segmentation fan-out, Fig. 5)
    assert!(stats.edge(lwip, netdev) > stats.edge(nginx, lwip));
}

//! End-to-end HTTP tests over the full 8-partition deployment.

use cubicle_core::IsolationMode;
use cubicle_httpd::{boot_web, WebDeployment};
use cubicle_net::WireModel;

fn fast_wire() -> WireModel {
    WireModel {
        hop_cycles: 2_000,
        per_byte_cycles: 1,
        request_overhead_cycles: 0,
    }
}

fn served(dep: &mut WebDeployment) -> u64 {
    dep.sys
        .with_component_mut::<cubicle_httpd::Httpd, _>(dep.httpd_slot, |h, _| h.requests_served)
        .unwrap()
}

#[test]
fn serves_a_small_file() {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    dep.put_file("/hello.html", b"<h1>cubicles</h1>").unwrap();
    let (latency, resp) = dep.fetch("/hello.html", fast_wire()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"<h1>cubicles</h1>");
    assert!(latency > 0);
    assert_eq!(served(&mut dep), 1);
}

#[test]
fn serves_large_files_across_many_segments() {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    let content: Vec<u8> = (0..300_000u32).map(|i| (i % 253) as u8).collect();
    dep.put_file("/big.bin", &content).unwrap();
    let (_lat, resp) = dep.fetch("/big.bin", fast_wire()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body.len(), content.len());
    assert_eq!(resp.body, content);
}

#[test]
fn missing_file_is_404() {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    let (_lat, resp) = dep.fetch("/nope.html", fast_wire()).unwrap();
    assert_eq!(resp.status, 404);
}

#[test]
fn sequential_requests_reuse_the_stack() {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    for i in 0..5 {
        dep.put_file(&format!("/f{i}.txt"), format!("content {i}").as_bytes())
            .unwrap();
    }
    for i in 0..5 {
        let (_lat, resp) = dep.fetch(&format!("/f{i}.txt"), fast_wire()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, format!("content {i}").as_bytes());
    }
    assert_eq!(served(&mut dep), 5);
    assert_eq!(
        dep.sys.stats().faults_denied,
        0,
        "no isolation violations while serving"
    );
}

#[test]
fn works_in_all_isolation_modes() {
    for mode in [
        IsolationMode::Unikraft,
        IsolationMode::NoMpk,
        IsolationMode::NoAcl,
        IsolationMode::Full,
    ] {
        let mut dep = boot_web(mode).unwrap();
        dep.put_file("/x", b"same bytes in every mode").unwrap();
        let (_lat, resp) = dep.fetch("/x", fast_wire()).unwrap();
        assert_eq!(resp.status, 200, "{mode:?}");
        assert_eq!(resp.body, b"same bytes in every mode", "{mode:?}");
    }
}

#[test]
fn isolation_slows_downloads_monotonically() {
    // Figure 7's premise: the same download costs more under CubicleOS.
    let content = vec![0xAAu8; 128 * 1024];
    let mut latencies = Vec::new();
    for mode in [IsolationMode::Unikraft, IsolationMode::Full] {
        let mut dep = boot_web(mode).unwrap();
        dep.put_file("/payload", &content).unwrap();
        let (lat, resp) = dep.fetch("/payload", fast_wire()).unwrap();
        assert_eq!(resp.body.len(), content.len());
        latencies.push(lat);
    }
    assert!(
        latencies[1] > latencies[0],
        "CubicleOS ({}) must be slower than Unikraft ({})",
        latencies[1],
        latencies[0]
    );
}

#[test]
fn figure5_component_graph() {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    dep.put_file("/f", &vec![1u8; 100_000]).unwrap();
    dep.sys.mark_boot_complete(); // measure the request only
    dep.fetch("/f", fast_wire()).unwrap();
    let sys = &dep.sys;
    let (_, stats) = sys.since_boot();
    let nginx = sys.find_cubicle("NGINX").unwrap();
    let lwip = sys.find_cubicle("LWIP").unwrap();
    let netdev = sys.find_cubicle("NETDEV").unwrap();
    let vfs = sys.find_cubicle("VFSCORE").unwrap();
    let ramfs = sys.find_cubicle("RAMFS").unwrap();
    // the Figure 5 edges, all active:
    assert!(stats.edge(nginx, lwip) > 0);
    assert!(stats.edge(lwip, netdev) > 0);
    assert!(stats.edge(nginx, vfs) > 0);
    assert!(stats.edge(vfs, ramfs) > 0);
    // and the forbidden shortcuts, all absent:
    assert_eq!(stats.edge(nginx, netdev), 0);
    assert_eq!(stats.edge(nginx, ramfs), 0);
    assert_eq!(stats.edge(lwip, ramfs), 0);
    // LWIP→NETDEV dominates NGINX→LWIP (segmentation fan-out, Fig. 5)
    assert!(stats.edge(lwip, netdev) > stats.edge(nginx, lwip));
}

// ---------------------------------------------------------------------------
// PR-7 fast paths: batching, grant cache, sendfile
// ---------------------------------------------------------------------------

fn boot_fast() -> WebDeployment {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    dep.sys.set_cross_call_batching(true);
    dep.sys.set_grant_cache(true);
    dep.sys
        .with_component_mut::<cubicle_httpd::Httpd, _>(dep.httpd_slot, |h, _| h.set_sendfile(true))
        .unwrap();
    dep
}

#[test]
fn fast_paths_serve_identical_bytes() {
    let content: Vec<u8> = (0..200_000u32).map(|i| (i % 241) as u8).collect();
    let mut base = boot_web(IsolationMode::Full).unwrap();
    base.put_file("/f.bin", &content).unwrap();
    let (_l, want) = base.fetch("/f.bin", fast_wire()).unwrap();

    let mut fast = boot_fast();
    fast.put_file("/f.bin", &content).unwrap();
    let (_l, got) = fast.fetch("/f.bin", fast_wire()).unwrap();
    assert_eq!(got.status, want.status);
    assert_eq!(got.body, want.body, "fast paths must not change the bytes");
    // The features actually engaged: batched dispatches and grant reuse.
    let s = fast.sys.stats();
    assert!(s.batch_dispatches > 0, "TX batching must engage");
    assert!(s.grant_cache_hits > 0, "the grant cache must engage");
    fast.sys.audit().assert_clean("fast-path fetch");
}

#[test]
fn fast_paths_survive_many_requests_and_small_files() {
    let mut dep = boot_fast();
    dep.put_file("/tiny.txt", b"x").unwrap();
    dep.put_file("/page.html", b"<p>hello</p>").unwrap();
    for _ in 0..3 {
        let (_l, r) = dep.fetch("/tiny.txt", fast_wire()).unwrap();
        assert_eq!((r.status, r.body.as_slice()), (200, b"x".as_slice()));
        let (_l, r) = dep.fetch("/page.html", fast_wire()).unwrap();
        assert_eq!(r.body, b"<p>hello</p>");
        let (_l, r) = dep.fetch("/gone", fast_wire()).unwrap();
        assert_eq!(r.status, 404);
    }
    dep.sys
        .audit()
        .assert_clean("after mixed fast-path requests");
}

#[test]
fn sendfile_map_is_revoked_when_the_file_changes() {
    let mut dep = boot_fast();
    let v1: Vec<u8> = vec![0xAA; 100_000];
    dep.put_file("/data.bin", &v1).unwrap();
    let (_l, r) = dep.fetch("/data.bin", fast_wire()).unwrap();
    assert_eq!(r.body, v1);
    // Rewrite the file (the extent set changes): stale sendfile windows
    // are revoked and the next fetch maps the new extents.
    let v2: Vec<u8> = vec![0x55; 150_000];
    dep.put_file("/data.bin", &v2).unwrap();
    let (_l, r) = dep.fetch("/data.bin", fast_wire()).unwrap();
    assert_eq!(r.body, v2, "fetch after rewrite serves the new bytes");
    dep.sys.audit().assert_clean("after sendfile revocation");
}

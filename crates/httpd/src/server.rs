//! The `NGINX` cubicle: a static-file HTTP/1.0 server.
//!
//! Reproduces the application of §6.3: an event-driven web server that
//! accepts connections from the TCP stack (`LWIP`), reads static files
//! through `VFSCORE`/`RAMFS`, and streams them back through the socket
//! API — every step a windowed cross-cubicle call (Figure 5's component
//! graph, 8 partitions).

use cubicle_core::{
    component_mut, impl_component, Builder, Component, ComponentImage, CubicleId, EntryId, Errno,
    LoadedComponent, Result, System, Value,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::{VAddr, PAGE_SIZE};
use cubicle_net::{LwipProxy, SND_BUF};
use cubicle_ukbase::{PlatProxy, TimeProxy};
use cubicle_vfs::{flags, FileStat, VfsPort, VfsProxy};
use std::collections::HashMap;

/// Per-transfer I/O buffer (NGINX's default `output_buffers` scale).
pub const IO_BUF: usize = 32 * 1024;

#[derive(Debug)]
enum ConnState {
    ReadingRequest(Vec<u8>),
    Sending {
        file_fd: i64,
        offset: u64,
        remaining: u64,
        /// Header (and error-body) bytes not yet pushed to the socket.
        head: Vec<u8>,
        head_sent: usize,
        /// Sendfile fast path: the file's extent pages, windowed for
        /// `LWIP` by the backend, so body bytes go straight from file
        /// pages into the socket — no `pread` copy through `io_buf`.
        extents: Option<Vec<VAddr>>,
    },
    Draining, // response fully handed to the stack; close when flushed
}

/// State of the `NGINX` component.
#[derive(Debug, Default)]
pub struct Httpd {
    lwip: Option<LwipProxy>,
    vfs: Option<VfsProxy>,
    time: Option<TimeProxy>,
    plat: Option<PlatProxy>,
    fs_backends: Vec<CubicleId>,
    port: Option<VfsPort>,
    listener: i64,
    conns: HashMap<i64, ConnState>,
    io_buf: VAddr,
    log_buf: VAddr,
    sendfile: bool,
    /// Requests completed (statistics).
    pub requests_served: u64,
    /// 404s issued (statistics).
    pub not_found: u64,
}

impl_component!(Httpd, restart = reboot_reset);

impl Httpd {
    /// Microreboot hook: connections, the listener socket and the I/O
    /// buffers referenced reclaimed memory. Wiring proxies and the
    /// backend list survive; `nginx_init` must run again to listen.
    fn reboot_reset(&mut self) {
        let (lwip, vfs, time, plat) = (self.lwip, self.vfs, self.time, self.plat);
        let fs_backends = std::mem::take(&mut self.fs_backends);
        let sendfile = self.sendfile;
        *self = Httpd::default();
        self.lwip = lwip;
        self.vfs = vfs;
        self.time = time;
        self.plat = plat;
        self.fs_backends = fs_backends;
        self.sendfile = sendfile;
    }
    /// Boot-time wiring of the OS-service proxies.
    pub fn set_wiring(&mut self, lwip: LwipProxy, vfs: VfsProxy, fs_backends: &[CubicleId]) {
        self.lwip = Some(lwip);
        self.vfs = Some(vfs);
        self.fs_backends = fs_backends.to_vec();
    }

    /// Optional wiring of `TIME` and `PLAT`: with these present the
    /// server stamps responses with the clock and writes an access-log
    /// line per request (the sparse `NGINX → TIME` / `NGINX → PLAT`
    /// edges of Figure 5).
    pub fn set_observability(&mut self, time: TimeProxy, plat: PlatProxy) {
        self.time = Some(time);
        self.plat = Some(plat);
    }

    /// Enables the zero-copy sendfile response path: the backend windows
    /// each served file's extent pages to `LWIP` and the body is sent
    /// straight from those pages, skipping the `pread` copy through the
    /// server's I/O buffer. Off by default (legacy staged path).
    pub fn set_sendfile(&mut self, on: bool) {
        self.sendfile = on;
    }
}

/// Builds the loadable `NGINX` image.
pub fn image() -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new("NGINX", CodeImage::plain(96 * 1024))
        .heap_pages(64)
        .export(b.export("long nginx_init(long port)").unwrap(), e_init)
        .export(b.export("long nginx_poll(void)").unwrap(), e_poll)
}

fn e_init(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    let port = args[0].as_i64();
    let (lwip, vfs, backends) = {
        let st = component_mut::<Httpd>(this);
        match (st.lwip, st.vfs) {
            (Some(l), Some(v)) => (l, v, st.fs_backends.clone()),
            _ => return Ok(Value::I64(Errno::Einval.neg())),
        }
    };
    // The port layer manages windows around VFS calls.
    let vfs_port = VfsPort::new(sys, vfs, &backends)?;
    // One long-lived I/O buffer, windowed for the whole data path:
    // RAMFS fills it (via VFSCORE pread) and LWIP drains it.
    let io_buf = sys.heap_alloc(IO_BUF, 4096)?;
    let wid = sys.window_init();
    sys.window_add(wid, io_buf, IO_BUF)?;
    for cid in vfs_port.grantees().to_vec() {
        sys.window_open(wid, cid)?;
    }
    sys.window_open(wid, lwip.cid())?;

    // access-log staging buffer, windowed for PLAT
    let log_buf = sys.heap_alloc(4096, 4096)?;
    {
        let st = component_mut::<Httpd>(this);
        if let Some(plat) = st.plat {
            let wid = sys.window_init();
            sys.window_add(wid, log_buf, 4096)?;
            sys.window_open(wid, plat.cid())?;
        }
    }

    let fd = lwip.socket(sys)?;
    let r = lwip.bind(sys, fd, port as u16)?;
    if r < 0 {
        return Ok(Value::I64(r));
    }
    lwip.listen(sys, fd)?;
    let st = component_mut::<Httpd>(this);
    st.port = Some(vfs_port);
    st.io_buf = io_buf;
    st.log_buf = log_buf;
    st.listener = fd;
    Ok(Value::I64(0))
}

/// One event-loop iteration. Returns the number of connections that made
/// progress (0 = idle).
fn e_poll(sys: &mut System, this: &mut dyn Component, _args: &[Value]) -> Result<Value> {
    let (lwip, listener, io_buf) = {
        let st = component_mut::<Httpd>(this);
        let Some(lwip) = st.lwip else {
            return Ok(Value::I64(Errno::Einval.neg()));
        };
        (lwip, st.listener, st.io_buf)
    };
    sys.charge(400); // event-loop bookkeeping (epoll-style dispatch)
    lwip.poll(sys)?;

    let mut progressed = 0i64;
    // accept new connections
    loop {
        let conn = lwip.accept(sys, listener)?;
        if conn < 0 {
            break;
        }
        component_mut::<Httpd>(this)
            .conns
            .insert(conn, ConnState::ReadingRequest(Vec::new()));
        progressed += 1;
    }

    let mut fds: Vec<i64> = component_mut::<Httpd>(this).conns.keys().copied().collect();
    // Service connections in fd order: the map's hash order varies from
    // process to process, and a multi-core siege replay must be a pure
    // function of the scheduler seed.
    fds.sort_unstable();
    for fd in fds {
        progressed += step_conn(sys, this, lwip, fd, io_buf)?;
    }
    lwip.poll(sys)?; // flush whatever the handlers queued
    Ok(Value::I64(progressed))
}

fn step_conn(
    sys: &mut System,
    this: &mut dyn Component,
    lwip: LwipProxy,
    fd: i64,
    io_buf: VAddr,
) -> Result<i64> {
    enum Action {
        None,
        Request,
        Send,
        CloseDrained,
    }
    let action = {
        let st = component_mut::<Httpd>(this);
        match st.conns.get_mut(&fd) {
            Some(ConnState::ReadingRequest(_)) => Action::Request,
            Some(ConnState::Sending { .. }) => Action::Send,
            Some(ConnState::Draining) => Action::CloseDrained,
            None => Action::None,
        }
    };
    match action {
        Action::None => Ok(0),
        Action::Request => {
            let n = lwip.recv(sys, fd, io_buf, IO_BUF)?;
            if n == Errno::Ewouldblock.neg() {
                return Ok(0);
            }
            if n <= 0 {
                // peer went away before sending a request
                lwip.close(sys, fd)?;
                component_mut::<Httpd>(this).conns.remove(&fd);
                return Ok(1);
            }
            let bytes = sys.read_vec(io_buf, n as usize)?;
            let st = component_mut::<Httpd>(this);
            let Some(ConnState::ReadingRequest(acc)) = st.conns.get_mut(&fd) else {
                return Ok(0);
            };
            acc.extend_from_slice(&bytes);
            let complete = acc.windows(4).any(|w| w == b"\r\n\r\n");
            if !complete {
                return Ok(1);
            }
            let request = String::from_utf8_lossy(acc).into_owned();
            open_response(sys, this, fd, &request)?;
            Ok(1)
        }
        Action::Send => pump_response(sys, this, lwip, fd, io_buf),
        Action::CloseDrained => {
            lwip.close(sys, fd)?;
            component_mut::<Httpd>(this).conns.remove(&fd);
            Ok(1)
        }
    }
}

fn open_response(
    sys: &mut System,
    this: &mut dyn Component,
    fd: i64,
    request: &str,
) -> Result<i64> {
    sys.charge(900); // request parsing + routing (NGINX http module work)
    let path = parse_get_path(request);
    let (port, sendfile, lwip) = {
        let st = component_mut::<Httpd>(this);
        (
            st.port.clone().expect("initialised"),
            st.sendfile,
            st.lwip.expect("initialised"),
        )
    };
    let state = match path {
        Some(path) => {
            let stat: Option<FileStat> = match port.stat(sys, &path)? {
                Ok(s) if !s.is_dir => Some(s),
                _ => None,
            };
            match stat {
                Some(stat) => {
                    let file_fd = port.open(sys, &path, flags::O_RDONLY)?;
                    if file_fd < 0 {
                        None
                    } else {
                        // Sendfile fast path: window the file's pages to
                        // LWIP up front; on any backend refusal (e.g.
                        // file too large for the extent buffer) fall
                        // back to the staged pread path.
                        let extents = if sendfile && stat.size > 0 {
                            port.sendfile_map(sys, file_fd, lwip.cid())?.ok()
                        } else {
                            None
                        };
                        let head = format!(
                            "HTTP/1.0 200 OK\r\nServer: cubicle-nginx\r\nContent-Length: {}\r\nContent-Type: application/octet-stream\r\n\r\n",
                            stat.size
                        );
                        Some(ConnState::Sending {
                            file_fd,
                            offset: 0,
                            remaining: stat.size,
                            head: head.into_bytes(),
                            head_sent: 0,
                            extents,
                        })
                    }
                }
                None => None,
            }
        }
        None => None,
    };
    let state = state.unwrap_or_else(|| {
        component_mut::<Httpd>(this).not_found += 1;
        let body = "404 not found\n";
        let head = format!(
            "HTTP/1.0 404 Not Found\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        ConnState::Sending {
            file_fd: -1,
            offset: 0,
            remaining: 0,
            head: head.into_bytes(),
            head_sent: 0,
            extents: None,
        }
    });
    component_mut::<Httpd>(this).conns.insert(fd, state);
    Ok(1)
}

fn pump_response(
    sys: &mut System,
    this: &mut dyn Component,
    lwip: LwipProxy,
    fd: i64,
    io_buf: VAddr,
) -> Result<i64> {
    let port = {
        let st = component_mut::<Httpd>(this);
        st.port.clone().expect("initialised")
    };
    let batching = sys.batching_enabled();
    let mut progressed = 0i64;
    loop {
        let (head_chunk, file_fd, offset, remaining, extents) = {
            let st = component_mut::<Httpd>(this);
            let Some(ConnState::Sending {
                file_fd,
                offset,
                remaining,
                head,
                head_sent,
                extents,
            }) = st.conns.get_mut(&fd)
            else {
                return Ok(progressed);
            };
            (
                head[*head_sent..].to_vec(),
                *file_fd,
                *offset,
                *remaining,
                extents.clone(),
            )
        };
        if !head_chunk.is_empty() {
            if batching && remaining > 0 && file_fd >= 0 && extents.is_none() {
                // Batched header+body: stage both in the io buffer and
                // hand them to the socket under one cross-call dispatch.
                let hn = head_chunk.len().min(IO_BUF / 2);
                sys.write(io_buf, &head_chunk[..hn])?;
                let body_buf = io_buf + hn;
                let body_cap = (IO_BUF - hn).min(remaining as usize);
                let n = port
                    .proxy()
                    .pread(sys, file_fd, body_buf, body_cap, offset)?
                    .max(0) as usize;
                let rs = lwip.send_batch(sys, fd, &[(io_buf, hn), (body_buf, n)])?;
                let h_acc = rs.first().copied().unwrap_or(0).max(0) as usize;
                // A short header accept exhausts the send space, so the
                // body element contributed nothing.
                let b_acc = if h_acc == hn {
                    rs.get(1).copied().unwrap_or(0).max(0) as usize
                } else {
                    0
                };
                let st = component_mut::<Httpd>(this);
                if let Some(ConnState::Sending {
                    head_sent,
                    offset,
                    remaining,
                    ..
                }) = st.conns.get_mut(&fd)
                {
                    *head_sent += h_acc;
                    *offset += b_acc as u64;
                    *remaining -= b_acc as u64;
                }
                progressed += 1;
                if h_acc < hn || b_acc < n {
                    return Ok(progressed); // flow control: resume next poll
                }
                continue;
            }
            // push header bytes through the io buffer
            let n = head_chunk.len().min(IO_BUF);
            sys.write(io_buf, &head_chunk[..n])?;
            let sent = lwip.send(sys, fd, io_buf, n)?;
            if sent == Errno::Ewouldblock.neg() {
                return Ok(progressed);
            }
            if sent < 0 {
                return Ok(progressed);
            }
            let st = component_mut::<Httpd>(this);
            if let Some(ConnState::Sending { head_sent, .. }) = st.conns.get_mut(&fd) {
                *head_sent += sent as usize;
            }
            progressed += 1;
            continue;
        }
        if remaining == 0 {
            // finished: FIN, access log, drain
            if extents.is_some() {
                port.sendfile_unmap(sys, file_fd)?;
            }
            let (time, plat, log_buf, served) = {
                let st = component_mut::<Httpd>(this);
                st.conns.insert(fd, ConnState::Draining);
                st.requests_served += 1;
                (st.time, st.plat, st.log_buf, st.requests_served)
            };
            if let (Some(time), Some(plat)) = (time, plat) {
                let now = time.now_ns(sys)?;
                let line = format!("[{now}] request {served} on conn {fd} completed\n");
                sys.write(log_buf, line.as_bytes())?;
                plat.console_out(sys, log_buf, line.len())?;
            }
            lwip.close(sys, fd)?;
            return Ok(progressed + 1);
        }
        if let Some(ext) = &extents {
            // Zero-copy body: send straight from the file's own pages.
            let budget = remaining.min(SND_BUF as u64) as usize;
            let mut chunks: Vec<(VAddr, usize)> = Vec::new();
            let (mut pos, mut left) = (offset as usize, budget);
            while left > 0 {
                let (pi, po) = (pos / PAGE_SIZE, pos % PAGE_SIZE);
                let c = (PAGE_SIZE - po).min(left);
                chunks.push((ext[pi] + po, c));
                pos += c;
                left -= c;
            }
            let mut pushed = 0usize;
            if batching {
                for (r, &(_, c)) in lwip.send_batch(sys, fd, &chunks)?.iter().zip(&chunks) {
                    if *r <= 0 {
                        break;
                    }
                    pushed += *r as usize;
                    if (*r as usize) < c {
                        break;
                    }
                }
            } else {
                for &(addr, c) in &chunks {
                    let sent = lwip.send(sys, fd, addr, c)?;
                    if sent <= 0 {
                        break;
                    }
                    pushed += sent as usize;
                    if (sent as usize) < c {
                        break;
                    }
                }
            }
            let st = component_mut::<Httpd>(this);
            if let Some(ConnState::Sending {
                offset, remaining, ..
            }) = st.conns.get_mut(&fd)
            {
                *offset += pushed as u64;
                *remaining -= pushed as u64;
            }
            if pushed == 0 {
                return Ok(progressed); // send buffer full
            }
            progressed += 1;
            if pushed < budget {
                return Ok(progressed); // flow control: resume next poll
            }
            continue;
        }
        // staged loop: VFS pread into the buffer, socket send out
        let chunk = remaining.min(IO_BUF as u64) as usize;
        let n = port.proxy().pread(sys, file_fd, io_buf, chunk, offset)?;
        if n <= 0 {
            // truncated file: bail out
            let st = component_mut::<Httpd>(this);
            st.conns.insert(fd, ConnState::Draining);
            lwip.close(sys, fd)?;
            return Ok(progressed);
        }
        let mut pushed = 0usize;
        while pushed < n as usize {
            let sent = lwip.send(sys, fd, io_buf + pushed, n as usize - pushed)?;
            if sent <= 0 {
                break; // send buffer full: register partial progress
            }
            pushed += sent as usize;
        }
        let st = component_mut::<Httpd>(this);
        if let Some(ConnState::Sending {
            offset, remaining, ..
        }) = st.conns.get_mut(&fd)
        {
            *offset += pushed as u64;
            *remaining -= pushed as u64;
        }
        progressed += 1;
        if pushed < n as usize {
            return Ok(progressed); // flow control: resume next poll
        }
    }
}

fn parse_get_path(request: &str) -> Option<String> {
    let line = request.lines().next()?;
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    if !path.starts_with('/') {
        return None;
    }
    Some(path.to_string())
}

/// Typed proxy for the server's entry points.
#[derive(Clone, Copy, Debug)]
pub struct HttpdProxy {
    cid: CubicleId,
    init: EntryId,
    poll: EntryId,
}

impl HttpdProxy {
    /// Resolves the proxy from the loaded component.
    ///
    /// # Errors
    ///
    /// [`cubicle_core::CubicleError::NoSuchEntry`] when the image does
    /// not export the expected symbols.
    pub fn resolve(loaded: &LoadedComponent) -> Result<HttpdProxy> {
        Ok(HttpdProxy {
            cid: loaded.cid,
            init: loaded.entry("nginx_init")?,
            poll: loaded.entry("nginx_poll")?,
        })
    }

    /// The `NGINX` cubicle's ID.
    pub fn cid(&self) -> CubicleId {
        self.cid
    }

    /// `nginx_init(port)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn init(&self, sys: &mut System, port: u16) -> Result<i64> {
        Ok(sys
            .cross_call(self.init, &[Value::I64(i64::from(port))])?
            .as_i64())
    }

    /// `nginx_poll()` — one event-loop iteration.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn poll(&self, sys: &mut System) -> Result<i64> {
        Ok(sys.cross_call(self.poll, &[])?.as_i64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_path_parsing() {
        assert_eq!(
            parse_get_path("GET /index.html HTTP/1.0\r\n\r\n"),
            Some("/index.html".into())
        );
        assert_eq!(parse_get_path("POST /x HTTP/1.0\r\n\r\n"), None);
        assert_eq!(parse_get_path("GET noslash HTTP/1.0\r\n\r\n"), None);
        assert_eq!(parse_get_path(""), None);
    }
}

//! Deployment boot and a siege-like load driver (paper §6.3).

use crate::server::{image as nginx_image, Httpd, HttpdProxy};
use cubicle_core::{CubicleError, CubicleId, IsolationMode, Result, System};
use cubicle_net::{boot_net, NetStack, SimClient, WireModel};
use cubicle_ramfs::{mount_at, Ramfs};
use cubicle_ukbase::{boot_base, BaseSystem};
use cubicle_vfs::{flags, Vfs, VfsPort, VfsProxy};

/// The fully booted NGINX deployment: the 8-partition component graph of
/// Figure 5 (NGINX, LWIP, NETDEV, VFSCORE, RAMFS, PLAT, ALLOC, TIME +
/// shared LIBC).
pub struct WebDeployment {
    /// The kernel.
    pub sys: System,
    /// Server entry points.
    pub httpd: HttpdProxy,
    /// Network stack handles.
    pub net: NetStack,
    /// Base services.
    pub base: BaseSystem,
    /// `VFSCORE` proxy (for file population).
    pub vfs: VfsProxy,
    /// `VFSCORE`'s cubicle (the RAMFS journal's custodian).
    pub vfs_cid: CubicleId,
    /// The file-system backend cubicle.
    pub ramfs_cid: CubicleId,
    /// Registry slot of the file-system backend (journal wiring).
    pub ramfs_slot: usize,
    /// Registry slot of the server (statistics).
    pub httpd_slot: usize,
    next_client_port: u16,
}

/// HTTP server port used by the deployment.
pub const HTTP_PORT: u16 = 80;

/// Boots the full web deployment in the given isolation mode.
///
/// # Errors
///
/// Loader or initialisation failures.
pub fn boot_web(mode: IsolationMode) -> Result<WebDeployment> {
    let mut sys = System::new(mode);
    let base = boot_base(&mut sys)?;
    let vfs_loaded = sys.load(cubicle_vfs::image(), Box::new(Vfs::default()))?;
    let ramfs_loaded = sys.load(cubicle_ramfs::image(), Box::new(Ramfs::default()))?;
    sys.with_component_mut::<Ramfs, _>(ramfs_loaded.slot, |fs, _| fs.set_alloc(base.alloc))
        .expect("ramfs slot");
    mount_at(&mut sys, vfs_loaded.slot, &ramfs_loaded, "/")?;
    let net = boot_net(&mut sys)?;
    let vfs = VfsProxy::resolve(&vfs_loaded)?;

    let nginx_loaded = sys.load(nginx_image(), Box::new(Httpd::default()))?;
    let httpd = HttpdProxy::resolve(&nginx_loaded)?;
    let ramfs_cid = ramfs_loaded.cid;
    sys.with_component_mut::<Httpd, _>(nginx_loaded.slot, |h, _| {
        h.set_wiring(net.lwip, vfs, &[ramfs_cid]);
        h.set_observability(base.time, base.plat);
    })
    .expect("nginx slot");
    sys.with_component_mut::<cubicle_net::Lwip, _>(net.lwip_slot, |l, _| l.set_alloc(base.alloc))
        .expect("lwip slot");
    let r = httpd.init(&mut sys, HTTP_PORT)?;
    if r != 0 {
        return Err(CubicleError::Component(format!("nginx_init failed: {r}")));
    }
    sys.mark_boot_complete();
    Ok(WebDeployment {
        sys,
        httpd,
        net,
        base,
        vfs,
        vfs_cid: vfs_loaded.cid,
        ramfs_cid,
        ramfs_slot: ramfs_loaded.slot,
        httpd_slot: nginx_loaded.slot,
        next_client_port: 40_000,
    })
}

impl WebDeployment {
    /// Wires a crash-surviving inode journal into `RAMFS`, custodied by
    /// `VFSCORE`: after this, a quarantined-and-microrebooted `RAMFS`
    /// replays its namespace instead of coming back empty, and NGINX
    /// keeps serving pre-crash content without re-population.
    ///
    /// # Errors
    ///
    /// Kernel errors from the allocation, window or format path.
    pub fn enable_ramfs_journal(&mut self, pages: usize) -> Result<cubicle_mpk::VAddr> {
        cubicle_ramfs::install_journal(
            &mut self.sys,
            self.vfs_cid,
            self.ramfs_cid,
            self.ramfs_slot,
            pages,
        )
    }

    /// Creates a file in the document root (runs in the server cubicle,
    /// like an admin populating the image).
    ///
    /// # Errors
    ///
    /// File system errors.
    pub fn put_file(&mut self, path: &str, contents: &[u8]) -> Result<()> {
        let (vfs, ramfs, nginx) = (self.vfs, self.ramfs_cid, self.httpd.cid());
        let path = path.to_string();
        let contents = contents.to_vec();
        self.sys.run_in_cubicle(nginx, move |sys| {
            let port = VfsPort::new(sys, vfs, &[ramfs])?;
            let fd = port.open(sys, &path, flags::O_CREAT | flags::O_RDWR | flags::O_TRUNC)?;
            if fd < 0 {
                return Err(CubicleError::Component(format!("open {path}: {fd}")));
            }
            // write in buffer-sized chunks
            let buf = sys.heap_alloc(32 * 1024, 4096)?;
            let mut off = 0usize;
            while off < contents.len() {
                let chunk = (contents.len() - off).min(32 * 1024);
                sys.write(buf, &contents[off..off + chunk])?;
                let n = port.pwrite(sys, fd, buf, chunk, off as u64)?;
                if n <= 0 {
                    return Err(CubicleError::Component(format!("pwrite: {n}")));
                }
                off += n as usize;
            }
            port.close(sys, fd)?;
            sys.heap_free(buf)?;
            Ok(())
        })
    }

    /// Issues one HTTP GET and returns `(latency_cycles, response)`.
    /// The latency clock covers the whole exchange: connection setup,
    /// request, response streaming, FIN — like the paper's measured
    /// download latency.
    ///
    /// # Errors
    ///
    /// [`CubicleError::Component`] when the exchange stalls.
    pub fn fetch(&mut self, path: &str, wire: WireModel) -> Result<(u64, HttpResponse)> {
        let port = self.next_client_port;
        self.next_client_port += 1;
        let mut client = SimClient::new(self.net.netdev_slot, port, HTTP_PORT, wire);
        client.send(format!("GET {path} HTTP/1.0\r\nHost: cubicle\r\n\r\n").as_bytes());
        let t0 = self.sys.now();
        // client-side per-request work (load generator, connect path)
        self.sys.charge(wire.request_overhead_cycles);
        // Event loop: alternate the external client and the server until
        // the server closes the connection.
        let mut idle_rounds = 0;
        for _ in 0..100_000 {
            client.pump(&mut self.sys);
            if client.fin_seen() {
                break;
            }
            let progressed = self.httpd.poll(&mut self.sys)?;
            if progressed == 0 {
                idle_rounds += 1;
                if idle_rounds > 64 {
                    return Err(CubicleError::Component(format!(
                        "fetch of {path} stalled after {} bytes",
                        client.received.len()
                    )));
                }
            } else {
                idle_rounds = 0;
            }
        }
        if !client.fin_seen() {
            return Err(CubicleError::Component(format!(
                "fetch of {path} never finished"
            )));
        }
        let latency = self.sys.now() - t0;
        let response = HttpResponse::parse(&client.received)
            .ok_or_else(|| CubicleError::Component("malformed HTTP response".into()))?;
        Ok((latency, response))
    }
}

/// A parsed HTTP response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Parses status line + headers + body.
    pub fn parse(raw: &[u8]) -> Option<HttpResponse> {
        let header_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
        let head = std::str::from_utf8(&raw[..header_end]).ok()?;
        let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
        Some(HttpResponse {
            status,
            body: raw[header_end..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parsing() {
        let raw = b"HTTP/1.0 200 OK\r\nContent-Length: 5\r\n\r\nhello";
        let r = HttpResponse::parse(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"hello");
        assert!(HttpResponse::parse(b"garbage").is_none());
    }
}

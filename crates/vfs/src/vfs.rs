//! The `VFSCORE` component: mounts, file descriptors, dispatch.

use crate::ops::{flags, whence, FileStat, FsOps};
use cubicle_core::{
    component_mut, impl_component, Builder, Component, ComponentImage, CubicleId, EntryId, Errno,
    LoadedComponent, Result, System, Value,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::VAddr;

/// Maximum simultaneously open file descriptors.
pub const MAX_FDS: usize = 256;

/// Wire size of one vectored-I/O segment descriptor: `(addr, len, off)`
/// little-endian u64 triples, packed.
pub const IOV_ENTRY_SIZE: usize = 24;

/// Maximum segments per `vfs_pread_vec` / `vfs_pwrite_vec` call
/// (IOV_MAX-style sanity cap).
pub const IOV_MAX: usize = 64;

/// Encodes `(addr, len, off)` segments into the wire format the
/// vectored entry points expect (caller stages this into memory it has
/// windowed for `VFSCORE`).
pub fn encode_iov(segments: &[(VAddr, usize, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(segments.len() * IOV_ENTRY_SIZE);
    for &(addr, len, off) in segments {
        out.extend_from_slice(&addr.raw().to_le_bytes());
        out.extend_from_slice(&(len as u64).to_le_bytes());
        out.extend_from_slice(&off.to_le_bytes());
    }
    out
}

#[derive(Clone, Copy, Debug)]
struct OpenFile {
    mount: usize,
    ino: i64,
    offset: u64,
    flags: i64,
}

#[derive(Clone, Debug)]
struct Mount {
    prefix: String,
    ops: FsOps,
}

/// State of the `VFSCORE` component.
#[derive(Debug, Default)]
pub struct Vfs {
    mounts: Vec<Mount>,
    fds: Vec<Option<OpenFile>>,
    /// Open calls served (statistics).
    pub opens: u64,
}

impl_component!(Vfs, restart = reboot_reset);

impl Vfs {
    /// Microreboot hook: open file descriptors referenced state in the
    /// reclaimed heap, so they are all closed. The mount table survives —
    /// it holds backend entry IDs, which are stable across reboots.
    fn reboot_reset(&mut self) {
        self.fds.clear();
    }
    /// Registers a backend at `prefix` (longest-prefix match at lookup;
    /// `"/"` is the usual root mount). Called at boot by trusted wiring,
    /// mirroring Unikraft's init-time callback-table fill-in.
    pub fn mount(&mut self, prefix: impl Into<String>, ops: FsOps) {
        let mut prefix = prefix.into();
        if !prefix.ends_with('/') {
            prefix.push('/');
        }
        self.mounts.push(Mount { prefix, ops });
        // longest prefix first
        self.mounts
            .sort_by_key(|m| std::cmp::Reverse(m.prefix.len()));
    }

    fn resolve(&self, path: &str) -> Option<(usize, usize)> {
        // returns (mount index, byte offset of the relative path)
        for (i, m) in self.mounts.iter().enumerate() {
            let bare = &m.prefix[..m.prefix.len() - 1]; // without trailing '/'
            if path.starts_with(&m.prefix) {
                return Some((i, m.prefix.len()));
            }
            if path == bare || (bare.is_empty() && path.starts_with('/')) {
                return Some((i, bare.len()));
            }
        }
        None
    }

    fn file(&self, fd: i64) -> Option<&OpenFile> {
        self.fds.get(usize::try_from(fd).ok()?)?.as_ref()
    }

    fn file_mut(&mut self, fd: i64) -> Option<&mut OpenFile> {
        self.fds.get_mut(usize::try_from(fd).ok()?)?.as_mut()
    }

    fn install_fd(&mut self, file: OpenFile) -> Option<i64> {
        if let Some(i) = self.fds.iter().position(Option::is_none) {
            self.fds[i] = Some(file);
            return Some(i as i64);
        }
        if self.fds.len() < MAX_FDS {
            self.fds.push(Some(file));
            return Some(self.fds.len() as i64 - 1);
        }
        None
    }
}

/// Builds the loadable `VFSCORE` image.
pub fn image() -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new("VFSCORE", CodeImage::plain(24 * 1024))
        .heap_pages(8)
        .export(
            b.export("long vfs_open(const char *path, size_t len, int flags)")
                .unwrap(),
            e_open,
        )
        .export(b.export("long vfs_close(int fd)").unwrap(), e_close)
        .export(
            b.export("long vfs_read(int fd, void *buf, size_t n)")
                .unwrap(),
            e_read,
        )
        .export(
            b.export("long vfs_write(int fd, const void *buf, size_t n)")
                .unwrap(),
            e_write,
        )
        .export(
            b.export("long vfs_pread(int fd, void *buf, size_t n, uint64_t off)")
                .unwrap(),
            e_pread,
        )
        .export(
            b.export("long vfs_pwrite(int fd, const void *buf, size_t n, uint64_t off)")
                .unwrap(),
            e_pwrite,
        )
        .export(
            b.export("long vfs_pread_vec(int fd, const void *iov, size_t len)")
                .unwrap(),
            e_pread_vec,
        )
        .export(
            b.export("long vfs_pwrite_vec(int fd, const void *iov, size_t len)")
                .unwrap(),
            e_pwrite_vec,
        )
        .export(
            b.export("long vfs_lseek(int fd, long off, int whence)")
                .unwrap(),
            e_lseek,
        )
        .export(b.export("long vfs_fsync(int fd)").unwrap(), e_fsync)
        .export(
            b.export("long vfs_unlink(const char *path, size_t len)")
                .unwrap(),
            e_unlink,
        )
        .export(
            b.export("long vfs_mkdir(const char *path, size_t len)")
                .unwrap(),
            e_mkdir,
        )
        .export(
            b.export("long vfs_stat(const char *path, size_t len, void *statbuf)")
                .unwrap(),
            e_stat,
        )
        .export(
            b.export("long vfs_fstat(int fd, void *statbuf)").unwrap(),
            e_fstat,
        )
        .export(
            b.export("long vfs_ftruncate(int fd, uint64_t len)")
                .unwrap(),
            e_ftruncate,
        )
        .export(
            b.export("long vfs_readdir(int fd, void *buf, size_t n, long index)")
                .unwrap(),
            e_readdir,
        )
        .export(
            b.export("long vfs_sendfile_map(int fd, long peer, void *out, size_t n)")
                .unwrap(),
            e_sendfile_map,
        )
        .export(
            b.export("long vfs_sendfile_unmap(int fd)").unwrap(),
            e_sendfile_unmap,
        )
}

/// Cycles of VFS-internal work per operation (path walk, fd table).
const VFS_OP_COST: u64 = 120;

fn read_path(sys: &mut System, args: &[Value]) -> Result<std::result::Result<String, i64>> {
    let (addr, len) = args[0].as_buf();
    if len > 4096 {
        return Ok(Err(Errno::Einval.neg()));
    }
    let bytes = match sys.read_vec(addr, len) {
        Ok(b) => b,
        Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
            return Ok(Err(Errno::Eacces.neg()))
        }
        Err(e) => return Err(e),
    };
    match String::from_utf8(bytes) {
        Ok(s) => Ok(Ok(s)),
        Err(_) => Ok(Err(Errno::Einval.neg())),
    }
}

fn e_open(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(VFS_OP_COST);
    let path = match read_path(sys, args)? {
        Ok(p) => p,
        Err(e) => return Ok(Value::I64(e)),
    };
    let open_flags = args[1].as_i64();
    let (addr, _len) = args[0].as_buf();
    let vfs = component_mut::<Vfs>(this);
    vfs.opens += 1;
    let Some((mount, rel_off)) = vfs.resolve(&path) else {
        return Ok(Value::I64(Errno::Enoent.neg()));
    };
    let ops = vfs.mounts[mount].ops;
    let rel = Value::buf_in(addr + rel_off, path.len() - rel_off);

    let mut ino = sys.cross_call(ops.lookup, &[rel])?.as_i64();
    if ino == Errno::Enoent.neg() && open_flags & flags::O_CREAT != 0 {
        ino = sys.cross_call(ops.create, &[rel, Value::I64(0)])?.as_i64();
    }
    if ino < 0 {
        return Ok(Value::I64(ino));
    }
    if open_flags & flags::O_TRUNC != 0 {
        let r = sys
            .cross_call(ops.truncate, &[Value::I64(ino), Value::U64(0)])?
            .as_i64();
        if r < 0 {
            return Ok(Value::I64(r));
        }
    }
    let vfs = component_mut::<Vfs>(this);
    match vfs.install_fd(OpenFile {
        mount,
        ino,
        offset: 0,
        flags: open_flags,
    }) {
        Some(fd) => Ok(Value::I64(fd)),
        None => Ok(Value::I64(Errno::Emfile.neg())),
    }
}

fn e_close(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(VFS_OP_COST / 2);
    let fd = args[0].as_i64();
    let vfs = component_mut::<Vfs>(this);
    match usize::try_from(fd).ok().and_then(|i| vfs.fds.get_mut(i)) {
        Some(slot @ Some(_)) => {
            *slot = None;
            Ok(Value::I64(0))
        }
        _ => Ok(Value::I64(Errno::Ebadf.neg())),
    }
}

fn rw_common(
    sys: &mut System,
    this: &mut dyn Component,
    args: &[Value],
    write: bool,
    positioned: bool,
) -> Result<Value> {
    sys.charge(VFS_OP_COST);
    let fd = args[0].as_i64();
    let (buf, len) = args[1].as_buf();
    let vfs = component_mut::<Vfs>(this);
    let Some(file) = vfs.file(fd).copied() else {
        return Ok(Value::I64(Errno::Ebadf.neg()));
    };
    let ops = vfs.mounts[file.mount].ops;
    let off = if positioned {
        args[2].as_u64()
    } else if write && file.flags & flags::O_APPEND != 0 {
        let size = sys.cross_call(ops.size, &[Value::I64(file.ino)])?.as_i64();
        if size < 0 {
            return Ok(Value::I64(size));
        }
        size as u64
    } else {
        file.offset
    };
    let entry = if write { ops.write } else { ops.read };
    let n = backend_rw(sys, entry, file.ino, buf, len, off, write)?;
    if n > 0 && !positioned {
        if let Some(f) = component_mut::<Vfs>(this).file_mut(fd) {
            f.offset = off + n as u64;
        }
    }
    Ok(Value::I64(n))
}

/// One segment's transfer to/from the backend. Message-based baselines
/// (Genode-style file-system sessions) move bulk data to the backend
/// server through a packet stream: each packet is its own kernel round
/// trip. CubicleOS/Unikraft pass the whole buffer in one zero-copy call.
fn backend_rw(
    sys: &mut System,
    entry: EntryId,
    ino: i64,
    buf: VAddr,
    len: usize,
    off: u64,
    write: bool,
) -> Result<i64> {
    let packet = match sys.mode() {
        cubicle_core::IsolationMode::Ipc(m) if m.packet_bytes > 0 => m.packet_bytes,
        _ => usize::MAX,
    };
    let mut total: i64 = 0;
    let mut done = 0usize;
    while done < len {
        let chunk = (len - done).min(packet);
        let bufval = if write {
            Value::buf_in(buf + done, chunk)
        } else {
            Value::buf_out(buf + done, chunk)
        };
        let r = sys
            .cross_call(
                entry,
                &[Value::I64(ino), bufval, Value::U64(off + done as u64)],
            )?
            .as_i64();
        if r < 0 {
            if total == 0 {
                return Ok(r);
            }
            break;
        }
        total += r;
        done += r as usize;
        if r == 0 || (r as usize) < chunk {
            break;
        }
    }
    Ok(total)
}

/// `vfs_pread_vec` / `vfs_pwrite_vec` implementation: the iov buffer
/// carries `len / IOV_ENTRY_SIZE` little-endian `(addr, len, off)` u64
/// triples describing caller-owned segments. With cross-call batching
/// enabled the whole vector is dispatched to the backend under a single
/// trampoline crossing; otherwise each segment takes the legacy
/// one-call-per-segment path, so results are identical either way.
/// Returns total bytes transferred (readv/writev short-count semantics:
/// stop at the first short or failing segment, report the errno only
/// when nothing was transferred).
fn rw_vec(
    sys: &mut System,
    this: &mut dyn Component,
    args: &[Value],
    write: bool,
) -> Result<Value> {
    sys.charge(VFS_OP_COST);
    let fd = args[0].as_i64();
    let (iov_addr, iov_len) = args[1].as_buf();
    if iov_len == 0 || iov_len % IOV_ENTRY_SIZE != 0 || iov_len / IOV_ENTRY_SIZE > IOV_MAX {
        return Ok(Value::I64(Errno::Einval.neg()));
    }
    let raw = match sys.read_vec(iov_addr, iov_len) {
        Ok(b) => b,
        Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
            return Ok(Value::I64(Errno::Eacces.neg()))
        }
        Err(e) => return Err(e),
    };
    let mut iovs = Vec::with_capacity(iov_len / IOV_ENTRY_SIZE);
    for c in raw.chunks_exact(IOV_ENTRY_SIZE) {
        let addr = u64::from_le_bytes(c[0..8].try_into().expect("24-byte chunk"));
        let len = u64::from_le_bytes(c[8..16].try_into().expect("24-byte chunk"));
        let off = u64::from_le_bytes(c[16..24].try_into().expect("24-byte chunk"));
        iovs.push((VAddr::new(addr), len as usize, off));
    }
    let vfs = component_mut::<Vfs>(this);
    let Some(file) = vfs.file(fd).copied() else {
        return Ok(Value::I64(Errno::Ebadf.neg()));
    };
    let ops = vfs.mounts[file.mount].ops;
    let entry = if write { ops.write } else { ops.read };

    if sys.batching_enabled() {
        // One monitor crossing for the whole vector.
        let elems: Vec<[Value; 3]> = iovs
            .iter()
            .map(|&(addr, len, off)| {
                let bufval = if write {
                    Value::buf_in(addr, len)
                } else {
                    Value::buf_out(addr, len)
                };
                [Value::I64(file.ino), bufval, Value::U64(off)]
            })
            .collect();
        let refs: Vec<&[Value]> = elems.iter().map(|e| e.as_slice()).collect();
        let vals = sys.cross_call_batch(entry, &refs)?;
        let mut total: i64 = 0;
        for (v, &(_, len, _)) in vals.iter().zip(&iovs) {
            let r = v.as_i64();
            if r < 0 {
                if total == 0 {
                    return Ok(Value::I64(r));
                }
                break;
            }
            total += r;
            if r == 0 || (r as usize) < len {
                break;
            }
        }
        return Ok(Value::I64(total));
    }

    // Legacy path: one backend call per segment.
    let mut total: i64 = 0;
    for &(addr, len, off) in &iovs {
        let r = backend_rw(sys, entry, file.ino, addr, len, off, write)?;
        if r < 0 {
            if total == 0 {
                return Ok(Value::I64(r));
            }
            break;
        }
        total += r;
        if r == 0 || (r as usize) < len {
            break;
        }
    }
    Ok(Value::I64(total))
}

fn e_pread_vec(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    rw_vec(sys, this, args, false)
}

fn e_pwrite_vec(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    rw_vec(sys, this, args, true)
}

fn e_read(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    rw_common(sys, this, args, false, false)
}

fn e_write(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    rw_common(sys, this, args, true, false)
}

fn e_pread(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    rw_common(sys, this, args, false, true)
}

fn e_pwrite(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    rw_common(sys, this, args, true, true)
}

fn e_lseek(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(VFS_OP_COST / 2);
    let fd = args[0].as_i64();
    let off = args[1].as_i64();
    let wh = args[2].as_i64();
    let vfs = component_mut::<Vfs>(this);
    let Some(file) = vfs.file(fd).copied() else {
        return Ok(Value::I64(Errno::Ebadf.neg()));
    };
    let base: i64 = match wh {
        whence::SEEK_SET => 0,
        whence::SEEK_CUR => file.offset as i64,
        whence::SEEK_END => {
            let ops = vfs.mounts[file.mount].ops;
            let size = sys.cross_call(ops.size, &[Value::I64(file.ino)])?.as_i64();
            if size < 0 {
                return Ok(Value::I64(size));
            }
            size
        }
        _ => return Ok(Value::I64(Errno::Einval.neg())),
    };
    let new = base + off;
    if new < 0 {
        return Ok(Value::I64(Errno::Einval.neg()));
    }
    if let Some(f) = component_mut::<Vfs>(this).file_mut(fd) {
        f.offset = new as u64;
    }
    Ok(Value::I64(new))
}

fn e_fsync(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(VFS_OP_COST / 2);
    let fd = args[0].as_i64();
    let vfs = component_mut::<Vfs>(this);
    let Some(file) = vfs.file(fd).copied() else {
        return Ok(Value::I64(Errno::Ebadf.neg()));
    };
    let ops = vfs.mounts[file.mount].ops;
    sys.cross_call(ops.sync, &[Value::I64(file.ino)])
}

fn path_op(
    sys: &mut System,
    this: &mut dyn Component,
    args: &[Value],
    pick: fn(&FsOps) -> EntryId,
    extra: Option<Value>,
) -> Result<Value> {
    sys.charge(VFS_OP_COST);
    let path = match read_path(sys, args)? {
        Ok(p) => p,
        Err(e) => return Ok(Value::I64(e)),
    };
    let (addr, _len) = args[0].as_buf();
    let vfs = component_mut::<Vfs>(this);
    let Some((mount, rel_off)) = vfs.resolve(&path) else {
        return Ok(Value::I64(Errno::Enoent.neg()));
    };
    let ops = vfs.mounts[mount].ops;
    let rel = Value::buf_in(addr + rel_off, path.len() - rel_off);
    let mut call_args = vec![rel];
    if let Some(v) = extra {
        call_args.push(v);
    }
    sys.cross_call(pick(&ops), &call_args)
}

fn e_unlink(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    path_op(sys, this, args, |o| o.remove, None)
}

fn e_mkdir(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    path_op(sys, this, args, |o| o.create, Some(Value::I64(1)))
}

fn stat_of(sys: &mut System, ops: &FsOps, ino: i64) -> Result<std::result::Result<FileStat, i64>> {
    let is_dir = sys.cross_call(ops.is_dir, &[Value::I64(ino)])?.as_i64();
    if is_dir < 0 {
        return Ok(Err(is_dir));
    }
    let size = if is_dir == 1 {
        0
    } else {
        let s = sys.cross_call(ops.size, &[Value::I64(ino)])?.as_i64();
        if s < 0 {
            return Ok(Err(s));
        }
        s as u64
    };
    Ok(Ok(FileStat {
        size,
        is_dir: is_dir == 1,
    }))
}

fn write_stat(sys: &mut System, out: VAddr, stat: FileStat) -> Result<i64> {
    match sys.write(out, &stat.encode()) {
        Ok(()) => Ok(0),
        Err(cubicle_core::CubicleError::WindowDenied { .. }) => Ok(Errno::Eacces.neg()),
        Err(e) => Err(e),
    }
}

fn e_stat(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(VFS_OP_COST);
    let path = match read_path(sys, args)? {
        Ok(p) => p,
        Err(e) => return Ok(Value::I64(e)),
    };
    let (addr, _len) = args[0].as_buf();
    let (out, _outlen) = args[1].as_buf();
    let vfs = component_mut::<Vfs>(this);
    let Some((mount, rel_off)) = vfs.resolve(&path) else {
        return Ok(Value::I64(Errno::Enoent.neg()));
    };
    let ops = vfs.mounts[mount].ops;
    let rel = Value::buf_in(addr + rel_off, path.len() - rel_off);
    let ino = sys.cross_call(ops.lookup, &[rel])?.as_i64();
    if ino < 0 {
        return Ok(Value::I64(ino));
    }
    match stat_of(sys, &ops, ino)? {
        Ok(stat) => Ok(Value::I64(write_stat(sys, out, stat)?)),
        Err(e) => Ok(Value::I64(e)),
    }
}

fn e_fstat(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(VFS_OP_COST / 2);
    let fd = args[0].as_i64();
    let (out, _outlen) = args[1].as_buf();
    let vfs = component_mut::<Vfs>(this);
    let Some(file) = vfs.file(fd).copied() else {
        return Ok(Value::I64(Errno::Ebadf.neg()));
    };
    let ops = vfs.mounts[file.mount].ops;
    match stat_of(sys, &ops, file.ino)? {
        Ok(stat) => Ok(Value::I64(write_stat(sys, out, stat)?)),
        Err(e) => Ok(Value::I64(e)),
    }
}

fn e_ftruncate(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(VFS_OP_COST / 2);
    let fd = args[0].as_i64();
    let len = args[1].as_u64();
    let vfs = component_mut::<Vfs>(this);
    let Some(file) = vfs.file(fd).copied() else {
        return Ok(Value::I64(Errno::Ebadf.neg()));
    };
    let ops = vfs.mounts[file.mount].ops;
    sys.cross_call(ops.truncate, &[Value::I64(file.ino), Value::U64(len)])
}

fn e_readdir(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(VFS_OP_COST / 2);
    let fd = args[0].as_i64();
    let (buf, len) = args[1].as_buf();
    let index = args[2].as_i64();
    let vfs = component_mut::<Vfs>(this);
    let Some(file) = vfs.file(fd).copied() else {
        return Ok(Value::I64(Errno::Ebadf.neg()));
    };
    let ops = vfs.mounts[file.mount].ops;
    sys.cross_call(
        ops.readdir,
        &[
            Value::I64(file.ino),
            Value::buf_out(buf, len),
            Value::I64(index),
        ],
    )
}

/// `vfs_sendfile_map(fd, peer, out, n)`: resolves the fd to its backing
/// inode and asks the backend to window the file's data pages to `peer`,
/// writing the extent addresses into `out` (sendfile fast path — the
/// consumer then reads response bytes straight from the file's pages).
fn e_sendfile_map(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(VFS_OP_COST / 2);
    let fd = args[0].as_i64();
    let peer = args[1].as_i64();
    let (out, n) = args[2].as_buf();
    let vfs = component_mut::<Vfs>(this);
    let Some(file) = vfs.file(fd).copied() else {
        return Ok(Value::I64(Errno::Ebadf.neg()));
    };
    let ops = vfs.mounts[file.mount].ops;
    sys.cross_call(
        ops.map_extents,
        &[
            Value::I64(file.ino),
            Value::I64(peer),
            Value::buf_out(out, n),
        ],
    )
}

/// `vfs_sendfile_unmap(fd)`: releases one `vfs_sendfile_map` reference.
fn e_sendfile_unmap(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(VFS_OP_COST / 2);
    let fd = args[0].as_i64();
    let vfs = component_mut::<Vfs>(this);
    let Some(file) = vfs.file(fd).copied() else {
        return Ok(Value::I64(Errno::Ebadf.neg()));
    };
    let ops = vfs.mounts[file.mount].ops;
    sys.cross_call(ops.unmap_extents, &[Value::I64(file.ino)])
}

/// Typed application-side proxy for `VFSCORE`.
///
/// Buffer and path pointers refer to *caller-owned* simulated memory; the
/// caller is responsible for opening windows for `VFSCORE` (and, for data
/// paths, the backend) ahead of the call — the nested-call discipline of
/// paper §5.6.
#[derive(Clone, Copy, Debug)]
pub struct VfsProxy {
    cid: CubicleId,
    open: EntryId,
    close: EntryId,
    read: EntryId,
    write: EntryId,
    pread: EntryId,
    pwrite: EntryId,
    pread_vec: EntryId,
    pwrite_vec: EntryId,
    lseek: EntryId,
    fsync: EntryId,
    unlink: EntryId,
    mkdir: EntryId,
    stat: EntryId,
    fstat: EntryId,
    ftruncate: EntryId,
    readdir: EntryId,
    sendfile_map: EntryId,
    sendfile_unmap: EntryId,
}

macro_rules! proxy_call {
    ($self:ident, $sys:ident, $entry:ident, $($arg:expr),*) => {
        Ok($sys.cross_call($self.$entry, &[$($arg),*])?.as_i64())
    };
}

impl VfsProxy {
    /// Resolves the proxy from the loaded component.
    ///
    /// # Errors
    ///
    /// [`cubicle_core::CubicleError::NoSuchEntry`] when the image does
    /// not export the expected symbols.
    pub fn resolve(loaded: &LoadedComponent) -> Result<VfsProxy> {
        Ok(VfsProxy {
            cid: loaded.cid,
            open: loaded.entry("vfs_open")?,
            close: loaded.entry("vfs_close")?,
            read: loaded.entry("vfs_read")?,
            write: loaded.entry("vfs_write")?,
            pread: loaded.entry("vfs_pread")?,
            pwrite: loaded.entry("vfs_pwrite")?,
            pread_vec: loaded.entry("vfs_pread_vec")?,
            pwrite_vec: loaded.entry("vfs_pwrite_vec")?,
            lseek: loaded.entry("vfs_lseek")?,
            fsync: loaded.entry("vfs_fsync")?,
            unlink: loaded.entry("vfs_unlink")?,
            mkdir: loaded.entry("vfs_mkdir")?,
            stat: loaded.entry("vfs_stat")?,
            fstat: loaded.entry("vfs_fstat")?,
            ftruncate: loaded.entry("vfs_ftruncate")?,
            readdir: loaded.entry("vfs_readdir")?,
            sendfile_map: loaded.entry("vfs_sendfile_map")?,
            sendfile_unmap: loaded.entry("vfs_sendfile_unmap")?,
        })
    }

    /// The `VFSCORE` cubicle's ID.
    pub fn cid(&self) -> CubicleId {
        self.cid
    }

    /// `open(path, flags)` → fd or `-errno`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn open(&self, sys: &mut System, path: VAddr, len: usize, oflags: i64) -> Result<i64> {
        proxy_call!(
            self,
            sys,
            open,
            Value::buf_in(path, len),
            Value::I64(oflags)
        )
    }

    /// `close(fd)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn close(&self, sys: &mut System, fd: i64) -> Result<i64> {
        proxy_call!(self, sys, close, Value::I64(fd))
    }

    /// `read(fd, buf, n)` → bytes read or `-errno`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn read(&self, sys: &mut System, fd: i64, buf: VAddr, n: usize) -> Result<i64> {
        proxy_call!(self, sys, read, Value::I64(fd), Value::buf_out(buf, n))
    }

    /// `write(fd, buf, n)` → bytes written or `-errno`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn write(&self, sys: &mut System, fd: i64, buf: VAddr, n: usize) -> Result<i64> {
        proxy_call!(self, sys, write, Value::I64(fd), Value::buf_in(buf, n))
    }

    /// `pread(fd, buf, n, off)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn pread(&self, sys: &mut System, fd: i64, buf: VAddr, n: usize, off: u64) -> Result<i64> {
        proxy_call!(
            self,
            sys,
            pread,
            Value::I64(fd),
            Value::buf_out(buf, n),
            Value::U64(off)
        )
    }

    /// `pwrite(fd, buf, n, off)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn pwrite(&self, sys: &mut System, fd: i64, buf: VAddr, n: usize, off: u64) -> Result<i64> {
        proxy_call!(
            self,
            sys,
            pwrite,
            Value::I64(fd),
            Value::buf_in(buf, n),
            Value::U64(off)
        )
    }

    /// `pread_vec(fd, iov, iov_len)` — `iov` points to caller-owned
    /// memory holding [`IOV_ENTRY_SIZE`]-byte `(addr, len, off)` triples
    /// ([`encode_iov`] builds it). Returns total bytes read, with
    /// readv-style short-count semantics.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn pread_vec(&self, sys: &mut System, fd: i64, iov: VAddr, iov_len: usize) -> Result<i64> {
        proxy_call!(
            self,
            sys,
            pread_vec,
            Value::I64(fd),
            Value::buf_in(iov, iov_len)
        )
    }

    /// `pwrite_vec(fd, iov, iov_len)` — writev-style positioned scatter
    /// write; see [`VfsProxy::pread_vec`].
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn pwrite_vec(&self, sys: &mut System, fd: i64, iov: VAddr, iov_len: usize) -> Result<i64> {
        proxy_call!(
            self,
            sys,
            pwrite_vec,
            Value::I64(fd),
            Value::buf_in(iov, iov_len)
        )
    }

    /// `lseek(fd, off, whence)` → new offset or `-errno`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn lseek(&self, sys: &mut System, fd: i64, off: i64, wh: i64) -> Result<i64> {
        proxy_call!(
            self,
            sys,
            lseek,
            Value::I64(fd),
            Value::I64(off),
            Value::I64(wh)
        )
    }

    /// `fsync(fd)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn fsync(&self, sys: &mut System, fd: i64) -> Result<i64> {
        proxy_call!(self, sys, fsync, Value::I64(fd))
    }

    /// `unlink(path)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn unlink(&self, sys: &mut System, path: VAddr, len: usize) -> Result<i64> {
        proxy_call!(self, sys, unlink, Value::buf_in(path, len))
    }

    /// `mkdir(path)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn mkdir(&self, sys: &mut System, path: VAddr, len: usize) -> Result<i64> {
        proxy_call!(self, sys, mkdir, Value::buf_in(path, len))
    }

    /// `stat(path, statbuf)` — `statbuf` receives [`FileStat::encode`].
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn stat(&self, sys: &mut System, path: VAddr, len: usize, out: VAddr) -> Result<i64> {
        proxy_call!(
            self,
            sys,
            stat,
            Value::buf_in(path, len),
            Value::buf_out(out, FileStat::WIRE_SIZE)
        )
    }

    /// `fstat(fd, statbuf)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn fstat(&self, sys: &mut System, fd: i64, out: VAddr) -> Result<i64> {
        proxy_call!(
            self,
            sys,
            fstat,
            Value::I64(fd),
            Value::buf_out(out, FileStat::WIRE_SIZE)
        )
    }

    /// `ftruncate(fd, len)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn ftruncate(&self, sys: &mut System, fd: i64, len: u64) -> Result<i64> {
        proxy_call!(self, sys, ftruncate, Value::I64(fd), Value::U64(len))
    }

    /// `sendfile_map(fd, peer, out, n)` → extent count or `-errno`. On
    /// success `out` holds that many little-endian `u64` page addresses
    /// and `peer` holds a window over every one of them until the
    /// matching [`VfsProxy::sendfile_unmap`].
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn sendfile_map(
        &self,
        sys: &mut System,
        fd: i64,
        peer: CubicleId,
        out: VAddr,
        n: usize,
    ) -> Result<i64> {
        proxy_call!(
            self,
            sys,
            sendfile_map,
            Value::I64(fd),
            Value::I64(i64::from(peer.0)),
            Value::buf_out(out, n)
        )
    }

    /// `sendfile_unmap(fd)`: drops one [`VfsProxy::sendfile_map`]
    /// reference.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn sendfile_unmap(&self, sys: &mut System, fd: i64) -> Result<i64> {
        proxy_call!(self, sys, sendfile_unmap, Value::I64(fd))
    }

    /// `readdir(fd, buf, n, index)` → name length, or `-ENOENT` past the
    /// last entry.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn readdir(
        &self,
        sys: &mut System,
        fd: i64,
        buf: VAddr,
        n: usize,
        index: i64,
    ) -> Result<i64> {
        proxy_call!(
            self,
            sys,
            readdir,
            Value::I64(fd),
            Value::buf_out(buf, n),
            Value::I64(index)
        )
    }
}

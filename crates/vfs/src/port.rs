//! Application-side CubicleOS port of the POSIX file API.
//!
//! Porting an application to CubicleOS means adding window management
//! around its OS calls — "developers simply need to manage CubicleOS'
//! windows to grant memory accesses across cubicles" (paper §1; the
//! SQLite port is 620 SLOC, NGINX 390). [`VfsPort`] packages that
//! discipline: every call that passes a buffer publishes it in a window,
//! opens the window for `VFSCORE` *and* the file-system backend (the
//! owner must open for all cubicles of a nested call ahead of time,
//! §5.6), performs the cross-cubicle call, and closes the window again.
//!
//! Path strings travel through a dedicated, long-lived path page with a
//! persistent window — a common optimisation that keeps per-call window
//! traffic for the data path only.

use crate::ops::FileStat;
use crate::vfs::{encode_iov, VfsProxy};
use cubicle_core::{CubicleId, Result, System, WindowId};
use cubicle_mpk::VAddr;

/// Bytes of the extent-address buffer [`VfsPort::sendfile_map`] stages:
/// room for 1024 extents (a 4 MiB file at 4 KiB pages). Larger files get
/// `-EINVAL` from the backend and the caller falls back to staged reads.
pub const SENDFILE_EXTENT_BUF: usize = 8192;

/// A ported application's handle to the file system stack.
#[derive(Clone, Debug)]
pub struct VfsPort {
    proxy: VfsProxy,
    grantees: Vec<CubicleId>,
    path_buf: VAddr,
    path_cap: usize,
}

impl VfsPort {
    /// Creates the port for the *current* cubicle. `backends` lists the
    /// file-system backend cubicles reached through `VFSCORE` (their
    /// windows must be opened by the buffer owner ahead of nested calls).
    ///
    /// Must run in the application cubicle's context (it allocates the
    /// path page from the current cubicle's heap).
    ///
    /// # Errors
    ///
    /// Allocation or window errors from the kernel.
    pub fn new(sys: &mut System, proxy: VfsProxy, backends: &[CubicleId]) -> Result<VfsPort> {
        let mut grantees = vec![proxy.cid()];
        grantees.extend_from_slice(backends);
        let path_cap = 4096;
        let path_buf = sys.heap_alloc(path_cap, 4096)?;
        // Persistent window for the path page.
        let wid = sys.window_init();
        sys.window_add(wid, path_buf, path_cap)?;
        for &cid in &grantees {
            sys.window_open(wid, cid)?;
        }
        Ok(VfsPort {
            proxy,
            grantees,
            path_buf,
            path_cap,
        })
    }

    /// The underlying typed proxy.
    pub fn proxy(&self) -> &VfsProxy {
        &self.proxy
    }

    /// Cubicles granted access to buffers passed through this port.
    pub fn grantees(&self) -> &[CubicleId] {
        &self.grantees
    }

    fn put_path(&self, sys: &mut System, path: &str) -> Result<usize> {
        assert!(
            path.len() <= self.path_cap,
            "path longer than the path page"
        );
        sys.write(self.path_buf, path.as_bytes())?;
        Ok(path.len())
    }

    /// Opens a transient window over `[buf, buf+len)` for all grantees,
    /// runs `f`, then closes it — the paper's Figure 1c pattern.
    ///
    /// # Errors
    ///
    /// Window errors (e.g. the buffer is not owned by the current
    /// cubicle), and whatever `f` returns.
    pub fn with_buffer_window<T>(
        &self,
        sys: &mut System,
        buf: VAddr,
        len: usize,
        f: impl FnOnce(&mut System) -> Result<T>,
    ) -> Result<T> {
        self.with_windows(sys, &[(buf, len)], f)
    }

    /// [`VfsPort::with_buffer_window`] over several discontiguous ranges
    /// under one window descriptor — the shape vectored calls need (the
    /// iov staging page plus every data segment).
    ///
    /// # Errors
    ///
    /// Window errors (e.g. a range is not owned by the current cubicle),
    /// and whatever `f` returns.
    pub fn with_windows<T>(
        &self,
        sys: &mut System,
        ranges: &[(VAddr, usize)],
        f: impl FnOnce(&mut System) -> Result<T>,
    ) -> Result<T> {
        let wid: WindowId = sys.window_init();
        for &(buf, len) in ranges {
            sys.window_add(wid, buf, len)?;
        }
        for &cid in &self.grantees {
            sys.window_open(wid, cid)?;
        }
        let out = f(sys);
        sys.window_destroy(wid)?;
        out
    }

    /// `open(path, flags)` → fd or `-errno`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn open(&self, sys: &mut System, path: &str, flags: i64) -> Result<i64> {
        let len = self.put_path(sys, path)?;
        self.proxy.open(sys, self.path_buf, len, flags)
    }

    /// `close(fd)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn close(&self, sys: &mut System, fd: i64) -> Result<i64> {
        self.proxy.close(sys, fd)
    }

    /// `read(fd, buf, n)` with transient window.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn read(&self, sys: &mut System, fd: i64, buf: VAddr, n: usize) -> Result<i64> {
        self.with_buffer_window(sys, buf, n, |sys| self.proxy.read(sys, fd, buf, n))
    }

    /// `write(fd, buf, n)` with transient window.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn write(&self, sys: &mut System, fd: i64, buf: VAddr, n: usize) -> Result<i64> {
        self.with_buffer_window(sys, buf, n, |sys| self.proxy.write(sys, fd, buf, n))
    }

    /// `pread(fd, buf, n, off)` with transient window.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn pread(&self, sys: &mut System, fd: i64, buf: VAddr, n: usize, off: u64) -> Result<i64> {
        self.with_buffer_window(sys, buf, n, |sys| self.proxy.pread(sys, fd, buf, n, off))
    }

    /// `pwrite(fd, buf, n, off)` with transient window.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn pwrite(&self, sys: &mut System, fd: i64, buf: VAddr, n: usize, off: u64) -> Result<i64> {
        self.with_buffer_window(sys, buf, n, |sys| self.proxy.pwrite(sys, fd, buf, n, off))
    }

    /// `pread_vec(fd, segments)`: one vectored positioned read over
    /// caller-owned `(addr, len, file_off)` segments. The iov descriptor
    /// is staged in a heap page and published together with every data
    /// segment under one window, so with cross-call batching enabled the
    /// whole vector costs a single VFS crossing plus one batched backend
    /// dispatch.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn pread_vec(
        &self,
        sys: &mut System,
        fd: i64,
        segments: &[(VAddr, usize, u64)],
    ) -> Result<i64> {
        self.rw_vec(sys, fd, segments, false)
    }

    /// `pwrite_vec(fd, segments)`: vectored positioned write; see
    /// [`VfsPort::pread_vec`].
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn pwrite_vec(
        &self,
        sys: &mut System,
        fd: i64,
        segments: &[(VAddr, usize, u64)],
    ) -> Result<i64> {
        self.rw_vec(sys, fd, segments, true)
    }

    fn rw_vec(
        &self,
        sys: &mut System,
        fd: i64,
        segments: &[(VAddr, usize, u64)],
        write: bool,
    ) -> Result<i64> {
        let iov = encode_iov(segments);
        let iov_buf = sys.heap_alloc(iov.len().max(1), 8)?;
        sys.write(iov_buf, &iov)?;
        let mut ranges: Vec<(VAddr, usize)> = vec![(iov_buf, iov.len().max(1))];
        ranges.extend(segments.iter().map(|&(a, l, _)| (a, l)));
        let r = self.with_windows(sys, &ranges, |sys| {
            if write {
                self.proxy.pwrite_vec(sys, fd, iov_buf, iov.len())
            } else {
                self.proxy.pread_vec(sys, fd, iov_buf, iov.len())
            }
        })?;
        sys.heap_free(iov_buf)?;
        Ok(r)
    }

    /// `sendfile_map(fd, peer)` → the file's extent page addresses, or
    /// `Err(-errno)`. On success `peer` can read every returned page
    /// until [`VfsPort::sendfile_unmap`] — the zero-copy response path.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn sendfile_map(
        &self,
        sys: &mut System,
        fd: i64,
        peer: CubicleId,
    ) -> Result<std::result::Result<Vec<VAddr>, i64>> {
        let out = sys.heap_alloc(SENDFILE_EXTENT_BUF, 8)?;
        let r = self.with_buffer_window(sys, out, SENDFILE_EXTENT_BUF, |sys| {
            self.proxy
                .sendfile_map(sys, fd, peer, out, SENDFILE_EXTENT_BUF)
        })?;
        let decoded = if r >= 0 {
            let bytes = sys.read_vec(out, r as usize * 8)?;
            Ok(bytes
                .chunks_exact(8)
                .map(|c| VAddr::new(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
                .collect())
        } else {
            Err(r)
        };
        sys.heap_free(out)?;
        Ok(decoded)
    }

    /// `sendfile_unmap(fd)`: releases one [`VfsPort::sendfile_map`]
    /// reference.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn sendfile_unmap(&self, sys: &mut System, fd: i64) -> Result<i64> {
        self.proxy.sendfile_unmap(sys, fd)
    }

    /// `lseek(fd, off, whence)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn lseek(&self, sys: &mut System, fd: i64, off: i64, whence: i64) -> Result<i64> {
        self.proxy.lseek(sys, fd, off, whence)
    }

    /// `fsync(fd)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn fsync(&self, sys: &mut System, fd: i64) -> Result<i64> {
        self.proxy.fsync(sys, fd)
    }

    /// `unlink(path)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn unlink(&self, sys: &mut System, path: &str) -> Result<i64> {
        let len = self.put_path(sys, path)?;
        self.proxy.unlink(sys, self.path_buf, len)
    }

    /// `mkdir(path)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn mkdir(&self, sys: &mut System, path: &str) -> Result<i64> {
        let len = self.put_path(sys, path)?;
        self.proxy.mkdir(sys, self.path_buf, len)
    }

    /// `stat(path)` decoded into [`FileStat`]; `Ok(Err(-errno))` on a
    /// domain error.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn stat(&self, sys: &mut System, path: &str) -> Result<std::result::Result<FileStat, i64>> {
        let len = self.put_path(sys, path)?;
        let out = sys.heap_alloc(FileStat::WIRE_SIZE, 8)?;
        let r = self.with_buffer_window(sys, out, FileStat::WIRE_SIZE, |sys| {
            self.proxy.stat(sys, self.path_buf, len, out)
        })?;
        let decoded = if r == 0 {
            let bytes = sys.read_vec(out, FileStat::WIRE_SIZE)?;
            Ok(FileStat::decode(&bytes.try_into().expect("16 bytes")))
        } else {
            Err(r)
        };
        sys.heap_free(out)?;
        Ok(decoded)
    }

    /// `fstat(fd)` decoded into [`FileStat`].
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn fstat(&self, sys: &mut System, fd: i64) -> Result<std::result::Result<FileStat, i64>> {
        let out = sys.heap_alloc(FileStat::WIRE_SIZE, 8)?;
        let r = self.with_buffer_window(sys, out, FileStat::WIRE_SIZE, |sys| {
            self.proxy.fstat(sys, fd, out)
        })?;
        let decoded = if r == 0 {
            let bytes = sys.read_vec(out, FileStat::WIRE_SIZE)?;
            Ok(FileStat::decode(&bytes.try_into().expect("16 bytes")))
        } else {
            Err(r)
        };
        sys.heap_free(out)?;
        Ok(decoded)
    }

    /// `ftruncate(fd, len)`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn ftruncate(&self, sys: &mut System, fd: i64, len: u64) -> Result<i64> {
        self.proxy.ftruncate(sys, fd, len)
    }

    /// `readdir(fd, index)` → entry name, or `Err(-errno)` past the end.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn readdir(
        &self,
        sys: &mut System,
        fd: i64,
        index: i64,
    ) -> Result<std::result::Result<String, i64>> {
        let cap = 256;
        let buf = sys.heap_alloc(cap, 8)?;
        let r = self.with_buffer_window(sys, buf, cap, |sys| {
            self.proxy.readdir(sys, fd, buf, cap, index)
        })?;
        let out = if r >= 0 {
            let bytes = sys.read_vec(buf, r as usize)?;
            Ok(String::from_utf8_lossy(&bytes).into_owned())
        } else {
            Err(r)
        };
        sys.heap_free(buf)?;
        Ok(out)
    }

    /// Convenience: writes an entire byte slice through a staging buffer
    /// owned by the current cubicle.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn write_all(&self, sys: &mut System, fd: i64, data: &[u8]) -> Result<i64> {
        let buf = sys.heap_alloc(data.len().max(1), 8)?;
        sys.write(buf, data)?;
        let r = self.write(sys, fd, buf, data.len())?;
        sys.heap_free(buf)?;
        Ok(r)
    }

    /// Convenience: reads up to `n` bytes into a vector.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn read_vec(&self, sys: &mut System, fd: i64, n: usize) -> Result<Vec<u8>> {
        let buf = sys.heap_alloc(n.max(1), 8)?;
        let r = self.read(sys, fd, buf, n)?;
        let out = if r > 0 {
            sys.read_vec(buf, r as usize)?
        } else {
            Vec::new()
        };
        sys.heap_free(buf)?;
        Ok(out)
    }
}

//! The file-system backend callback table and POSIX-ish constants.
//!
//! Unikraft components "interact … by using a callback table that is
//! filled-in by a component at initialisation time (e.g., the RAMFS
//! component initialises a callback table defined by the VFS component to
//! export file system backend-specific functions)" (paper §5.1).
//! [`FsOps`] is that table: the VFS defines the slots, a backend fills
//! them with its public entry points, and CubicleOS' loader has already
//! interposed cross-cubicle trampolines on each.

use cubicle_core::{CubicleId, EntryId};

/// Open flags (numeric values follow Linux).
pub mod flags {
    /// Read-only.
    pub const O_RDONLY: i64 = 0;
    /// Write-only.
    pub const O_WRONLY: i64 = 1;
    /// Read-write.
    pub const O_RDWR: i64 = 2;
    /// Create if missing.
    pub const O_CREAT: i64 = 0o100;
    /// Truncate to zero length.
    pub const O_TRUNC: i64 = 0o1000;
    /// Append on every write.
    pub const O_APPEND: i64 = 0o2000;
}

/// `lseek` whence values.
pub mod whence {
    /// From the start of the file.
    pub const SEEK_SET: i64 = 0;
    /// From the current offset.
    pub const SEEK_CUR: i64 = 1;
    /// From the end of the file.
    pub const SEEK_END: i64 = 2;
}

/// Decoded `stat` result (the wire format is two little-endian `u64`s:
/// size then directory flag).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FileStat {
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Is this a directory?
    pub is_dir: bool,
}

impl FileStat {
    /// Bytes of the on-wire encoding.
    pub const WIRE_SIZE: usize = 16;

    /// Encodes to the 16-byte wire format.
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.size.to_le_bytes());
        out[8..].copy_from_slice(&u64::from(self.is_dir).to_le_bytes());
        out
    }

    /// Decodes from the 16-byte wire format.
    pub fn decode(bytes: &[u8; 16]) -> FileStat {
        let size = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let is_dir = u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")) != 0;
        FileStat { size, is_dir }
    }
}

/// The backend callback table: one cross-cubicle entry per operation.
#[derive(Clone, Copy, Debug)]
pub struct FsOps {
    /// The backend's cubicle (peers must open windows for it).
    pub cid: CubicleId,
    /// `long lookup(const char *path, size_t len)` → inode or `-errno`.
    pub lookup: EntryId,
    /// `long create(const char *path, size_t len, int is_dir)` → inode.
    pub create: EntryId,
    /// `long remove(const char *path, size_t len)` → 0.
    pub remove: EntryId,
    /// `long read(long ino, void *buf, size_t n, uint64_t off)` → bytes.
    pub read: EntryId,
    /// `long write(long ino, const void *buf, size_t n, uint64_t off)` → bytes.
    pub write: EntryId,
    /// `long truncate(long ino, uint64_t len)` → 0.
    pub truncate: EntryId,
    /// `long size(long ino)` → size or `-errno`.
    pub size: EntryId,
    /// `long sync(long ino)` → 0.
    pub sync: EntryId,
    /// `long readdir(long ino, void *buf, size_t n, long index)` → name
    /// length, or `-ENOENT` past the end.
    pub readdir: EntryId,
    /// `long is_dir(long ino)` → 1 / 0 / `-errno`.
    pub is_dir: EntryId,
    /// `long map_extents(long ino, long peer, void *out, size_t n)` →
    /// extent count. Grants `peer` a window over every data page of the
    /// file and writes the extent addresses (one `u64` per page) into
    /// `out`; repeat calls share one refcounted window (sendfile path).
    pub map_extents: EntryId,
    /// `long unmap_extents(long ino)` → 0. Drops one reference taken by
    /// `map_extents`; the backend destroys the window at zero.
    pub unmap_extents: EntryId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_wire_round_trip() {
        for stat in [
            FileStat {
                size: 0,
                is_dir: false,
            },
            FileStat {
                size: 12345,
                is_dir: false,
            },
            FileStat {
                size: u64::MAX,
                is_dir: true,
            },
        ] {
            assert_eq!(FileStat::decode(&stat.encode()), stat);
        }
    }

    #[test]
    fn flags_match_linux() {
        assert_eq!(flags::O_CREAT, 64);
        assert_eq!(flags::O_TRUNC, 512);
        assert_eq!(flags::O_APPEND, 1024);
    }
}

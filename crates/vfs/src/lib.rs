//! # cubicle-vfs — the `VFSCORE` component
//!
//! Unikraft's virtual file system layer, ported to CubicleOS as an
//! isolated cubicle (it appears in both application deployments, Figures
//! 5 and 8). `VFSCORE` owns the mount table and the file-descriptor
//! table and dispatches every operation to a file-system backend through
//! the callback table [`FsOps`] — the Unikraft idiom the paper's builder
//! interposes cross-cubicle trampolines on (§5.2, item 2).
//!
//! Data buffers are never copied here: the caller's pointers flow through
//! to the backend, and the caller grants access by opening windows for
//! `VFSCORE` *and* the backend ahead of the call (the nested-call
//! discipline of §5.6).

pub mod ops;
pub mod path;
mod port;
mod vfs;

pub use ops::{flags, whence, FileStat, FsOps};
pub use port::{VfsPort, SENDFILE_EXTENT_BUF};
pub use vfs::{encode_iov, image, Vfs, VfsProxy, IOV_ENTRY_SIZE, IOV_MAX, MAX_FDS};

//! Path normalisation helpers used by the VFS.

/// Splits a path into normalised components, resolving `.` and `..`
/// (without escaping the root) and ignoring duplicate slashes.
///
/// # Example
///
/// ```
/// use cubicle_vfs::path::components;
///
/// assert_eq!(components("/a//b/./c/../d"), vec!["a", "b", "d"]);
/// assert_eq!(components("/"), Vec::<String>::new());
/// assert_eq!(components("../x"), vec!["x"]);
/// ```
pub fn components(path: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            other => out.push(other.to_string()),
        }
    }
    out
}

/// Splits a path into `(parent_components, file_name)`.
///
/// Returns `None` for the root path.
pub fn split_parent(path: &str) -> Option<(Vec<String>, String)> {
    let mut comps = components(path);
    let name = comps.pop()?;
    Some((comps, name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(components("a/b/c"), vec!["a", "b", "c"]);
        assert_eq!(components("/a/b/c/"), vec!["a", "b", "c"]);
        assert_eq!(components("a/../b"), vec!["b"]);
        assert_eq!(components("a/./b"), vec!["a", "b"]);
        assert_eq!(components(""), Vec::<String>::new());
        assert_eq!(components("/.."), Vec::<String>::new());
    }

    #[test]
    fn parent_split() {
        assert_eq!(
            split_parent("/a/b"),
            Some((vec!["a".to_string()], "b".to_string()))
        );
        assert_eq!(split_parent("/top"), Some((vec![], "top".to_string())));
        assert_eq!(split_parent("/"), None);
    }
}

//! VFSCORE behaviour tests: mount resolution, fd lifecycle, limits.

use cubicle_core::{impl_component, ComponentImage, CubicleId, Errno, IsolationMode, System};
use cubicle_mpk::insn::CodeImage;
use cubicle_ramfs::{mount_at, Ramfs};
use cubicle_vfs::{flags, whence, Vfs, VfsPort, VfsProxy, MAX_FDS};

struct App;
impl_component!(App);

struct Stack {
    sys: System,
    app: CubicleId,
    vfs: VfsProxy,
    backends: Vec<CubicleId>,
}

fn boot_two_mounts() -> Stack {
    let mut sys = System::new(IsolationMode::Full);
    let vfs_loaded = sys
        .load(cubicle_vfs::image(), Box::new(Vfs::default()))
        .unwrap();
    // two independent RAMFS instances mounted at "/" and "/data"
    let root_fs = sys
        .load(cubicle_ramfs::image(), Box::new(Ramfs::default()))
        .unwrap();
    mount_at(&mut sys, vfs_loaded.slot, &root_fs, "/").unwrap();
    // mounting the SAME backend again at /data exercises the
    // longest-prefix-match logic without needing a second symbol set
    mount_at(&mut sys, vfs_loaded.slot, &root_fs, "/data").unwrap();
    let backend_cid = root_fs.cid;
    let app = sys
        .load(
            ComponentImage::new("APP", CodeImage::plain(1024)).heap_pages(32),
            Box::new(App),
        )
        .unwrap();
    Stack {
        sys,
        app: app.cid,
        vfs: VfsProxy::resolve(&vfs_loaded).unwrap(),
        backends: vec![backend_cid],
    }
}

fn with_port<T>(stack: &mut Stack, f: impl FnOnce(&mut System, &VfsPort) -> T) -> T {
    let (app, vfs, backends) = (stack.app, stack.vfs, stack.backends.clone());
    stack.sys.run_in_cubicle(app, move |sys| {
        let port = VfsPort::new(sys, vfs, &backends).unwrap();
        f(sys, &port)
    })
}

#[test]
fn longest_prefix_mount_wins() {
    let mut stack = boot_two_mounts();
    with_port(&mut stack, |sys, port| {
        // "/data/x" resolves through the /data mount: the relative path
        // handed to the backend is "x", so it lands at the backend root.
        let fd = port
            .open(sys, "/data/x", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        assert!(fd >= 0);
        port.write_all(sys, fd, b"via /data").unwrap();
        port.close(sys, fd).unwrap();
        // the same backend is mounted at "/", so "/x" shows the file too
        let fd2 = port.open(sys, "/x", flags::O_RDONLY).unwrap();
        assert!(
            fd2 >= 0,
            "longest-prefix routing must strip the mount prefix"
        );
        assert_eq!(port.read_vec(sys, fd2, 16).unwrap(), b"via /data");
    });
}

#[test]
fn fd_table_exhaustion_yields_emfile() {
    let mut stack = boot_two_mounts();
    with_port(&mut stack, |sys, port| {
        port.open(sys, "/seed", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        let mut fds = Vec::new();
        loop {
            let fd = port.open(sys, "/seed", flags::O_RDONLY).unwrap();
            if fd < 0 {
                assert_eq!(fd, Errno::Emfile.neg());
                break;
            }
            fds.push(fd);
            assert!(fds.len() <= MAX_FDS, "must hit EMFILE by {MAX_FDS}");
        }
        // closing one frees a slot
        port.close(sys, fds.pop().unwrap()).unwrap();
        assert!(port.open(sys, "/seed", flags::O_RDONLY).unwrap() >= 0);
    });
}

#[test]
fn fds_are_reused_after_close() {
    let mut stack = boot_two_mounts();
    with_port(&mut stack, |sys, port| {
        let a = port
            .open(sys, "/f", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        port.close(sys, a).unwrap();
        let b = port.open(sys, "/f", flags::O_RDWR).unwrap();
        assert_eq!(a, b, "lowest free descriptor is reused");
    });
}

#[test]
fn independent_offsets_per_fd() {
    let mut stack = boot_two_mounts();
    with_port(&mut stack, |sys, port| {
        let w = port
            .open(sys, "/off", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        port.write_all(sys, w, b"0123456789").unwrap();
        let r1 = port.open(sys, "/off", flags::O_RDONLY).unwrap();
        let r2 = port.open(sys, "/off", flags::O_RDONLY).unwrap();
        assert_eq!(port.read_vec(sys, r1, 4).unwrap(), b"0123");
        assert_eq!(
            port.read_vec(sys, r2, 2).unwrap(),
            b"01",
            "r2 has its own offset"
        );
        assert_eq!(port.read_vec(sys, r1, 2).unwrap(), b"45");
    });
}

#[test]
fn lseek_whence_semantics() {
    let mut stack = boot_two_mounts();
    with_port(&mut stack, |sys, port| {
        let fd = port
            .open(sys, "/s", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        port.write_all(sys, fd, b"abcdefgh").unwrap();
        assert_eq!(port.lseek(sys, fd, 2, whence::SEEK_SET).unwrap(), 2);
        assert_eq!(port.read_vec(sys, fd, 1).unwrap(), b"c");
        assert_eq!(port.lseek(sys, fd, 2, whence::SEEK_CUR).unwrap(), 5);
        assert_eq!(port.read_vec(sys, fd, 1).unwrap(), b"f");
        assert_eq!(port.lseek(sys, fd, -1, whence::SEEK_END).unwrap(), 7);
        assert_eq!(port.read_vec(sys, fd, 1).unwrap(), b"h");
        assert_eq!(
            port.lseek(sys, fd, -100, whence::SEEK_SET).unwrap(),
            Errno::Einval.neg()
        );
        assert_eq!(port.lseek(sys, fd, 0, 99).unwrap(), Errno::Einval.neg());
    });
}

#[test]
fn unknown_mount_is_enoent() {
    // a VFS with no mounts rejects everything
    let mut sys = System::new(IsolationMode::Full);
    let vfs_loaded = sys
        .load(cubicle_vfs::image(), Box::new(Vfs::default()))
        .unwrap();
    let app = sys
        .load(
            ComponentImage::new("APP", CodeImage::plain(64)).heap_pages(8),
            Box::new(App),
        )
        .unwrap();
    let vfs = VfsProxy::resolve(&vfs_loaded).unwrap();
    let r = sys.run_in_cubicle(app.cid, |sys| {
        let port = VfsPort::new(sys, vfs, &[]).unwrap();
        port.open(sys, "/anything", flags::O_CREAT).unwrap()
    });
    assert_eq!(r, Errno::Enoent.neg());
}

//! Randomized tests: TCP byte-stream integrity under arbitrary write
//! chunking and flow control.
//!
//! Formerly proptest-based; rewritten over the in-tree deterministic
//! [`Rng64`] so the suite builds fully offline.

use cubicle_core::{impl_component, ComponentImage, IsolationMode, System};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::rng::Rng64;
use cubicle_net::{boot_net, frame::Segment, SimClient, WireModel};

struct App;
impl_component!(App);

#[test]
fn segment_encoding_round_trips() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0x5E6_0000 + case);
        let s = Segment {
            sport: rng.next_u32() as u16,
            dport: rng.next_u32() as u16,
            seq: rng.next_u32(),
            ack: rng.next_u32(),
            flags: rng.range_u64(0, 16) as u8,
            wnd: rng.next_u32() as u16,
            payload: {
                let len = rng.range_usize(0, cubicle_net::MSS);
                rng.bytes(len)
            },
        };
        assert_eq!(Segment::decode(&s.encode()), Some(s), "case {case}");
    }
}

#[test]
fn byte_stream_survives_arbitrary_chunking() {
    for case in 0..24u64 {
        let mut rng = Rng64::new(0x7C9_0000 + case);
        let chunks: Vec<usize> = (0..rng.range_usize(1, 8))
            .map(|_| rng.range_usize(1, 5_000))
            .collect();
        let window = if rng.flip() {
            u16::MAX
        } else {
            rng.range_u64(1_460, 20_000) as u16
        };
        let total: usize = chunks.iter().sum();
        let payload: Vec<u8> = (0..total).map(|i| (i % 249) as u8).collect();

        let mut sys = System::new(IsolationMode::Full);
        let stack = boot_net(&mut sys).unwrap();
        let app = sys
            .load(
                ComponentImage::new("APP", CodeImage::plain(1024)).heap_pages(64),
                Box::new(App),
            )
            .unwrap();

        // listen + handshake
        let listener = sys.run_in_cubicle(app.cid, |sys| {
            let fd = stack.lwip.socket(sys).unwrap();
            stack.lwip.bind(sys, fd, 80).unwrap();
            stack.lwip.listen(sys, fd).unwrap();
            fd
        });
        let mut cl = SimClient::new(
            stack.netdev_slot,
            50_000,
            80,
            WireModel {
                hop_cycles: 10,
                per_byte_cycles: 0,
                request_overhead_cycles: 0,
            },
        );
        cl.set_window(window);
        cl.pump(&mut sys);
        sys.run_in_cubicle(app.cid, |sys| stack.lwip.poll(sys).unwrap());
        cl.pump(&mut sys);
        let conn = sys.run_in_cubicle(app.cid, |sys| {
            stack.lwip.poll(sys).unwrap();
            stack.lwip.accept(sys, listener).unwrap()
        });
        assert!(conn >= 0, "case {case}");

        // server writes the payload in the given chunk pattern, retrying
        // under backpressure; the client acks whenever pumped
        let lwip_cid = stack.lwip.cid();
        let mut sent = 0usize;
        let mut guard = 0;
        while sent < total {
            let end = total.min(sent + chunks[sent % chunks.len()]);
            let chunk = &payload[sent..end];
            let n = sys.run_in_cubicle(app.cid, |sys| {
                let buf = sys.heap_alloc(chunk.len().max(1), 8).unwrap();
                sys.write(buf, chunk).unwrap();
                let wid = sys.window_init();
                sys.window_add(wid, buf, chunk.len().max(1)).unwrap();
                sys.window_open(wid, lwip_cid).unwrap();
                let n = stack.lwip.send(sys, conn, buf, chunk.len()).unwrap();
                sys.window_destroy(wid).unwrap();
                sys.heap_free(buf).unwrap();
                stack.lwip.poll(sys).unwrap();
                n
            });
            if n > 0 {
                sent += n as usize;
            }
            cl.pump(&mut sys);
            guard += 1;
            assert!(
                guard < 10_000,
                "case {case}: transfer stalled at {sent}/{total}"
            );
        }
        // drain the tail
        for _ in 0..200 {
            if cl.received.len() >= total {
                break;
            }
            sys.run_in_cubicle(app.cid, |sys| stack.lwip.poll(sys).unwrap());
            cl.pump(&mut sys);
        }
        assert_eq!(cl.received.len(), total, "case {case}");
        assert_eq!(cl.received, payload, "case {case}");
    }
}

//! Property tests: TCP byte-stream integrity under arbitrary write
//! chunking and flow control.

use cubicle_core::{impl_component, ComponentImage, IsolationMode, System};
use cubicle_mpk::insn::CodeImage;
use cubicle_net::{boot_net, frame::Segment, SimClient, WireModel};
use proptest::prelude::*;

struct App;
impl_component!(App);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn segment_encoding_round_trips(
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in 0u8..16,
        wnd in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..cubicle_net::MSS),
    ) {
        let s = Segment { sport, dport, seq, ack, flags, wnd, payload };
        prop_assert_eq!(Segment::decode(&s.encode()), Some(s));
    }

    #[test]
    fn byte_stream_survives_arbitrary_chunking(
        chunks in proptest::collection::vec(1usize..5_000, 1..8),
        window in prop_oneof![Just(u16::MAX), (1_460u16..20_000)],
    ) {
        let total: usize = chunks.iter().sum();
        let payload: Vec<u8> = (0..total).map(|i| (i % 249) as u8).collect();

        let mut sys = System::new(IsolationMode::Full);
        let stack = boot_net(&mut sys).unwrap();
        let app = sys
            .load(ComponentImage::new("APP", CodeImage::plain(1024)).heap_pages(64), Box::new(App))
            .unwrap();

        // listen + handshake
        let listener = sys.run_in_cubicle(app.cid, |sys| {
            let fd = stack.lwip.socket(sys).unwrap();
            stack.lwip.bind(sys, fd, 80).unwrap();
            stack.lwip.listen(sys, fd).unwrap();
            fd
        });
        let mut cl = SimClient::new(
            stack.netdev_slot,
            50_000,
            80,
            WireModel { hop_cycles: 10, per_byte_cycles: 0, request_overhead_cycles: 0 },
        );
        cl.set_window(window);
        cl.pump(&mut sys);
        sys.run_in_cubicle(app.cid, |sys| stack.lwip.poll(sys).unwrap());
        cl.pump(&mut sys);
        let conn = sys.run_in_cubicle(app.cid, |sys| {
            stack.lwip.poll(sys).unwrap();
            stack.lwip.accept(sys, listener).unwrap()
        });
        prop_assert!(conn >= 0);

        // server writes the payload in the given chunk pattern, retrying
        // under backpressure; the client acks whenever pumped
        let lwip_cid = stack.lwip.cid();
        let mut sent = 0usize;
        let mut guard = 0;
        while sent < total {
            let end = total.min(sent + chunks[sent % chunks.len()]);
            let chunk = &payload[sent..end];
            let n = sys.run_in_cubicle(app.cid, |sys| {
                let buf = sys.heap_alloc(chunk.len().max(1), 8).unwrap();
                sys.write(buf, chunk).unwrap();
                let wid = sys.window_init();
                sys.window_add(wid, buf, chunk.len().max(1)).unwrap();
                sys.window_open(wid, lwip_cid).unwrap();
                let n = stack.lwip.send(sys, conn, buf, chunk.len()).unwrap();
                sys.window_destroy(wid).unwrap();
                sys.heap_free(buf).unwrap();
                stack.lwip.poll(sys).unwrap();
                n
            });
            if n > 0 {
                sent += n as usize;
            }
            cl.pump(&mut sys);
            guard += 1;
            prop_assert!(guard < 10_000, "transfer stalled at {sent}/{total}");
        }
        // drain the tail
        for _ in 0..200 {
            if cl.received.len() >= total {
                break;
            }
            sys.run_in_cubicle(app.cid, |sys| stack.lwip.poll(sys).unwrap());
            cl.pump(&mut sys);
        }
        prop_assert_eq!(cl.received.len(), total);
        prop_assert_eq!(&cl.received, &payload);
    }
}

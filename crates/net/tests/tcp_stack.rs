//! End-to-end TCP tests: external client ⇄ NETDEV ⇄ LWIP ⇄ application,
//! across real windows.

use cubicle_core::{impl_component, ComponentImage, CubicleId, IsolationMode, System, WindowId};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::VAddr;
use cubicle_net::{boot_net, Lwip, NetStack, SimClient, WireModel, MSS, SND_BUF};

struct App;
impl_component!(App);

struct Net {
    sys: System,
    stack: NetStack,
    app: CubicleId,
}

fn boot(mode: IsolationMode) -> Net {
    let mut sys = System::new(mode);
    let stack = boot_net(&mut sys).unwrap();
    let app = sys
        .load(
            ComponentImage::new("APP", CodeImage::plain(8 * 1024)).heap_pages(64),
            Box::new(App),
        )
        .unwrap();
    sys.mark_boot_complete();
    Net {
        sys,
        stack,
        app: app.cid,
    }
}

/// App-side I/O buffer with a persistent window open for LWIP.
fn app_buffer(sys: &mut System, lwip: CubicleId, len: usize) -> (VAddr, WindowId) {
    let buf = sys.heap_alloc(len, 4096).unwrap();
    let wid = sys.window_init();
    sys.window_add(wid, buf, len).unwrap();
    sys.window_open(wid, lwip).unwrap();
    (buf, wid)
}

fn client(net: &Net, port: u16) -> SimClient {
    SimClient::new(
        net.stack.netdev_slot,
        49_152,
        port,
        WireModel {
            hop_cycles: 1_000,
            per_byte_cycles: 1,
            request_overhead_cycles: 0,
        },
    )
}

#[test]
fn handshake_establishes() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    let listener = net.sys.run_in_cubicle(app, |sys| {
        let fd = stack.lwip.socket(sys).unwrap();
        assert_eq!(stack.lwip.bind(sys, fd, 80).unwrap(), 0);
        assert_eq!(stack.lwip.listen(sys, fd).unwrap(), 0);
        fd
    });
    let mut cl = client(&net, 80);
    cl.pump(&mut net.sys); // SYN out
    net.sys.run_in_cubicle(app, |sys| {
        stack.lwip.poll(sys).unwrap(); // SYN in, SYN/ACK out
    });
    cl.pump(&mut net.sys); // SYN/ACK in, ACK out
    assert!(cl.is_established());
    let conn = net.sys.run_in_cubicle(app, |sys| {
        stack.lwip.poll(sys).unwrap(); // ACK in → backlog
        stack.lwip.accept(sys, listener).unwrap()
    });
    assert!(conn >= 0, "accept returned {conn}");
}

fn establish(net: &mut Net, port: u16) -> (SimClient, i64) {
    let (stack, app) = (net.stack, net.app);
    let listener = net.sys.run_in_cubicle(app, |sys| {
        let fd = stack.lwip.socket(sys).unwrap();
        stack.lwip.bind(sys, fd, port).unwrap();
        stack.lwip.listen(sys, fd).unwrap();
        fd
    });
    let mut cl = client(net, port);
    cl.pump(&mut net.sys);
    net.sys
        .run_in_cubicle(app, |sys| stack.lwip.poll(sys).unwrap());
    cl.pump(&mut net.sys);
    let conn = net.sys.run_in_cubicle(app, |sys| {
        stack.lwip.poll(sys).unwrap();
        stack.lwip.accept(sys, listener).unwrap()
    });
    assert!(conn >= 0);
    (cl, conn)
}

#[test]
fn request_bytes_reach_the_app() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    let (mut cl, conn) = establish(&mut net, 80);
    cl.send(b"GET /index.html HTTP/1.0\r\n\r\n");
    cl.pump(&mut net.sys);
    let got = net.sys.run_in_cubicle(app, |sys| {
        stack.lwip.poll(sys).unwrap();
        let (buf, _w) = app_buffer(sys, stack.lwip.cid(), 4096);
        let n = stack.lwip.recv(sys, conn, buf, 4096).unwrap();
        assert!(n > 0, "recv returned {n}");
        sys.read_vec(buf, n as usize).unwrap()
    });
    assert_eq!(got, b"GET /index.html HTTP/1.0\r\n\r\n");
}

#[test]
fn response_streams_back_with_segmentation() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    let (mut cl, conn) = establish(&mut net, 80);
    // server sends 10 KiB: must arrive segmented at MSS and reassembled
    let payload: Vec<u8> = (0..10_240u32).map(|i| (i % 251) as u8).collect();
    let total = payload.len();
    net.sys.run_in_cubicle(app, |sys| {
        let (buf, _w) = app_buffer(sys, stack.lwip.cid(), total);
        sys.write(buf, &payload).unwrap();
        let mut off = 0usize;
        while off < total {
            let n = stack.lwip.send(sys, conn, buf + off, total - off).unwrap();
            assert!(n > 0);
            off += n as usize;
        }
        stack.lwip.poll(sys).unwrap();
    });
    // ack-clocked rounds until everything arrives
    for _ in 0..64 {
        cl.pump(&mut net.sys);
        if cl.received.len() >= total {
            break;
        }
        net.sys
            .run_in_cubicle(app, |sys| stack.lwip.poll(sys).unwrap());
    }
    assert_eq!(cl.received, payload);
    // segmentation really happened
    let tx = net
        .sys
        .with_component_mut::<Lwip, _>(net.stack.lwip_slot, |l, _| l.segments_tx)
        .unwrap();
    assert!(
        tx as usize >= total / MSS,
        "at least ⌈10KiB/MSS⌉ data segments"
    );
}

#[test]
fn send_buffer_is_bounded_at_64k() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    let (mut cl, conn) = establish(&mut net, 80);
    cl.set_window(0); // peer advertises zero window: nothing can leave
    cl.pump(&mut net.sys);
    net.sys.run_in_cubicle(app, |sys| {
        stack.lwip.poll(sys).unwrap();
        let (buf, _w) = app_buffer(sys, stack.lwip.cid(), SND_BUF + 4096);
        // the stack accepts at most SND_BUF bytes, then EWOULDBLOCK
        let mut accepted = 0usize;
        loop {
            let n = stack
                .lwip
                .send(sys, conn, buf, SND_BUF + 4096 - accepted)
                .unwrap();
            if n < 0 {
                assert_eq!(n, cubicle_core::Errno::Ewouldblock.neg());
                break;
            }
            accepted += n as usize;
            assert!(accepted <= SND_BUF, "send buffer overflow: {accepted}");
        }
        assert_eq!(accepted, SND_BUF, "exactly TCP_SND_BUF bytes fit");
    });
}

#[test]
fn fin_closes_cleanly() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    let (mut cl, conn) = establish(&mut net, 80);
    net.sys.run_in_cubicle(app, |sys| {
        stack.lwip.close(sys, conn).unwrap();
        stack.lwip.poll(sys).unwrap();
    });
    cl.pump(&mut net.sys);
    assert!(cl.fin_seen(), "server FIN must reach the client");
}

#[test]
fn recv_without_window_is_refused() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    let (mut cl, conn) = establish(&mut net, 80);
    cl.send(b"data");
    cl.pump(&mut net.sys);
    let r = net.sys.run_in_cubicle(app, |sys| {
        stack.lwip.poll(sys).unwrap();
        let buf = sys.heap_alloc(64, 8).unwrap(); // no window!
        stack.lwip.recv(sys, conn, buf, 64).unwrap()
    });
    assert_eq!(r, cubicle_core::Errno::Eacces.neg());
    // and with a window the same bytes are still there (stack put them back)
    let got = net.sys.run_in_cubicle(app, |sys| {
        let (buf, _w) = app_buffer(sys, stack.lwip.cid(), 64);
        let n = stack.lwip.recv(sys, conn, buf, 64).unwrap();
        sys.read_vec(buf, n as usize).unwrap()
    });
    assert_eq!(got, b"data");
}

#[test]
fn figure5_edges_exist() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    let (mut cl, conn) = establish(&mut net, 80);
    let payload = vec![7u8; 50_000];
    net.sys.run_in_cubicle(app, |sys| {
        let (buf, _w) = app_buffer(sys, stack.lwip.cid(), payload.len());
        sys.write(buf, &payload).unwrap();
        let mut off = 0;
        while off < payload.len() {
            let n = stack
                .lwip
                .send(sys, conn, buf + off, payload.len() - off)
                .unwrap();
            if n <= 0 {
                break;
            }
            off += n as usize;
        }
        stack.lwip.poll(sys).unwrap();
    });
    for _ in 0..64 {
        cl.pump(&mut net.sys);
        if cl.received.len() >= payload.len() {
            break;
        }
        net.sys
            .run_in_cubicle(app, |sys| stack.lwip.poll(sys).unwrap());
    }
    assert_eq!(cl.received.len(), payload.len());
    let sys = &net.sys;
    let (_, stats) = sys.since_boot();
    let lwip = sys.find_cubicle("LWIP").unwrap();
    let netdev = sys.find_cubicle("NETDEV").unwrap();
    // Figure 5 shape: APP→LWIP and LWIP→NETDEV are the hot edges; the
    // app never touches the device directly.
    assert!(
        stats.edge(net.app, lwip) > 5,
        "got {}",
        stats.edge(net.app, lwip)
    );
    assert!(stats.edge(lwip, netdev) > 30, "one device call per segment");
    assert_eq!(stats.edge(net.app, netdev), 0);
    assert!(
        stats.edge(lwip, netdev) > stats.edge(net.app, lwip),
        "segmentation multiplies calls downstream (Fig. 5: 1.9M vs 56k)"
    );
}

#[test]
fn works_in_all_isolation_modes() {
    for mode in [
        IsolationMode::Unikraft,
        IsolationMode::NoMpk,
        IsolationMode::NoAcl,
        IsolationMode::Full,
    ] {
        let mut net = boot(mode);
        let (stack, app) = (net.stack, net.app);
        let (mut cl, conn) = establish(&mut net, 80);
        cl.send(b"ping");
        cl.pump(&mut net.sys);
        net.sys.run_in_cubicle(app, |sys| {
            stack.lwip.poll(sys).unwrap();
            let (buf, _w) = app_buffer(sys, stack.lwip.cid(), 64);
            let n = stack.lwip.recv(sys, conn, buf, 64).unwrap();
            assert_eq!(n, 4, "{mode:?}");
            // echo
            let m = stack.lwip.send(sys, conn, buf, 4).unwrap();
            assert_eq!(m, 4, "{mode:?}");
            stack.lwip.poll(sys).unwrap();
        });
        cl.pump(&mut net.sys);
        assert_eq!(cl.received, b"ping", "{mode:?}");
    }
}

#[test]
fn double_bind_is_eaddrinuse() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    net.sys.run_in_cubicle(app, |sys| {
        let a = stack.lwip.socket(sys).unwrap();
        assert_eq!(stack.lwip.bind(sys, a, 8080).unwrap(), 0);
        let b = stack.lwip.socket(sys).unwrap();
        assert_eq!(
            stack.lwip.bind(sys, b, 8080).unwrap(),
            cubicle_core::Errno::Eaddrinuse.neg()
        );
    });
}

#[test]
fn socket_api_rejects_bad_fds() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    net.sys.run_in_cubicle(app, |sys| {
        let ebadf = cubicle_core::Errno::Ebadf.neg();
        assert_eq!(stack.lwip.listen(sys, 99).unwrap(), ebadf);
        assert_eq!(stack.lwip.accept(sys, 99).unwrap(), ebadf);
        assert_eq!(stack.lwip.close(sys, 99).unwrap(), ebadf);
        let buf = sys.heap_alloc(16, 8).unwrap();
        assert_eq!(stack.lwip.recv(sys, 99, buf, 16).unwrap(), ebadf);
        assert_eq!(stack.lwip.send(sys, 99, buf, 16).unwrap(), ebadf);
    });
}

#[test]
fn send_on_unconnected_socket_is_enotconn() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    net.sys.run_in_cubicle(app, |sys| {
        let fd = stack.lwip.socket(sys).unwrap();
        stack.lwip.bind(sys, fd, 81).unwrap();
        let buf = sys.heap_alloc(16, 8).unwrap();
        // a listener shell is not a connection
        assert_eq!(
            stack.lwip.send(sys, fd, buf, 16).unwrap(),
            cubicle_core::Errno::Ebadf.neg()
        );
    });
}

#[test]
fn syn_to_closed_port_is_dropped() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    // no listener anywhere
    let mut cl = client(&net, 4444);
    cl.pump(&mut net.sys); // SYN out
    net.sys
        .run_in_cubicle(app, |sys| stack.lwip.poll(sys).unwrap());
    cl.pump(&mut net.sys);
    assert!(!cl.is_established(), "no listener, no handshake");
}

#[test]
fn interleaved_connections_keep_streams_apart() {
    let mut net = boot(IsolationMode::Full);
    let (stack, app) = (net.stack, net.app);
    let listener = net.sys.run_in_cubicle(app, |sys| {
        let fd = stack.lwip.socket(sys).unwrap();
        stack.lwip.bind(sys, fd, 80).unwrap();
        stack.lwip.listen(sys, fd).unwrap();
        fd
    });
    // two clients on different ephemeral ports
    let mk = |port| {
        SimClient::new(
            net.stack.netdev_slot,
            port,
            80,
            WireModel {
                hop_cycles: 100,
                per_byte_cycles: 0,
                request_overhead_cycles: 0,
            },
        )
    };
    let mut c1 = mk(50_001);
    let mut c2 = mk(50_002);
    c1.pump(&mut net.sys);
    c2.pump(&mut net.sys);
    net.sys
        .run_in_cubicle(app, |sys| stack.lwip.poll(sys).unwrap());
    c1.pump(&mut net.sys);
    c2.pump(&mut net.sys);
    let (conn1, conn2) = net.sys.run_in_cubicle(app, |sys| {
        stack.lwip.poll(sys).unwrap();
        let a = stack.lwip.accept(sys, listener).unwrap();
        let b = stack.lwip.accept(sys, listener).unwrap();
        (a, b)
    });
    assert!(conn1 >= 0 && conn2 >= 0 && conn1 != conn2);
    c1.send(b"from-one");
    c2.send(b"from-two");
    c1.pump(&mut net.sys);
    c2.pump(&mut net.sys);
    net.sys.run_in_cubicle(app, |sys| {
        stack.lwip.poll(sys).unwrap();
        let (buf, _w) = app_buffer(sys, stack.lwip.cid(), 64);
        // map accepted fds to data: find which conn got which bytes
        let n1 = stack.lwip.recv(sys, conn1, buf, 64).unwrap();
        let d1 = sys.read_vec(buf, n1 as usize).unwrap();
        let n2 = stack.lwip.recv(sys, conn2, buf, 64).unwrap();
        let d2 = sys.read_vec(buf, n2 as usize).unwrap();
        let mut got = vec![d1, d2];
        got.sort();
        assert_eq!(got, vec![b"from-one".to_vec(), b"from-two".to_vec()]);
    });
}

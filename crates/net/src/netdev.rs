//! The `NETDEV` cubicle: virtual network device driver.
//!
//! Figure 5 isolates Unikraft's network device driver in its own cubicle.
//! The device here is a paravirtual NIC: descriptor rings whose slots
//! live in NETDEV-owned simulated memory, connected to a host-side
//! "wire" (frame queues) that the benchmark's client endpoint drives —
//! taking the role of the paper's external `siege` load generator.

use crate::frame::{HEADER_LEN, MSS};
use cubicle_core::{
    component_mut, impl_component, Builder, Component, ComponentImage, CubicleId, EntryId, Errno,
    LoadedComponent, Result, System, Value,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::VAddr;
use std::collections::VecDeque;

/// Ring slots (frames in flight inside the device).
pub const RING_SLOTS: usize = 8;
/// Largest frame the device accepts.
pub const MAX_FRAME: usize = HEADER_LEN + MSS;

/// State of the `NETDEV` component.
#[derive(Debug, Default)]
pub struct Netdev {
    /// Ring slot pages (NETDEV-owned simulated memory).
    slots: Vec<VAddr>,
    next_slot: usize,
    /// Frames queued towards the wire (host side).
    pub tx_wire: VecDeque<Vec<u8>>,
    /// Frames queued from the wire (host side).
    pub rx_wire: VecDeque<Vec<u8>>,
    /// Frames transmitted (statistics).
    pub tx_frames: u64,
    /// Frames received (statistics).
    pub rx_frames: u64,
}

impl_component!(Netdev, restart = reboot_reset);

impl Netdev {
    /// Microreboot hook: ring slot pages were reclaimed with the
    /// cubicle; frames in flight on either host-side queue are lost,
    /// like a NIC reset dropping its FIFOs.
    fn reboot_reset(&mut self) {
        self.slots.clear();
        self.next_slot = 0;
        self.tx_wire.clear();
        self.rx_wire.clear();
    }
}

impl Netdev {
    fn slot(&mut self, sys: &mut System) -> Result<VAddr> {
        if self.slots.is_empty() {
            // one page per slot, allocated lazily in NETDEV context
            for _ in 0..RING_SLOTS {
                self.slots.push(sys.alloc_pages(1));
            }
        }
        let s = self.slots[self.next_slot];
        self.next_slot = (self.next_slot + 1) % self.slots.len();
        Ok(s)
    }
}

/// Builds the loadable `NETDEV` image.
pub fn image() -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new("NETDEV", CodeImage::plain(10 * 1024))
        .heap_pages(4)
        .export(
            b.export("long netdev_tx(const void *frame, size_t len)")
                .unwrap(),
            e_tx,
        )
        .export(
            b.export("long netdev_rx(void *buf, size_t cap)").unwrap(),
            e_rx,
        )
}

fn e_tx(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    let (frame, len) = args[0].as_buf();
    if len > MAX_FRAME {
        return Ok(Value::I64(Errno::Einval.neg()));
    }
    sys.charge(150); // doorbell + descriptor setup
    let slot = {
        let dev = component_mut::<Netdev>(this);
        dev.slot(sys)?
    };
    // DMA-in: copy the caller's frame into the device ring (subject to
    // the caller's windows — the measured cross-cubicle data path).
    match cubicle_ukbase::libc::memcpy(sys, slot, frame, len) {
        Ok(()) => {}
        Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
            return Ok(Value::I64(Errno::Eacces.neg()))
        }
        Err(e) => return Err(e),
    }
    // The device serialises the slot onto the wire.
    let bytes = sys.read_vec(slot, len)?;
    let dev = component_mut::<Netdev>(this);
    dev.tx_wire.push_back(bytes);
    dev.tx_frames += 1;
    Ok(Value::I64(len as i64))
}

fn e_rx(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    let (buf, cap) = args[0].as_buf();
    sys.charge(150);
    let (slot, len) = {
        let dev = component_mut::<Netdev>(this);
        let Some(bytes) = dev.rx_wire.pop_front() else {
            return Ok(Value::I64(Errno::Ewouldblock.neg()));
        };
        if bytes.len() > cap {
            dev.rx_wire.push_front(bytes);
            return Ok(Value::I64(Errno::Einval.neg()));
        }
        let slot = dev.slot(sys)?;
        let len = bytes.len();
        sys.write(slot, &bytes)?; // DMA from the wire into the ring
        dev.rx_frames += 1;
        (slot, len)
    };
    // Copy ring slot → caller buffer (windowed).
    match cubicle_ukbase::libc::memcpy(sys, buf, slot, len) {
        Ok(()) => {}
        Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
            return Ok(Value::I64(Errno::Eacces.neg()))
        }
        Err(e) => return Err(e),
    }
    Ok(Value::I64(len as i64))
}

/// Typed caller-side proxy for `NETDEV`.
#[derive(Clone, Copy, Debug)]
pub struct NetdevProxy {
    cid: CubicleId,
    tx: EntryId,
    rx: EntryId,
}

impl NetdevProxy {
    /// Resolves the proxy from the loaded component.
    ///
    /// # Errors
    ///
    /// [`cubicle_core::CubicleError::NoSuchEntry`] when the image does
    /// not export the expected symbols.
    pub fn resolve(loaded: &LoadedComponent) -> Result<NetdevProxy> {
        Ok(NetdevProxy {
            cid: loaded.cid,
            tx: loaded.entry("netdev_tx")?,
            rx: loaded.entry("netdev_rx")?,
        })
    }

    /// The `NETDEV` cubicle's ID.
    pub fn cid(&self) -> CubicleId {
        self.cid
    }

    /// Transmits a frame from caller memory; returns bytes or `-errno`.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn tx(&self, sys: &mut System, frame: VAddr, len: usize) -> Result<i64> {
        Ok(sys
            .cross_call(self.tx, &[Value::buf_in(frame, len)])?
            .as_i64())
    }

    /// Transmits several frames under one batched cross-cubicle dispatch
    /// (one trampoline/PKRU round trip for the whole group). Frames must
    /// live in distinct caller buffers — every write precedes the
    /// dispatch. Returns one bytes-or-`-errno` result per frame.
    ///
    /// # Errors
    ///
    /// Kernel errors from the batched cross-cubicle call.
    pub fn tx_batch(&self, sys: &mut System, frames: &[(VAddr, usize)]) -> Result<Vec<i64>> {
        let elems: Vec<[Value; 1]> = frames
            .iter()
            .map(|&(addr, len)| [Value::buf_in(addr, len)])
            .collect();
        let refs: Vec<&[Value]> = elems.iter().map(|e| e.as_slice()).collect();
        Ok(sys
            .cross_call_batch(self.tx, &refs)?
            .iter()
            .map(|v| v.as_i64())
            .collect())
    }

    /// Receives a frame into caller memory; returns bytes, or
    /// `-EWOULDBLOCK` when the wire is idle.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn rx(&self, sys: &mut System, buf: VAddr, cap: usize) -> Result<i64> {
        Ok(sys
            .cross_call(self.rx, &[Value::buf_out(buf, cap)])?
            .as_i64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_core::IsolationMode;

    struct App;
    impl_component!(App);

    fn setup() -> (System, NetdevProxy, usize, CubicleId) {
        let mut sys = System::new(IsolationMode::Full);
        let dev = sys.load(image(), Box::new(Netdev::default())).unwrap();
        let app = sys
            .load(
                ComponentImage::new("APP", CodeImage::plain(64)).heap_pages(8),
                Box::new(App),
            )
            .unwrap();
        let proxy = NetdevProxy::resolve(&dev).unwrap();
        (sys, proxy, dev.slot, app.cid)
    }

    #[test]
    fn tx_moves_frame_to_wire() {
        let (mut sys, proxy, slot, app) = setup();
        let dev_cid = proxy.cid();
        sys.run_in_cubicle(app, |sys| {
            let f = sys.heap_alloc(256, 8).unwrap();
            sys.write(f, b"frame-bytes-0123").unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, f, 256).unwrap();
            sys.window_open(wid, dev_cid).unwrap();
            assert_eq!(proxy.tx(sys, f, 16).unwrap(), 16);
        });
        let frame = sys
            .with_component_mut::<Netdev, _>(slot, |d, _| d.tx_wire.pop_front())
            .unwrap()
            .unwrap();
        assert_eq!(frame, b"frame-bytes-0123");
    }

    #[test]
    fn tx_without_window_denied() {
        let (mut sys, proxy, _slot, app) = setup();
        let r = sys.run_in_cubicle(app, |sys| {
            let f = sys.heap_alloc(64, 8).unwrap();
            proxy.tx(sys, f, 16).unwrap()
        });
        assert_eq!(r, Errno::Eacces.neg());
    }

    #[test]
    fn rx_delivers_injected_frames_in_order() {
        let (mut sys, proxy, slot, app) = setup();
        let dev_cid = proxy.cid();
        sys.with_component_mut::<Netdev, _>(slot, |d, _| {
            d.rx_wire.push_back(b"first".to_vec());
            d.rx_wire.push_back(b"second".to_vec());
        });
        sys.run_in_cubicle(app, |sys| {
            let b = sys.heap_alloc(1024, 8).unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, b, 1024).unwrap();
            sys.window_open(wid, dev_cid).unwrap();
            assert_eq!(proxy.rx(sys, b, 1024).unwrap(), 5);
            assert_eq!(sys.read_vec(b, 5).unwrap(), b"first");
            assert_eq!(proxy.rx(sys, b, 1024).unwrap(), 6);
            assert_eq!(sys.read_vec(b, 6).unwrap(), b"second");
            assert_eq!(proxy.rx(sys, b, 1024).unwrap(), Errno::Ewouldblock.neg());
        });
    }

    #[test]
    fn oversized_frame_rejected() {
        let (mut sys, proxy, _slot, app) = setup();
        let dev_cid = proxy.cid();
        let r = sys.run_in_cubicle(app, |sys| {
            let f = sys.heap_alloc(MAX_FRAME + 64, 8).unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, f, MAX_FRAME + 64).unwrap();
            sys.window_open(wid, dev_cid).unwrap();
            proxy.tx(sys, f, MAX_FRAME + 1).unwrap()
        });
        assert_eq!(r, Errno::Einval.neg());
    }
}

//! The `LWIP` cubicle: a small TCP stack with a socket API.
//!
//! Reproduces the properties of Unikraft's LWIP that shape Figure 7:
//! MSS-sized segmentation, a **64 KiB send buffer** ("the change in slope
//! for files larger than 1 MB is due to the buffer size inside LWIP"),
//! ack-clocked flow control against the peer's advertised window, and a
//! poll-driven single-threaded event loop. Frames move to and from the
//! `NETDEV` cubicle through windowed cross-cubicle calls.

use crate::frame::{flags, Segment, MSS};
use crate::netdev::{NetdevProxy, MAX_FRAME};
use cubicle_core::{
    component_mut, impl_component, Builder, Component, ComponentImage, CubicleId, EntryId, Errno,
    LoadedComponent, Result, System, Value, WindowId,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::VAddr;
use cubicle_ukbase::AllocProxy;
use std::collections::VecDeque;

/// Send-buffer capacity per connection (LWIP's `TCP_SND_BUF`).
pub const SND_BUF: usize = 64 * 1024;
/// Advertised receive window.
pub const RCV_WND: u16 = 65_535;
/// Server initial sequence number.
const ISS: u32 = 1_000;

/// TCP connection states (the subset a reliable wire needs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TcpState {
    SynRcvd,
    Established,
    CloseWait,
    Closed,
}

#[derive(Debug)]
struct Tcb {
    state: TcpState,
    local_port: u16,
    remote_port: u16,
    rcv_nxt: u32,
    snd_nxt: u32,
    snd_una: u32,
    peer_wnd: u32,
    /// Bytes accepted from the application, not yet segmented.
    send_queue: VecDeque<u8>,
    /// Bytes received in order, not yet read by the application.
    recv_queue: VecDeque<u8>,
    /// Application closed its end (FIN pending after the queue drains).
    fin_pending: bool,
    fin_sent: bool,
}

impl Tcb {
    fn inflight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    fn send_space(&self) -> usize {
        SND_BUF.saturating_sub(self.send_queue.len() + self.inflight() as usize)
    }
}

#[derive(Debug)]
enum Socket {
    Listener { port: u16, backlog: VecDeque<usize> },
    Conn(Tcb),
}

/// TX segments between pbuf-pool refills from `ALLOC` (tuned to the
/// paper's Figure 5 edge ratio: LWIP→ALLOC ≈ LWIP→NETDEV / 465).
pub const PBUF_REFILL_SEGMENTS: u64 = 456;

/// Frames per batched `NETDEV` dispatch (and pages in the TX batch
/// ring): matches the device's own ring depth, so one batch never laps a
/// slot it wrote earlier in the same dispatch.
pub const TX_BATCH: usize = 8;

/// State of the `LWIP` component.
#[derive(Debug, Default)]
pub struct Lwip {
    netdev: Option<NetdevProxy>,
    alloc: Option<AllocProxy>,
    sockets: Vec<Option<Socket>>,
    /// Staging page for frames exchanged with `NETDEV`.
    frame_buf: VAddr,
    /// Current TX pbuf page (rotated through `ALLOC` refills).
    tx_buf: VAddr,
    /// Window publishing `tx_buf` to `NETDEV`; destroyed on each refill
    /// before the page goes back to `ALLOC` (a live window descriptor
    /// must never cover memory its cubicle no longer owns).
    tx_wid: Option<WindowId>,
    /// Base of the [`TX_BATCH`]-page staging ring used by batched
    /// flushes: each batched frame gets its own slot because every write
    /// precedes the single dispatch.
    tx_batch_buf: VAddr,
    /// Long-lived window publishing the batch ring to `NETDEV`.
    tx_batch_wid: Option<WindowId>,
    segments_since_refill: u64,
    /// Segments processed (statistics).
    pub segments_rx: u64,
    /// Segments emitted (statistics).
    pub segments_tx: u64,
}

impl_component!(Lwip, restart = reboot_reset);

impl Lwip {
    /// Microreboot hook: sockets, the frame staging page and the TX pbuf
    /// page all lived in the reclaimed cubicle memory. Wiring proxies
    /// survive; `lwip_init` must run again before the stack is used.
    fn reboot_reset(&mut self) {
        let (netdev, alloc) = (self.netdev, self.alloc);
        *self = Lwip::default();
        self.netdev = netdev;
        self.alloc = alloc;
    }
    /// Boot-time wiring of the device driver proxy.
    pub fn set_netdev(&mut self, dev: NetdevProxy) {
        self.netdev = Some(dev);
    }

    /// Boot-time wiring of the coarse allocator: when present, the stack
    /// refills its pbuf pool from `ALLOC` every
    /// [`PBUF_REFILL_SEGMENTS`] transmitted segments (Figure 5's sparse
    /// `LWIP → ALLOC` edge).
    pub fn set_alloc(&mut self, alloc: AllocProxy) {
        self.alloc = Some(alloc);
    }

    fn conn_mut(&mut self, fd: i64) -> Option<&mut Tcb> {
        match usize::try_from(fd)
            .ok()
            .and_then(|i| self.sockets.get_mut(i)?.as_mut())
        {
            Some(Socket::Conn(tcb)) => Some(tcb),
            _ => None,
        }
    }

    fn find_conn(&mut self, local: u16, remote: u16) -> Option<usize> {
        self.sockets.iter().position(|s| {
            matches!(s, Some(Socket::Conn(t))
                if t.local_port == local && t.remote_port == remote && t.state != TcpState::Closed)
        })
    }

    fn find_listener(&mut self, port: u16) -> Option<usize> {
        self.sockets
            .iter()
            .position(|s| matches!(s, Some(Socket::Listener { port: p, .. }) if *p == port))
    }

    fn alloc_fd(&mut self, s: Socket) -> i64 {
        if let Some(i) = self.sockets.iter().position(Option::is_none) {
            self.sockets[i] = Some(s);
            i as i64
        } else {
            self.sockets.push(Some(s));
            self.sockets.len() as i64 - 1
        }
    }
}

/// Builds the loadable `LWIP` image.
pub fn image() -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new("LWIP", CodeImage::plain(48 * 1024))
        .heap_pages(32)
        .export(b.export("long lwip_init(void)").unwrap(), e_init)
        .export(b.export("long lwip_socket(void)").unwrap(), e_socket)
        .export(
            b.export("long lwip_bind(long fd, long port)").unwrap(),
            e_bind,
        )
        .export(b.export("long lwip_listen(long fd)").unwrap(), e_listen)
        .export(b.export("long lwip_accept(long fd)").unwrap(), e_accept)
        .export(
            b.export("long lwip_recv(long fd, void *buf, size_t n)")
                .unwrap(),
            e_recv,
        )
        .export(
            b.export("long lwip_send(long fd, const void *buf, size_t n)")
                .unwrap(),
            e_send,
        )
        .export(b.export("long lwip_close(long fd)").unwrap(), e_close)
        .export(b.export("long lwip_poll(void)").unwrap(), e_poll)
}

fn e_init(sys: &mut System, this: &mut dyn Component, _args: &[Value]) -> Result<Value> {
    let dev_cid = {
        let st = component_mut::<Lwip>(this);
        match st.netdev {
            Some(d) => d.cid(),
            None => return Ok(Value::I64(Errno::Einval.neg())),
        }
    };
    // Allocate the frame staging page and open a long-lived window on it
    // for the device (driver ↔ device shared descriptor memory).
    let buf = sys.alloc_pages(1);
    let wid = sys.window_init();
    sys.window_add(wid, buf, 4096)?;
    sys.window_open(wid, dev_cid)?;
    component_mut::<Lwip>(this).frame_buf = buf;
    Ok(Value::I64(0))
}

fn e_socket(sys: &mut System, this: &mut dyn Component, _args: &[Value]) -> Result<Value> {
    sys.charge(80);
    let st = component_mut::<Lwip>(this);
    // a socket starts life as an unbound listener shell
    let fd = st.alloc_fd(Socket::Listener {
        port: 0,
        backlog: VecDeque::new(),
    });
    Ok(Value::I64(fd))
}

fn e_bind(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(80);
    let fd = args[0].as_i64();
    let port = args[1].as_i64();
    let st = component_mut::<Lwip>(this);
    let Ok(port) = u16::try_from(port) else {
        return Ok(Value::I64(Errno::Einval.neg()));
    };
    if st.find_listener(port).is_some() && port != 0 {
        return Ok(Value::I64(Errno::Eaddrinuse.neg()));
    }
    match usize::try_from(fd)
        .ok()
        .and_then(|i| st.sockets.get_mut(i)?.as_mut())
    {
        Some(Socket::Listener { port: p, .. }) => {
            *p = port;
            Ok(Value::I64(0))
        }
        _ => Ok(Value::I64(Errno::Ebadf.neg())),
    }
}

fn e_listen(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(80);
    let fd = args[0].as_i64();
    let st = component_mut::<Lwip>(this);
    match usize::try_from(fd)
        .ok()
        .and_then(|i| st.sockets.get(i)?.as_ref())
    {
        Some(Socket::Listener { .. }) => Ok(Value::I64(0)),
        _ => Ok(Value::I64(Errno::Ebadf.neg())),
    }
}

fn e_accept(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(120);
    let fd = args[0].as_i64();
    let st = component_mut::<Lwip>(this);
    match usize::try_from(fd)
        .ok()
        .and_then(|i| st.sockets.get_mut(i)?.as_mut())
    {
        Some(Socket::Listener { backlog, .. }) => match backlog.pop_front() {
            Some(conn_idx) => Ok(Value::I64(conn_idx as i64)),
            None => Ok(Value::I64(Errno::Ewouldblock.neg())),
        },
        _ => Ok(Value::I64(Errno::Ebadf.neg())),
    }
}

fn e_recv(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    let fd = args[0].as_i64();
    let (buf, n) = args[1].as_buf();
    sys.charge(200);
    let (bytes, _closed) = {
        let st = component_mut::<Lwip>(this);
        let Some(tcb) = st.conn_mut(fd) else {
            return Ok(Value::I64(Errno::Ebadf.neg()));
        };
        if tcb.recv_queue.is_empty() {
            return Ok(match tcb.state {
                TcpState::CloseWait | TcpState::Closed => Value::I64(0), // EOF
                _ => Value::I64(Errno::Ewouldblock.neg()),
            });
        }
        let take = n.min(tcb.recv_queue.len());
        let bytes: Vec<u8> = tcb.recv_queue.drain(..take).collect();
        (bytes, tcb.state != TcpState::Established)
    };
    // copy into the application's buffer (windowed)
    match sys.write(buf, &bytes) {
        Ok(()) => Ok(Value::I64(bytes.len() as i64)),
        Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
            // put the bytes back so the app can retry with a window
            let st = component_mut::<Lwip>(this);
            if let Some(tcb) = st.conn_mut(fd) {
                for b in bytes.into_iter().rev() {
                    tcb.recv_queue.push_front(b);
                }
            }
            Ok(Value::I64(Errno::Eacces.neg()))
        }
        Err(e) => Err(e),
    }
}

fn e_send(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    let fd = args[0].as_i64();
    let (buf, n) = args[1].as_buf();
    sys.charge(200);
    let space = {
        let st = component_mut::<Lwip>(this);
        let Some(tcb) = st.conn_mut(fd) else {
            return Ok(Value::I64(Errno::Ebadf.neg()));
        };
        if tcb.state != TcpState::Established && tcb.state != TcpState::CloseWait {
            return Ok(Value::I64(Errno::Enotconn.neg()));
        }
        tcb.send_space()
    };
    if space == 0 {
        return Ok(Value::I64(Errno::Ewouldblock.neg()));
    }
    let take = n.min(space);
    // read the application's bytes (windowed) straight into the send
    // queue via a pooled scratch buffer — no allocation per segment
    let queued = sys.with_read(buf, take, |_sys, bytes| {
        let st = component_mut::<Lwip>(this);
        let tcb = st.conn_mut(fd).expect("checked above");
        tcb.send_queue.extend(bytes.iter().copied());
        Ok(())
    });
    match queued {
        Ok(()) => Ok(Value::I64(take as i64)),
        Err(cubicle_core::CubicleError::WindowDenied { .. }) => Ok(Value::I64(Errno::Eacces.neg())),
        Err(e) => Err(e),
    }
}

fn e_close(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(120);
    let fd = args[0].as_i64();
    let st = component_mut::<Lwip>(this);
    match usize::try_from(fd)
        .ok()
        .and_then(|i| st.sockets.get_mut(i)?.as_mut())
    {
        Some(Socket::Conn(tcb)) => {
            tcb.fin_pending = true;
            Ok(Value::I64(0))
        }
        Some(Socket::Listener { .. }) => {
            st.sockets[usize::try_from(fd).expect("checked")] = None;
            Ok(Value::I64(0))
        }
        None => Ok(Value::I64(Errno::Ebadf.neg())),
    }
}

/// One event-loop iteration: drain the device RX queue, then flush
/// pending transmissions. Returns the number of segments processed.
fn e_poll(sys: &mut System, this: &mut dyn Component, _args: &[Value]) -> Result<Value> {
    let (dev, frame_buf) = {
        let st = component_mut::<Lwip>(this);
        let Some(dev) = st.netdev else {
            return Ok(Value::I64(Errno::Einval.neg()));
        };
        (dev, st.frame_buf)
    };
    let mut events = 0i64;

    // ---- RX path -------------------------------------------------------
    loop {
        let n = dev.rx(sys, frame_buf, MAX_FRAME)?;
        if n == Errno::Ewouldblock.neg() {
            break;
        }
        if n < 0 {
            return Ok(Value::I64(n));
        }
        sys.charge(600); // per-segment stack processing
        let decoded = sys.with_read(frame_buf, n as usize, |_sys, bytes| {
            Ok(Segment::decode(bytes))
        })?;
        let Some(seg) = decoded else {
            continue; // malformed frame dropped
        };
        events += 1;
        component_mut::<Lwip>(this).segments_rx += 1;
        handle_segment(sys, this, &dev, frame_buf, &seg)?;
    }

    // ---- TX path -------------------------------------------------------
    events += flush_tx(sys, this, &dev, frame_buf)?;
    Ok(Value::I64(events))
}

fn send_segment(
    sys: &mut System,
    this: &mut dyn Component,
    dev: &NetdevProxy,
    frame_buf: VAddr,
    seg: &Segment,
) -> Result<()> {
    sys.charge(500); // per-segment stack processing
                     // pbuf pool management: with ALLOC wired, TX buffers are drawn from
                     // the system-wide allocator and recycled periodically.
    let buf = {
        let st = component_mut::<Lwip>(this);
        st.segments_since_refill += 1;
        let needs_refill = st.alloc.is_some()
            && (st.tx_buf.is_null() || st.segments_since_refill >= PBUF_REFILL_SEGMENTS);
        if needs_refill {
            let (alloc, old, old_wid) = (st.alloc.expect("checked"), st.tx_buf, st.tx_wid);
            let page = alloc.palloc(sys, 1)?;
            let wid = sys.window_init();
            sys.window_add(wid, page, 4096)?;
            sys.window_open(wid, dev.cid())?;
            if !old.is_null() {
                // retire the old pbuf's window *before* the page goes
                // back to ALLOC: its descriptor must not keep covering
                // memory this cubicle no longer owns
                if let Some(w) = old_wid {
                    sys.window_destroy(w)?;
                }
                alloc.pfree(sys, old, 1)?;
            }
            let st = component_mut::<Lwip>(this);
            st.tx_buf = page;
            st.tx_wid = Some(wid);
            st.segments_since_refill = 0;
            page
        } else if st.tx_buf.is_null() {
            frame_buf
        } else {
            st.tx_buf
        }
    };
    let bytes = seg.encode();
    sys.write(buf, &bytes)?;
    let r = dev.tx(sys, buf, bytes.len())?;
    debug_assert!(r >= 0, "device window is open");
    component_mut::<Lwip>(this).segments_tx += 1;
    Ok(())
}

fn handle_segment(
    sys: &mut System,
    this: &mut dyn Component,
    dev: &NetdevProxy,
    frame_buf: VAddr,
    seg: &Segment,
) -> Result<()> {
    // Connection lookup by (local, remote) port pair.
    let conn = {
        let st = component_mut::<Lwip>(this);
        st.find_conn(seg.dport, seg.sport)
    };
    if seg.has(flags::SYN) && conn.is_none() {
        let listener = {
            let st = component_mut::<Lwip>(this);
            st.find_listener(seg.dport)
        };
        if listener.is_some() {
            let tcb = Tcb {
                state: TcpState::SynRcvd,
                local_port: seg.dport,
                remote_port: seg.sport,
                rcv_nxt: seg.seq.wrapping_add(1),
                snd_nxt: ISS.wrapping_add(1),
                snd_una: ISS,
                peer_wnd: u32::from(seg.wnd),
                send_queue: VecDeque::new(),
                recv_queue: VecDeque::new(),
                fin_pending: false,
                fin_sent: false,
            };
            let reply = Segment {
                sport: seg.dport,
                dport: seg.sport,
                seq: ISS,
                ack: tcb.rcv_nxt,
                flags: flags::SYN | flags::ACK,
                wnd: RCV_WND,
                payload: Vec::new(),
            };
            let st = component_mut::<Lwip>(this);
            st.alloc_fd(Socket::Conn(tcb));
            send_segment(sys, this, dev, frame_buf, &reply)?;
        }
        return Ok(());
    }
    let Some(idx) = conn else {
        return Ok(()); // segment for no one: dropped
    };

    let mut ack_needed = false;
    let mut established_now = false;
    {
        let st = component_mut::<Lwip>(this);
        let Some(Socket::Conn(tcb)) = st.sockets[idx].as_mut() else {
            unreachable!()
        };
        if seg.has(flags::ACK) {
            // advance the unacked horizon
            let acked = seg.ack.wrapping_sub(tcb.snd_una);
            if acked > 0 && acked <= tcb.inflight().wrapping_add(1) {
                tcb.snd_una = seg.ack;
            }
            tcb.peer_wnd = u32::from(seg.wnd);
            if tcb.state == TcpState::SynRcvd {
                tcb.state = TcpState::Established;
                established_now = true;
            }
        }
        if !seg.payload.is_empty() {
            if seg.seq == tcb.rcv_nxt {
                tcb.recv_queue.extend(seg.payload.iter());
                tcb.rcv_nxt = tcb.rcv_nxt.wrapping_add(seg.payload.len() as u32);
            }
            ack_needed = true; // ack even duplicates (keeps the peer moving)
        }
        if seg.has(flags::FIN) && seg.seq == tcb.rcv_nxt {
            tcb.rcv_nxt = tcb.rcv_nxt.wrapping_add(1);
            tcb.state = TcpState::CloseWait;
            ack_needed = true;
        }
        if seg.has(flags::RST) {
            tcb.state = TcpState::Closed;
        }
    }
    if established_now {
        // queue the connection on its listener's backlog
        let st = component_mut::<Lwip>(this);
        let (port, idx_copy) = {
            let Some(Socket::Conn(tcb)) = st.sockets[idx].as_ref() else {
                unreachable!()
            };
            (tcb.local_port, idx)
        };
        if let Some(l) = st.find_listener(port) {
            if let Some(Socket::Listener { backlog, .. }) = st.sockets[l].as_mut() {
                backlog.push_back(idx_copy);
            }
        }
    }
    if ack_needed {
        let reply = {
            let st = component_mut::<Lwip>(this);
            let Some(Socket::Conn(tcb)) = st.sockets[idx].as_ref() else {
                unreachable!()
            };
            Segment {
                sport: tcb.local_port,
                dport: tcb.remote_port,
                seq: tcb.snd_nxt,
                ack: tcb.rcv_nxt,
                flags: flags::ACK,
                wnd: RCV_WND,
                payload: Vec::new(),
            }
        };
        send_segment(sys, this, dev, frame_buf, &reply)?;
    }
    Ok(())
}

/// Lazily builds the [`TX_BATCH`]-page staging ring (and its `NETDEV`
/// window) used by batched flushes.
fn ensure_batch_ring(
    sys: &mut System,
    this: &mut dyn Component,
    dev: &NetdevProxy,
) -> Result<VAddr> {
    let (existing, alloc) = {
        let st = component_mut::<Lwip>(this);
        (st.tx_batch_buf, st.alloc)
    };
    if !existing.is_null() {
        return Ok(existing);
    }
    let base = match alloc {
        Some(a) => a.palloc(sys, TX_BATCH)?,
        None => sys.alloc_pages(TX_BATCH),
    };
    let wid = sys.window_init();
    sys.window_add(wid, base, TX_BATCH * 4096)?;
    sys.window_open(wid, dev.cid())?;
    let st = component_mut::<Lwip>(this);
    st.tx_batch_buf = base;
    st.tx_batch_wid = Some(wid);
    Ok(base)
}

/// Batched counterpart of [`send_segment`]: stages each segment in its
/// own ring slot, then moves the whole group to `NETDEV` under a single
/// cross-call dispatch. Per-segment stack-processing cycles are charged
/// exactly as on the unbatched path — only the crossing overhead is
/// amortised.
fn send_segments_batched(
    sys: &mut System,
    this: &mut dyn Component,
    dev: &NetdevProxy,
    segs: &[Segment],
) -> Result<()> {
    let ring = ensure_batch_ring(sys, this, dev)?;
    for chunk in segs.chunks(TX_BATCH) {
        let mut frames: Vec<(VAddr, usize)> = Vec::with_capacity(chunk.len());
        for (i, seg) in chunk.iter().enumerate() {
            sys.charge(500); // per-segment stack processing
            let slot = ring + i * 4096;
            let bytes = seg.encode();
            sys.write(slot, &bytes)?;
            frames.push((slot, bytes.len()));
        }
        for r in dev.tx_batch(sys, &frames)? {
            debug_assert!(r >= 0, "device window is open");
            let _ = r;
        }
        let st = component_mut::<Lwip>(this);
        st.segments_tx += chunk.len() as u64;
        st.segments_since_refill += chunk.len() as u64;
    }
    Ok(())
}

fn flush_tx(
    sys: &mut System,
    this: &mut dyn Component,
    dev: &NetdevProxy,
    frame_buf: VAddr,
) -> Result<i64> {
    let batching = sys.batching_enabled();
    let mut sent = 0i64;
    let nsockets = {
        let st = component_mut::<Lwip>(this);
        st.sockets.len()
    };
    for idx in 0..nsockets {
        let mut pending: Vec<Segment> = Vec::new();
        loop {
            let out = {
                let st = component_mut::<Lwip>(this);
                let Some(Socket::Conn(tcb)) = st.sockets[idx].as_mut() else {
                    break;
                };
                if tcb.state != TcpState::Established && tcb.state != TcpState::CloseWait {
                    break;
                }
                let window = tcb.peer_wnd.saturating_sub(tcb.inflight()) as usize;
                if !tcb.send_queue.is_empty() && window > 0 {
                    let take = tcb.send_queue.len().min(MSS).min(window);
                    let payload: Vec<u8> = tcb.send_queue.drain(..take).collect();
                    let seg = Segment {
                        sport: tcb.local_port,
                        dport: tcb.remote_port,
                        seq: tcb.snd_nxt,
                        ack: tcb.rcv_nxt,
                        flags: flags::ACK,
                        wnd: RCV_WND,
                        payload,
                    };
                    tcb.snd_nxt = tcb.snd_nxt.wrapping_add(take as u32);
                    Some(seg)
                } else if tcb.fin_pending
                    && !tcb.fin_sent
                    && tcb.send_queue.is_empty()
                    && tcb.inflight() == 0
                {
                    let seg = Segment {
                        sport: tcb.local_port,
                        dport: tcb.remote_port,
                        seq: tcb.snd_nxt,
                        ack: tcb.rcv_nxt,
                        flags: flags::FIN | flags::ACK,
                        wnd: RCV_WND,
                        payload: Vec::new(),
                    };
                    tcb.snd_nxt = tcb.snd_nxt.wrapping_add(1);
                    tcb.fin_sent = true;
                    Some(seg)
                } else {
                    None
                }
            };
            match out {
                Some(seg) => {
                    if batching {
                        // Defer: the socket's whole burst goes out under
                        // batched dispatches after the drain loop.
                        pending.push(seg);
                    } else {
                        send_segment(sys, this, dev, frame_buf, &seg)?;
                    }
                    sent += 1;
                }
                None => break,
            }
        }
        if !pending.is_empty() {
            send_segments_batched(sys, this, dev, &pending)?;
        }
    }
    Ok(sent)
}

/// Typed caller-side proxy for the `LWIP` socket API.
#[derive(Clone, Copy, Debug)]
pub struct LwipProxy {
    cid: CubicleId,
    init: EntryId,
    socket: EntryId,
    bind: EntryId,
    listen: EntryId,
    accept: EntryId,
    recv: EntryId,
    send: EntryId,
    close: EntryId,
    poll: EntryId,
}

impl LwipProxy {
    /// Resolves the proxy from the loaded component.
    ///
    /// # Errors
    ///
    /// [`cubicle_core::CubicleError::NoSuchEntry`] when the image does
    /// not export the expected symbols.
    pub fn resolve(loaded: &LoadedComponent) -> Result<LwipProxy> {
        Ok(LwipProxy {
            cid: loaded.cid,
            init: loaded.entry("lwip_init")?,
            socket: loaded.entry("lwip_socket")?,
            bind: loaded.entry("lwip_bind")?,
            listen: loaded.entry("lwip_listen")?,
            accept: loaded.entry("lwip_accept")?,
            recv: loaded.entry("lwip_recv")?,
            send: loaded.entry("lwip_send")?,
            close: loaded.entry("lwip_close")?,
            poll: loaded.entry("lwip_poll")?,
        })
    }

    /// The `LWIP` cubicle's ID.
    pub fn cid(&self) -> CubicleId {
        self.cid
    }

    /// `lwip_init` — allocates the device staging buffer. Call once at
    /// boot after wiring [`Lwip::set_netdev`].
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn init(&self, sys: &mut System) -> Result<i64> {
        Ok(sys.cross_call(self.init, &[])?.as_i64())
    }

    /// Creates a socket.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn socket(&self, sys: &mut System) -> Result<i64> {
        Ok(sys.cross_call(self.socket, &[])?.as_i64())
    }

    /// Binds to a port.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn bind(&self, sys: &mut System, fd: i64, port: u16) -> Result<i64> {
        Ok(sys
            .cross_call(self.bind, &[Value::I64(fd), Value::I64(i64::from(port))])?
            .as_i64())
    }

    /// Starts listening.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn listen(&self, sys: &mut System, fd: i64) -> Result<i64> {
        Ok(sys.cross_call(self.listen, &[Value::I64(fd)])?.as_i64())
    }

    /// Accepts a pending connection (`-EWOULDBLOCK` when none).
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn accept(&self, sys: &mut System, fd: i64) -> Result<i64> {
        Ok(sys.cross_call(self.accept, &[Value::I64(fd)])?.as_i64())
    }

    /// Receives into caller memory (the caller must window `buf`).
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn recv(&self, sys: &mut System, fd: i64, buf: VAddr, n: usize) -> Result<i64> {
        Ok(sys
            .cross_call(self.recv, &[Value::I64(fd), Value::buf_out(buf, n)])?
            .as_i64())
    }

    /// Sends from caller memory (the caller must window `buf`). Returns
    /// the bytes accepted into the 64 KiB send buffer.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn send(&self, sys: &mut System, fd: i64, buf: VAddr, n: usize) -> Result<i64> {
        Ok(sys
            .cross_call(self.send, &[Value::I64(fd), Value::buf_in(buf, n)])?
            .as_i64())
    }

    /// Sends several caller buffers to `fd` under one batched
    /// cross-cubicle dispatch (one trampoline/PKRU round trip for the
    /// group) — the response header+body fast path. Returns one
    /// bytes-accepted-or-`-errno` result per buffer.
    ///
    /// # Errors
    ///
    /// Kernel errors from the batched cross-cubicle call.
    pub fn send_batch(
        &self,
        sys: &mut System,
        fd: i64,
        bufs: &[(VAddr, usize)],
    ) -> Result<Vec<i64>> {
        let elems: Vec<[Value; 2]> = bufs
            .iter()
            .map(|&(addr, len)| [Value::I64(fd), Value::buf_in(addr, len)])
            .collect();
        let refs: Vec<&[Value]> = elems.iter().map(|e| e.as_slice()).collect();
        Ok(sys
            .cross_call_batch(self.send, &refs)?
            .iter()
            .map(|v| v.as_i64())
            .collect())
    }

    /// Closes a socket (FIN after the send queue drains).
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn close(&self, sys: &mut System, fd: i64) -> Result<i64> {
        Ok(sys.cross_call(self.close, &[Value::I64(fd)])?.as_i64())
    }

    /// One event-loop iteration (RX drain + TX flush).
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn poll(&self, sys: &mut System) -> Result<i64> {
        Ok(sys.cross_call(self.poll, &[])?.as_i64())
    }
}

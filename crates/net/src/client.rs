//! Host-side client endpoint: the external load generator.
//!
//! The paper drives NGINX with `siege` from outside the library OS. In
//! the simulation, the outside world is host-side Rust: [`SimClient`]
//! speaks the simplified TCP of [`crate::frame`] directly on the
//! `NETDEV` wire queues and charges wall-clock costs for the network
//! itself through a [`WireModel`], so that end-to-end latencies include
//! propagation and bandwidth as well as the server's (simulated) CPU.

use crate::frame::{flags, Segment, MSS};
use crate::netdev::Netdev;
use cubicle_core::System;
use std::collections::VecDeque;

/// Network cost model (charged on the simulated clock).
#[derive(Clone, Copy, Debug)]
pub struct WireModel {
    /// Propagation + peer processing per direction change (half RTT).
    pub hop_cycles: u64,
    /// Serialisation cost per payload byte (link bandwidth).
    pub per_byte_cycles: u64,
    /// Fixed client-side cost per request: load-generator work,
    /// connection management, kernel socket path on the client host.
    /// Dominates small-file latency (the paper's 5–6 ms floor).
    pub request_overhead_cycles: u64,
}

impl Default for WireModel {
    /// ≈0.1 ms per hop, ≈10 Gbit/s, and a ≈5 ms per-request client cost —
    /// calibrated to the paper's Figure 7 floor and slope on the 2.2 GHz
    /// testbed (see EXPERIMENTS.md).
    fn default() -> Self {
        WireModel {
            hop_cycles: 220_000,
            per_byte_cycles: 8,
            request_overhead_cycles: 11_000_000,
        }
    }
}

/// A TCP client living outside the library OS.
#[derive(Debug)]
pub struct SimClient {
    /// Client ephemeral port.
    pub port: u16,
    /// Server port to talk to.
    pub server_port: u16,
    wire: WireModel,
    netdev_slot: usize,
    seq: u32,
    rcv_nxt: u32,
    established: bool,
    fin_seen: bool,
    /// Response bytes received in order.
    pub received: Vec<u8>,
    /// Bytes waiting to be sent once established.
    pending: VecDeque<u8>,
    syn_sent: bool,
    advertised_wnd: u16,
}

impl SimClient {
    /// Creates a client bound to the netdev in registry slot
    /// `netdev_slot`.
    pub fn new(netdev_slot: usize, port: u16, server_port: u16, wire: WireModel) -> SimClient {
        SimClient {
            port,
            server_port,
            wire,
            netdev_slot,
            seq: 5_000,
            rcv_nxt: 0,
            established: false,
            fin_seen: false,
            received: Vec::new(),
            pending: VecDeque::new(),
            syn_sent: false,
            advertised_wnd: u16::MAX,
        }
    }

    /// Is the connection established?
    pub fn is_established(&self) -> bool {
        self.established
    }

    /// Did the server send FIN (response complete)?
    pub fn fin_seen(&self) -> bool {
        self.fin_seen
    }

    /// Caps the client's advertised receive window (flow-control tests).
    pub fn set_window(&mut self, wnd: u16) {
        self.advertised_wnd = wnd;
    }

    /// Queues request bytes (sent after the handshake completes).
    pub fn send(&mut self, data: &[u8]) {
        self.pending.extend(data);
    }

    fn push_to_server(&self, sys: &mut System, seg: &Segment) {
        let bytes = seg.encode();
        sys.charge(self.wire.per_byte_cycles * seg.payload.len() as u64);
        sys.with_component_mut::<Netdev, _>(self.netdev_slot, |dev, _| {
            dev.rx_wire.push_back(bytes);
        })
        .expect("netdev slot");
    }

    fn segment(&self, seq: u32, flag_bits: u8, payload: Vec<u8>) -> Segment {
        Segment {
            sport: self.port,
            dport: self.server_port,
            seq,
            ack: self.rcv_nxt,
            flags: flag_bits,
            wnd: self.advertised_wnd,
            payload,
        }
    }

    /// One client-side step: receive every frame the server has emitted,
    /// ack data, progress the handshake, and transmit pending request
    /// bytes. Charges one hop per direction that carried traffic.
    /// Returns the number of frames processed.
    pub fn pump(&mut self, sys: &mut System) -> usize {
        // collect the server's outbound frames
        let frames: Vec<Vec<u8>> = sys
            .with_component_mut::<Netdev, _>(self.netdev_slot, |dev, _| {
                dev.tx_wire.drain(..).collect()
            })
            .expect("netdev slot");
        let mut processed = 0;
        let mut sent_any = false;
        if !frames.is_empty() {
            sys.charge(self.wire.hop_cycles); // server → client propagation
        }
        let mut foreign: Vec<Vec<u8>> = Vec::new();
        for bytes in frames {
            let Some(seg) = Segment::decode(&bytes) else {
                continue;
            };
            if seg.dport != self.port {
                // traffic for another endpoint: leave it on the wire
                foreign.push(bytes);
                continue;
            }
            processed += 1;
            sys.charge(self.wire.per_byte_cycles * seg.payload.len() as u64);
            if seg.has(flags::SYN) && seg.has(flags::ACK) {
                self.rcv_nxt = seg.seq.wrapping_add(1);
                self.seq = self.seq.wrapping_add(1); // our SYN is acked
                self.established = true;
                let ack = self.segment(self.seq, flags::ACK, Vec::new());
                self.push_to_server(sys, &ack);
                sent_any = true;
                continue;
            }
            if !seg.payload.is_empty() && seg.seq == self.rcv_nxt {
                self.received.extend_from_slice(&seg.payload);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                let ack = self.segment(self.seq, flags::ACK, Vec::new());
                self.push_to_server(sys, &ack);
                sent_any = true;
            }
            if seg.has(flags::FIN) && seg.seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.fin_seen = true;
                let ack = self.segment(self.seq, flags::ACK, Vec::new());
                self.push_to_server(sys, &ack);
                sent_any = true;
            }
        }
        // connection initiation / request transmission
        if !self.syn_sent {
            let syn = self.segment(self.seq, flags::SYN, Vec::new());
            self.push_to_server(sys, &syn);
            self.syn_sent = true;
            sent_any = true;
        } else if self.established {
            while !self.pending.is_empty() {
                let take = self.pending.len().min(MSS);
                let payload: Vec<u8> = self.pending.drain(..take).collect();
                let n = payload.len() as u32;
                let seg = self.segment(self.seq, flags::ACK, payload);
                self.push_to_server(sys, &seg);
                self.seq = self.seq.wrapping_add(n);
                sent_any = true;
            }
        }
        if sent_any {
            sys.charge(self.wire.hop_cycles); // client → server propagation
        }
        if !foreign.is_empty() {
            sys.with_component_mut::<Netdev, _>(self.netdev_slot, |dev, _| {
                for (i, bytes) in foreign.into_iter().enumerate() {
                    dev.tx_wire.insert(i, bytes);
                }
            })
            .expect("netdev slot");
        }
        processed
    }
}

//! # cubicle-net — `NETDEV` and `LWIP` cubicles
//!
//! The network half of the paper's NGINX deployment (Figure 5): the
//! network device driver (`NETDEV`) and the TCP/IP stack (`LWIP`) are
//! mutually isolated cubicles; the application reaches sockets through
//! cross-cubicle calls into `LWIP`, which reaches the device through
//! cross-cubicle calls into `NETDEV` — the two hottest edges of
//! Figure 5 (6,991k and 1,948k calls).
//!
//! The properties that shape Figure 7 are reproduced faithfully: MSS
//! (1460 B) segmentation, a 64 KiB send buffer, ack-clocked flow control,
//! and a poll-driven single-threaded event loop. See `DESIGN.md` for the
//! deliberate simplifications (no IP layer, reliable ordered wire, no
//! retransmission).

mod client;
pub mod frame;
mod lwip;
mod netdev;

pub use client::{SimClient, WireModel};
pub use frame::{Segment, MSS};
pub use lwip::{
    image as lwip_image, Lwip, LwipProxy, PBUF_REFILL_SEGMENTS, RCV_WND, SND_BUF, TX_BATCH,
};
pub use netdev::{image as netdev_image, Netdev, NetdevProxy, MAX_FRAME, RING_SLOTS};

use cubicle_core::{Result, System};

/// Handles to the booted network stack.
#[derive(Clone, Copy, Debug)]
pub struct NetStack {
    /// Socket API proxy.
    pub lwip: LwipProxy,
    /// Device proxy (rarely used directly by applications).
    pub netdev: NetdevProxy,
    /// Registry slot of `NETDEV` (wire access for the host-side client).
    pub netdev_slot: usize,
    /// Registry slot of `LWIP` (statistics access).
    pub lwip_slot: usize,
}

/// Loads `NETDEV` and `LWIP` and wires them together.
///
/// # Errors
///
/// Loader or initialisation errors.
pub fn boot_net(sys: &mut System) -> Result<NetStack> {
    let dev_loaded = sys.load(netdev_image(), Box::new(Netdev::default()))?;
    let netdev = NetdevProxy::resolve(&dev_loaded)?;
    let lwip_loaded = sys.load(lwip_image(), Box::new(Lwip::default()))?;
    let lwip = LwipProxy::resolve(&lwip_loaded)?;
    sys.with_component_mut::<Lwip, _>(lwip_loaded.slot, |l, _| l.set_netdev(netdev))
        .expect("lwip slot holds Lwip");
    let r = lwip.init(sys)?;
    if r != 0 {
        return Err(cubicle_core::CubicleError::Component(format!(
            "lwip_init failed: {r}"
        )));
    }
    Ok(NetStack {
        lwip,
        netdev,
        netdev_slot: dev_loaded.slot,
        lwip_slot: lwip_loaded.slot,
    })
}

//! Wire format of the simulated network: a simplified TCP segment.
//!
//! The evaluation needs a transport with the properties that shape
//! Figure 7 — MSS-sized segmentation, a bounded send buffer, ack-clocked
//! flow control — not a byte-exact TCP/IP implementation. Segments
//! therefore carry a compact 16-byte header (ports, seq/ack numbers,
//! flags, receive window) and no IP layer or checksums; the wire is
//! reliable and ordered. Every simplification is noted in DESIGN.md.

/// Maximum TCP segment payload (Ethernet MTU 1500 − 40 bytes of headers,
/// like the paper's LWIP).
pub const MSS: usize = 1460;

/// Header length in bytes.
pub const HEADER_LEN: usize = 16;

/// Segment flags.
pub mod flags {
    /// Connection request.
    pub const SYN: u8 = 0x01;
    /// Acknowledgement field is valid.
    pub const ACK: u8 = 0x02;
    /// Sender is done.
    pub const FIN: u8 = 0x04;
    /// Reset.
    pub const RST: u8 = 0x08;
}

/// A simplified TCP segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgement number (next expected byte), valid with `ACK`.
    pub ack: u32,
    /// Flag bits.
    pub flags: u8,
    /// Receive window in bytes.
    pub wnd: u16,
    /// Payload.
    pub payload: Vec<u8>,
}

impl Segment {
    /// Serialises the segment to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.sport.to_be_bytes());
        out.extend_from_slice(&self.dport.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(self.flags);
        out.push(0);
        out.extend_from_slice(&self.wnd.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a segment from wire bytes.
    ///
    /// Returns `None` for runt frames or oversized payloads.
    pub fn decode(bytes: &[u8]) -> Option<Segment> {
        if bytes.len() < HEADER_LEN || bytes.len() > HEADER_LEN + MSS {
            return None;
        }
        Some(Segment {
            sport: u16::from_be_bytes([bytes[0], bytes[1]]),
            dport: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            ack: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            flags: bytes[12],
            wnd: u16::from_be_bytes([bytes[14], bytes[15]]),
            payload: bytes[HEADER_LEN..].to_vec(),
        })
    }

    /// Does the segment carry `flag`?
    pub fn has(&self, flag: u8) -> bool {
        self.flags & flag != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Segment {
        Segment {
            sport: 49152,
            dport: 80,
            seq: 1_000_000,
            ack: 42,
            flags: flags::ACK | flags::SYN,
            wnd: 65_535,
            payload: b"GET / HTTP/1.0\r\n\r\n".to_vec(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = seg();
        assert_eq!(Segment::decode(&s.encode()), Some(s));
    }

    #[test]
    fn empty_payload_round_trip() {
        let mut s = seg();
        s.payload.clear();
        assert_eq!(Segment::decode(&s.encode()), Some(s));
    }

    #[test]
    fn max_payload_round_trip() {
        let mut s = seg();
        s.payload = vec![0xAB; MSS];
        assert_eq!(Segment::decode(&s.encode()), Some(s));
    }

    #[test]
    fn runt_and_oversize_rejected() {
        assert_eq!(Segment::decode(&[0u8; HEADER_LEN - 1]), None);
        assert_eq!(Segment::decode(&vec![0u8; HEADER_LEN + MSS + 1]), None);
    }

    #[test]
    fn flags_queryable() {
        let s = seg();
        assert!(s.has(flags::SYN));
        assert!(s.has(flags::ACK));
        assert!(!s.has(flags::FIN));
    }
}

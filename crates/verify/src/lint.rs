//! Pass 1 rules: TCB confinement, ambient authority, privileged APIs.
//!
//! Runs over the token stream of every *component* crate's `src/` tree.
//! Test directories are exempt by design: integration tests are host-side
//! harness code (they boot kernels, seed corruption, measure), not code
//! that runs inside a cubicle.

use crate::lexer::{lex, Spanned, Tok};
use crate::report::{Finding, Rule};
use std::path::Path;

/// Crates whose sources model *untrusted components* — everything the
/// paper loads into a cubicle. `crates/mpk` and `crates/core` are the
/// TCB (machine model + kernel) and are exempt from the source lint the
/// same way the loader itself is exempt from its own binary scan.
pub const COMPONENT_CRATES: &[&str] = &["vfs", "ramfs", "net", "sqldb", "httpd", "ukbase", "ipc"];

/// First path segments under `std::` that grant ambient authority. A
/// component reaching for any of these bypasses the simulated kernel the
/// way a real component calling `open(2)` directly would bypass
/// CubicleOS' VFS.
const AMBIENT_STD: &[&str] = &["fs", "net", "process"];

/// First path segments under `std::` (or `core::`) that grant *ambient
/// concurrency*: host threads and host synchronisation. Cubicles run
/// only when the monitor's core scheduler dispatches them; a component
/// spawning a `std::thread` or hiding state behind a `Mutex`/atomic
/// would race the monitor outside its lock discipline — exactly what
/// CubicleSan exists to rule out.
const AMBIENT_SYNC: &[&str] = &["thread", "sync"];

/// Identifiers naming privileged machine/kernel facilities. Mentioning
/// one in a component is the source-level analog of a `wrpkru` byte
/// sequence in a binary: grounds for rejection regardless of context.
const PRIVILEGED: &[&str] = &[
    // the machine model and its raw knobs
    "Machine",
    "Pkru",
    "ProtKey",
    "wrpkru",
    "set_pkru",
    "set_pkru_at_load",
    "set_page_key",
    "set_page_key_at_load",
    "set_page_flags",
    "map_page",
    "unmap_page",
    "mapped_pages",
    "pages_with_key",
    // kernel internals a component must never steer
    "retag",
    "pkru_for",
    "PARKED_KEY",
    // seeded-corruption hooks (test-only by contract)
    "corrupt_machine_for_test",
    "corrupt_cubicle_key_for_test",
];

/// Lints one source file (already read to a string). `file` is only used
/// to label findings.
pub fn lint_source(file: &Path, src: &str) -> Vec<Finding> {
    let toks = lex(src);
    let mut findings = Vec::new();
    let push = |findings: &mut Vec<Finding>, rule, line, message: String| {
        findings.push(Finding {
            rule,
            file: file.to_path_buf(),
            line,
            message,
        });
    };

    for (i, s) in toks.iter().enumerate() {
        let Tok::Ident(name) = &s.tok else { continue };
        match name.as_str() {
            "unsafe" => push(
                &mut findings,
                Rule::TcbConfinement,
                s.line,
                "`unsafe` outside the TCB".into(),
            ),
            "transmute" => push(
                &mut findings,
                Rule::TcbConfinement,
                s.line,
                "`transmute` outside the TCB".into(),
            ),
            "static" => {
                if let Some(Spanned {
                    tok: Tok::Ident(next),
                    ..
                }) = toks.get(i + 1)
                {
                    if next == "mut" {
                        push(
                            &mut findings,
                            Rule::TcbConfinement,
                            s.line,
                            "`static mut` outside the TCB".into(),
                        );
                    }
                }
            }
            "std" | "core" if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::PathSep) => {
                check_std_path(name == "std", &toks, i + 2, &mut findings, file);
            }
            banned if PRIVILEGED.contains(&banned) => push(
                &mut findings,
                Rule::PrivilegedApi,
                s.line,
                format!("`{banned}` is a privileged machine/kernel API"),
            ),
            _ => {}
        }
    }
    findings
}

/// Checks what follows `std::` (or `core::`, with `is_std` false) at
/// token index `i`: either a single segment (`std::fs::File`) or a
/// use-group (`std::{fs, io}`), whose *leading* segments are what grant
/// authority.
fn check_std_path(
    is_std: bool,
    toks: &[Spanned],
    i: usize,
    findings: &mut Vec<Finding>,
    file: &Path,
) {
    let root = if is_std { "std" } else { "core" };
    let mut ambient = |seg: &str, line: usize| {
        if is_std && AMBIENT_STD.contains(&seg) {
            findings.push(Finding {
                rule: Rule::AmbientAuthority,
                file: file.to_path_buf(),
                line,
                message: format!(
                    "`std::{seg}` is ambient authority — route through the simulated kernel"
                ),
            });
        }
        if AMBIENT_SYNC.contains(&seg) {
            findings.push(Finding {
                rule: Rule::AmbientConcurrency,
                file: file.to_path_buf(),
                line,
                message: format!(
                    "`{root}::{seg}` is ambient concurrency — cubicles are scheduled by \
                     the monitor, never by host threads"
                ),
            });
        }
    };
    match toks.get(i).map(|t| (&t.tok, t.line)) {
        Some((Tok::Ident(seg), line)) => ambient(seg, line),
        Some((Tok::OpenBrace, _)) => {
            // `use std::{fs, io::Read, thread};` — check each segment
            // that directly follows the opening brace or a depth-1 comma.
            let mut depth = 1;
            let mut expect_segment = true;
            let mut j = i + 1;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::OpenBrace => depth += 1,
                    Tok::CloseBrace => depth -= 1,
                    Tok::Comma if depth == 1 => expect_segment = true,
                    Tok::Ident(seg) => {
                        if expect_segment {
                            ambient(seg, toks[j].line);
                        }
                        expect_segment = false;
                    }
                    _ => expect_segment = false,
                }
                j += 1;
            }
        }
        _ => {}
    }
}

/// Lints every `.rs` file under `crate_dir/src`, recursively.
///
/// Returns the findings plus the number of files scanned.
///
/// # Errors
///
/// Propagates I/O errors from directory walking / file reading.
pub fn lint_crate_sources(crate_dir: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut findings = Vec::new();
    let mut scanned = 0;
    let src = crate_dir.join("src");
    let mut stack = vec![src];
    while let Some(dir) = stack.pop() {
        // collect and sort for deterministic output order
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path)?;
                findings.extend(lint_source(&path, &text));
                scanned += 1;
            }
        }
    }
    Ok((findings, scanned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn rules(src: &str) -> Vec<Rule> {
        lint_source(&PathBuf::from("t.rs"), src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn unsafe_and_transmute_fire() {
        assert_eq!(
            rules("fn f() { unsafe { std::mem::transmute::<u8, i8>(0) } }"),
            vec![Rule::TcbConfinement, Rule::TcbConfinement]
        );
    }

    #[test]
    fn static_mut_fires_but_static_alone_does_not() {
        assert_eq!(rules("static mut X: u8 = 0;"), vec![Rule::TcbConfinement]);
        assert!(rules("static X: u8 = 0;").is_empty());
        assert!(rules("fn f(s: &'static str) {}").is_empty());
    }

    #[test]
    fn ambient_paths_fire() {
        assert_eq!(rules("use std::fs::File;"), vec![Rule::AmbientAuthority]);
        assert_eq!(
            rules("std::process::exit(1);"),
            vec![Rule::AmbientAuthority]
        );
        assert_eq!(
            rules("use std::{io, fs, thread};"),
            vec![Rule::AmbientAuthority, Rule::AmbientConcurrency]
        );
        // `fs` deeper in a group names someone else's module, not std's
        assert!(rules("use std::{io::Read};").is_empty());
        assert!(rules("use std::collections::HashMap;").is_empty());
    }

    #[test]
    fn ambient_concurrency_fires() {
        assert_eq!(
            rules("std::thread::spawn(|| {});"),
            vec![Rule::AmbientConcurrency]
        );
        assert_eq!(
            rules("use std::sync::Mutex;"),
            vec![Rule::AmbientConcurrency]
        );
        assert_eq!(
            rules("use core::sync::atomic::AtomicUsize;"),
            vec![Rule::AmbientConcurrency]
        );
        // `core::` is only concurrency-checked, never ambient authority
        assert!(rules("use core::fmt;").is_empty());
        assert!(rules("core::mem::swap(&mut a, &mut b);").is_empty());
    }

    #[test]
    fn privileged_names_fire() {
        assert_eq!(
            rules("use cubicle_mpk::Machine;"),
            vec![Rule::PrivilegedApi]
        );
        assert_eq!(rules("m.set_page_key(a, k);"), vec![Rule::PrivilegedApi]);
    }

    #[test]
    fn banned_names_in_comments_and_strings_do_not_fire() {
        assert!(rules("// Machine unsafe std::fs transmute").is_empty());
        assert!(rules(r#"let doc = "set_pkru is forbidden";"#).is_empty());
        assert!(rules(r###"let doc = r#"static mut std::net"#;"###).is_empty());
    }

    #[test]
    fn line_numbers_reported() {
        let f = lint_source(&PathBuf::from("t.rs"), "fn a() {}\nfn b() { unsafe {} }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }
}

//! A minimal, dependency-free Rust lexer for the isolation lint.
//!
//! The lint only needs identifiers and a little punctuation, but it must
//! *never* fire on banned names inside comments, string literals, raw
//! strings, byte strings or char literals — so the lexer understands all
//! of those, including nested block comments, `r#".."#` hash fences and
//! the lifetime-vs-char-literal ambiguity (`'static` vs `'s'`). It is
//! deliberately lossy everywhere else: numbers and most punctuation are
//! reduced to [`Tok::Other`].

/// One token, stripped of everything the lint does not need.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// The `::` path separator.
    PathSep,
    /// `{`
    OpenBrace,
    /// `}`
    CloseBrace,
    /// `,`
    Comma,
    /// Any other punctuation (single character).
    Other(char),
    /// A `// verify: …` marker comment — the one comment form the lint
    /// *keeps*, because the discipline and determinism passes read them
    /// as annotations (`lock-held(page_meta)`, `order-ok`, …). Payload
    /// is the trimmed text after `verify:`.
    Marker(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into the token stream the lint rules run over.
pub fn lex(src: &str) -> Vec<Spanned> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1;
    let mut i = 0;

    // Advances past `b[i]`, keeping the line count right.
    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];

        // ── whitespace ───────────────────────────────────────────────
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // ── comments ─────────────────────────────────────────────────
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            // `// verify: …` (also `/// verify: …`) survives as a marker
            // token; every other comment is dropped.
            let text: String = b[start..i].iter().collect();
            let body = text.trim_start_matches('/').trim_start();
            if let Some(rest) = body.strip_prefix("verify:") {
                toks.push(Spanned {
                    tok: Tok::Marker(rest.trim().to_string()),
                    line,
                });
            }
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            i += 2;
            let mut depth = 1;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump!();
                }
            }
            continue;
        }

        // ── string-ish literals ──────────────────────────────────────
        // Raw (byte) strings: r"..", r#".."#, br".., br#".."# — no
        // escapes; closed by a quote followed by the same number of
        // hashes as the opener.
        let raw_prefix = if c == 'r' && !at_ident_boundary(&b, i) {
            Some(1)
        } else if c == 'b' && i + 1 < b.len() && b[i + 1] == 'r' && !at_ident_boundary(&b, i) {
            Some(2)
        } else {
            None
        };
        if let Some(skip) = raw_prefix {
            let mut j = i + skip;
            let mut hashes = 0;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == '"' {
                // definitely a raw string: scan to the closing fence
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == '"' {
                        let mut k = i + 1;
                        let mut seen = 0;
                        while k < b.len() && b[k] == '#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            i = k;
                            break 'raw;
                        }
                    }
                    bump!();
                }
                continue;
            }
            // not a raw string (e.g. the identifier `result`): fall
            // through to identifier lexing below
        }
        // Byte strings b".." share escape handling with plain strings.
        if c == '"' || (c == 'b' && i + 1 < b.len() && b[i + 1] == '"' && !at_ident_boundary(&b, i))
        {
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < b.len() {
                if b[i] == '\\' {
                    // An escaped newline (line-continuation) still ends a
                    // source line — without this, every `\` continuation
                    // in a multi-line string shifts all later line
                    // numbers.
                    if b.get(i + 1) == Some(&'\n') {
                        line += 1;
                    }
                    i = (i + 2).min(b.len());
                    continue;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                bump!();
            }
            continue;
        }
        // Char literals vs lifetimes. b'x' first, then plain '.
        if c == 'b' && i + 1 < b.len() && b[i + 1] == '\'' && !at_ident_boundary(&b, i) {
            i += 1; // fall into the quote handling below as a char literal
        }
        if b[i] == '\'' {
            let next = b.get(i + 1).copied();
            match next {
                // lifetime or char-of-letter: scan the ident run and see
                // whether a closing quote follows immediately
                Some(n) if is_ident_start(n) => {
                    let mut j = i + 2;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    if j == i + 2 && b.get(j).copied() == Some('\'') {
                        i = j + 1; // 'x' — char literal
                    } else {
                        i = j; // 'static — lifetime, ident consumed too
                    }
                }
                // escaped char literal: '\n', '\'', '\u{..}'
                Some('\\') => {
                    i += 2; // quote + backslash
                    while i < b.len() && b[i] != '\'' {
                        bump!();
                    }
                    i += 1; // closing quote
                }
                // punctuation char literal: ' ', '(', …
                Some(_) => {
                    i += 2;
                    if i < b.len() && b[i] == '\'' {
                        i += 1;
                    }
                }
                None => i += 1,
            }
            continue;
        }

        // ── numbers (consumed so suffixes never look like idents) ────
        if c.is_ascii_digit() {
            i += 1;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            continue;
        }

        // ── identifiers / keywords ───────────────────────────────────
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            toks.push(Spanned {
                tok: Tok::Ident(b[start..i].iter().collect()),
                line,
            });
            continue;
        }

        // ── punctuation ──────────────────────────────────────────────
        let tok = if c == ':' && i + 1 < b.len() && b[i + 1] == ':' {
            i += 2;
            Tok::PathSep
        } else {
            i += 1;
            match c {
                '{' => Tok::OpenBrace,
                '}' => Tok::CloseBrace,
                ',' => Tok::Comma,
                other => Tok::Other(other),
            }
        };
        toks.push(Spanned { tok, line });
    }
    toks
}

/// `true` when `b[i]` continues an identifier started earlier (so an `r`
/// or `b` here cannot open a raw/byte literal — e.g. the `r` in `for`).
fn at_ident_boundary(b: &[char], i: usize) -> bool {
    i > 0 && is_ident_continue(b[i - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(name) => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_path_sep() {
        let toks = lex("use std::fs;");
        assert_eq!(toks[0].tok, Tok::Ident("use".into()));
        assert_eq!(toks[1].tok, Tok::Ident("std".into()));
        assert_eq!(toks[2].tok, Tok::PathSep);
        assert_eq!(toks[3].tok, Tok::Ident("fs".into()));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(idents("// unsafe transmute\nok"), vec!["ok"]);
        assert_eq!(
            idents("/* unsafe /* nested Machine */ more */ok"),
            vec!["ok"]
        );
    }

    #[test]
    fn strings_are_skipped() {
        assert_eq!(idents(r#"let x = "unsafe Machine";"#), vec!["let", "x"]);
        assert_eq!(idents(r#"let x = "esc \" unsafe";"#), vec!["let", "x"]);
        assert_eq!(idents("let x = b\"transmute\";"), vec!["let", "x"]);
    }

    #[test]
    fn raw_strings_are_skipped() {
        assert_eq!(idents(r##"let x = r"Machine";"##), vec!["let", "x"]);
        assert_eq!(
            idents(r###"let x = r#"set_pkru "quoted" inside"#;"###),
            vec!["let", "x"]
        );
        assert_eq!(idents(r###"let x = br#"std::fs"#;"###), vec!["let", "x"]);
    }

    #[test]
    fn r_identifiers_still_lex() {
        // `r` and `b` as ordinary identifier starts must not be eaten
        assert_eq!(
            idents("let result = builder;"),
            vec!["let", "result", "builder"]
        );
        assert_eq!(idents("for r in rs {}"), vec!["for", "r", "in", "rs"]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        assert_eq!(idents("let c = 'M';"), vec!["let", "c"]);
        assert_eq!(idents(r"let c = '\n';"), vec!["let", "c"]);
        assert_eq!(idents("let c = b'x';"), vec!["let", "c"]);
        // 'static is a lifetime: neither a stray `static` ident nor an
        // unterminated literal
        assert_eq!(
            idents("fn f(x: &'static str) {}"),
            vec!["fn", "f", "x", "str"]
        );
        assert_eq!(idents("fn g<'a>(x: &'a u8) {}"), vec!["fn", "g", "x", "u8"]);
    }

    #[test]
    fn numbers_do_not_leak_suffix_idents() {
        assert_eq!(idents("let x = 0u64 + 0x0F;"), vec!["let", "x"]);
    }

    #[test]
    fn line_numbers_track() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn line_numbers_survive_string_continuations() {
        // `\` at end of line inside a string literal consumes the
        // newline but the *source* line still advances.
        let toks = lex("let s = \"a\\\nb\";\nafter");
        let after = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("after".into()))
            .unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn verify_markers_survive_as_tokens() {
        let toks = lex("let x = 1; // verify: lock-held(page_meta)\nok");
        assert!(toks
            .iter()
            .any(|t| t.tok == Tok::Marker("lock-held(page_meta)".into())));
        let toks = lex(".iter() // verify: order-ok — sorted below");
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Marker(m) if m.starts_with("order-ok"))));
        // ordinary comments still vanish, even ones mentioning verify
        // mid-sentence
        assert!(lex("// we should verify: nothing")
            .iter()
            .all(|t| !matches!(t.tok, Tok::Marker(_))));
        assert!(lex("// plain comment").is_empty());
    }

    #[test]
    fn braces_and_commas() {
        let toks = lex("std::{fs, io}");
        assert!(toks.iter().any(|t| t.tok == Tok::OpenBrace));
        assert!(toks.iter().any(|t| t.tok == Tok::Comma));
        assert!(toks.iter().any(|t| t.tok == Tok::CloseBrace));
    }
}

//! Pass: the monitor's lock discipline, checked lexically.
//!
//! The multi-core monitor serialises four shared structures on the
//! [`MonitorLock`]s: page metadata, window descriptors, the window-grant
//! cache and the heap ledger. CubicleSan checks the discipline
//! *dynamically* (vector clocks + locksets over an actual run); this pass
//! is the static half: every **mutation site** of one of the four
//! structures in `crates/core/src/system.rs` must appear lexically inside
//! a matching lock-acquire scope, within the same function.
//!
//! The scope model is deliberately simple — a per-function counter per
//! lock, incremented on `lock_acquire(MonitorLock::X)` (or
//! `window_op_begin()`, which acquires the windows lock) and decremented
//! on the matching release. Helpers whose *caller* holds the lock are
//! exempted two ways, both of which the dynamic detector still covers at
//! runtime:
//!
//! * a `_locked` (or `_for_test`) suffix on the function name, the
//!   kernel's naming convention for lock-held helpers and seeded
//!   corruption hooks;
//! * a `// verify: lock-held(<structure>)` marker within two lines of
//!   the mutation.
//!
//! `#[cfg(test)] mod tests` blocks are skipped: unit tests poke kernels
//! from the host side, outside the monitor's concurrency model.
//!
//! [`MonitorLock`]: ../cubicle_core/enum.MonitorLock.html

use crate::lexer::{lex, Spanned, Tok};
use crate::report::{Finding, Rule};
use std::path::Path;

/// Lock variant idents, index-aligned with [`STRUCTURES`].
const LOCKS: [&str; 4] = ["PageMeta", "Windows", "GrantCache", "Ledger"];

/// Protected-structure names as used in `lock-held(...)` markers and
/// findings, index-aligned with [`LOCKS`].
const STRUCTURES: [&str; 4] = ["page_meta", "windows", "grant_cache", "ledger"];

/// Mutating methods on the `page_meta` map.
const PAGE_META_MUT: &[&str] = &[
    "insert", "remove", "get_mut", "retain", "clear", "entry", "drain",
];

/// Accessors through which every window mutation flows.
const WINDOW_MUT: &[&str] = &["window_mut", "window_init", "window_destroy"];

/// Mutating methods on the grant cache's `map` / `hits_by_accessor`.
const CACHE_MUT: &[&str] = &["insert", "remove", "retain", "clear", "entry", "drain"];

/// Mutating methods on a cubicle's `heap` sub-allocator.
const HEAP_MUT: &[&str] = &["alloc", "free", "reset", "add_region"];

/// How many lines a `lock-held` marker may sit from the mutation it
/// annotates.
const MARKER_RANGE: usize = 2;

/// Checks one source file (normally `crates/core/src/system.rs`).
/// `file` labels findings.
pub fn check_source(file: &Path, src: &str) -> Vec<Finding> {
    let all = lex(src);
    // Markers live in a side table; the scanning stream must not have
    // them interleaved (a marker between `heap` and `.add_region` would
    // break adjacency matching).
    let markers: Vec<(usize, String)> = all
        .iter()
        .filter_map(|s| match &s.tok {
            Tok::Marker(m) => Some((s.line, m.clone())),
            _ => None,
        })
        .collect();
    let toks: Vec<&Spanned> = all
        .iter()
        .filter(|s| !matches!(s.tok, Tok::Marker(_)))
        .collect();

    let ident = |i: usize| -> Option<&str> {
        toks.get(i).and_then(|s| match &s.tok {
            Tok::Ident(name) => Some(name.as_str()),
            _ => None,
        })
    };
    let other = |i: usize, c: char| toks.get(i).is_some_and(|s| s.tok == Tok::Other(c));
    let marker_near = |line: usize, structure: &str| {
        let want = format!("lock-held({structure})");
        markers
            .iter()
            .any(|(ml, m)| m.starts_with(&want) && ml.abs_diff(line) <= MARKER_RANGE)
    };

    let mut findings = Vec::new();
    let mut depth: i32 = 0;
    // (name, brace depth of the body) of the enclosing function.
    let mut cur_fn: Option<(String, i32)> = None;
    let mut pending_fn: Option<String> = None;
    // Depth at which a `mod tests` block opened (skip everything in it).
    let mut test_mod_until: Option<i32> = None;
    let mut pending_test_mod = false;
    let mut lock_depth = [0i32; 4];

    for i in 0..toks.len() {
        match &toks[i].tok {
            Tok::OpenBrace => {
                depth += 1;
                if pending_test_mod {
                    pending_test_mod = false;
                    test_mod_until = Some(depth);
                } else if let Some(name) = pending_fn.take() {
                    cur_fn = Some((name, depth));
                    lock_depth = [0; 4];
                }
                continue;
            }
            Tok::CloseBrace => {
                if test_mod_until == Some(depth) {
                    test_mod_until = None;
                }
                if cur_fn.as_ref().is_some_and(|(_, d)| *d == depth) {
                    cur_fn = None;
                }
                depth -= 1;
                continue;
            }
            _ => {}
        }
        if test_mod_until.is_some() {
            continue;
        }

        let Some(name) = ident(i) else { continue };
        match name {
            "fn" => {
                if let Some(next) = ident(i + 1) {
                    pending_fn = Some(next.to_string());
                }
                continue;
            }
            "mod" if ident(i + 1) == Some("tests") => {
                pending_test_mod = true;
                continue;
            }
            // ── lock scopes ──────────────────────────────────────────
            "lock_acquire" | "lock_release"
                if other(i + 1, '(') && ident(i + 2) == Some("MonitorLock") =>
            {
                if toks.get(i + 3).is_some_and(|s| s.tok == Tok::PathSep) {
                    if let Some(l) = ident(i + 4).and_then(|v| LOCKS.iter().position(|x| *x == v)) {
                        if name == "lock_acquire" {
                            lock_depth[l] += 1;
                        } else {
                            lock_depth[l] = (lock_depth[l] - 1).max(0);
                        }
                    }
                }
                continue;
            }
            // `window_op_begin()` / `window_op_end(start)` open and close
            // a windows-lock scope; the `(&mut self, …` shape of their
            // *definitions* does not match these call patterns.
            "window_op_begin" if other(i + 1, '(') && other(i + 2, ')') => {
                lock_depth[1] += 1;
                continue;
            }
            "window_op_end" if other(i + 1, '(') && ident(i + 2).is_some() => {
                lock_depth[1] = (lock_depth[1] - 1).max(0);
                continue;
            }
            _ => {}
        }

        // ── mutation sites ───────────────────────────────────────────
        let prev_dot = i >= 1 && other(i - 1, '.');
        let prev_sep = prev_dot || (i >= 1 && toks[i - 1].tok == Tok::PathSep);
        let recv = if i >= 2 { ident(i - 2) } else { None };
        let call = other(i + 1, '(');
        let mut hit: Option<usize> = None;
        if prev_sep && call {
            if recv == Some("page_meta") && PAGE_META_MUT.contains(&name) {
                hit = Some(0);
            } else if WINDOW_MUT.contains(&name) {
                hit = Some(1);
            } else if (recv == Some("map") || recv == Some("hits_by_accessor"))
                && CACHE_MUT.contains(&name)
            {
                hit = Some(2);
            } else if recv == Some("heap") && HEAP_MUT.contains(&name) {
                hit = Some(3);
            } else if name == "take" {
                // `mem::take(&mut …)` — whichever protected structure
                // the argument chain names is being replaced wholesale.
                let mut j = i + 2;
                let mut pdepth = 1;
                while j < toks.len() && pdepth > 0 {
                    match &toks[j].tok {
                        Tok::Other('(') => pdepth += 1,
                        Tok::Other(')') => pdepth -= 1,
                        Tok::Ident(arg) => {
                            let target = if arg == "heap" { "ledger" } else { arg };
                            if let Some(s) = STRUCTURES.iter().position(|x| *x == target) {
                                hit = Some(s);
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        // Plain assignments the method patterns cannot see: grant
        // accounting and allocator replacement.
        if hit.is_none() && (name == "heap_pages_granted" || (name == "heap" && prev_dot)) {
            let compound = (other(i + 1, '+') || other(i + 1, '-')) && other(i + 2, '=');
            let assign = other(i + 1, '=') && !other(i + 2, '=');
            if compound || assign {
                hit = Some(3);
            }
        }

        let Some(obj) = hit else { continue };
        let Some((fname, _)) = &cur_fn else { continue };
        if fname.ends_with("_locked") || fname.ends_with("_for_test") {
            continue;
        }
        if lock_depth[obj] > 0 {
            continue;
        }
        let line = toks[i].line;
        if marker_near(line, STRUCTURES[obj]) {
            continue;
        }
        findings.push(Finding {
            rule: Rule::LockDiscipline,
            file: file.to_path_buf(),
            line,
            message: format!(
                "mutation of {} (`{name}`) in fn `{fname}` outside a `MonitorLock::{}` \
                 section",
                STRUCTURES[obj], LOCKS[obj]
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        check_source(&PathBuf::from("system.rs"), src)
    }

    #[test]
    fn mutation_inside_lock_scope_is_clean() {
        let src = r#"
            fn map_fresh(&mut self) {
                let start = self.lock_acquire(MonitorLock::PageMeta);
                self.page_meta.insert(page, meta);
                self.lock_release(MonitorLock::PageMeta, start);
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn mutation_outside_lock_scope_fires() {
        let src = r#"
            fn sloppy(&mut self) {
                self.page_meta.insert(page, meta);
            }
        "#;
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::LockDiscipline);
        assert!(f[0].message.contains("page_meta"), "{}", f[0].message);
        assert!(f[0].message.contains("sloppy"), "{}", f[0].message);
    }

    #[test]
    fn release_closes_the_scope() {
        let src = r#"
            fn sloppy(&mut self) {
                let start = self.lock_acquire(MonitorLock::PageMeta);
                self.lock_release(MonitorLock::PageMeta, start);
                self.page_meta.remove(&page);
            }
        "#;
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn wrong_lock_does_not_cover() {
        let src = r#"
            fn sloppy(&mut self) {
                let start = self.lock_acquire(MonitorLock::Ledger);
                self.page_meta.insert(page, meta);
                self.lock_release(MonitorLock::Ledger, start);
            }
        "#;
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn window_op_scope_covers_window_mutations() {
        let src = r#"
            fn window_add(&mut self) {
                let wstart = self.window_op_begin();
                self.cubicles[0].window_mut(wid);
                self.window_op_end(wstart);
            }
            fn sloppy(&mut self) {
                self.cubicles[0].window_mut(wid);
            }
        "#;
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("sloppy"));
    }

    #[test]
    fn locked_suffix_and_marker_exempt() {
        let src = r#"
            fn resolve_fault_locked(&mut self) {
                self.page_meta.get_mut(&page);
            }
            fn record_holder(&mut self) {
                self.page_meta.get_mut(&page);
                // verify: lock-held(page_meta)
            }
            fn corrupt_quarantine_for_test(&mut self) {
                self.page_meta.remove(&page);
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn marker_for_wrong_structure_does_not_exempt() {
        let src = r#"
            fn sloppy(&mut self) {
                self.page_meta.get_mut(&page); // verify: lock-held(ledger)
            }
        "#;
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn ledger_assignments_and_take_are_seen() {
        let src = r#"
            fn quarantine_inner(&mut self) {
                let w = std::mem::take(&mut self.cubicles[0].windows);
                c.heap_pages_granted = 0;
            }
        "#;
        let f = run(src);
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("windows"), "{}", f[0].message);
        assert!(f[1].message.contains("ledger"), "{}", f[1].message);
    }

    #[test]
    fn comparisons_and_reads_do_not_fire() {
        let src = r#"
            fn fine(&mut self) {
                if c.heap_pages_granted + pages > limit { return; }
                if c.heap_pages_granted == 0 { return; }
                let m = self.page_meta.get(&page);
                let n = self.grant_cache.as_ref().map(|c| c.map.len());
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = r#"
            mod tests {
                fn poke() {
                    sys.page_meta.insert(page, meta);
                }
            }
        "#;
        assert!(run(src).is_empty());
    }
}

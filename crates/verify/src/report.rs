//! Structured findings produced by the source-level lint.

use std::fmt;
use std::path::PathBuf;

/// The lint rule a finding belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rule {
    /// `unsafe`, `transmute` or `static mut` outside the TCB
    /// (`crates/mpk`, `crates/core`).
    TcbConfinement,
    /// Ambient authority: `std::fs` / `std::net` / `std::process` /
    /// `std::thread` in a component — all I/O must route through the
    /// simulated kernel.
    AmbientAuthority,
    /// Naming a privileged machine/kernel API (`Machine`, `Pkru`,
    /// `set_page_key`, …) in a component — the source-level analog of the
    /// loader's `wrpkru` binary scan.
    PrivilegedApi,
    /// A `Cargo.toml` dependency edge outside the allow-listed component
    /// graph (e.g. a lateral `vfs → net` edge).
    DependencyGraph,
    /// Ambient concurrency: `std::thread` / `std::sync` /
    /// `core::sync::atomic` in a component — cubicles are scheduled by
    /// the monitor's core scheduler, never by host threads.
    AmbientConcurrency,
    /// A mutation of one of the monitor's four lock-protected structures
    /// (page metadata, windows, grant cache, ledger) outside a lexical
    /// lock-acquire scope in `crates/core/src/system.rs`.
    LockDiscipline,
    /// Unsorted iteration over a `HashMap`/`HashSet` in the TCB — replay
    /// determinism requires every observable order to be defined.
    Nondeterminism,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::TcbConfinement => "tcb-confinement",
            Rule::AmbientAuthority => "ambient-authority",
            Rule::PrivilegedApi => "privileged-api",
            Rule::DependencyGraph => "dependency-graph",
            Rule::AmbientConcurrency => "ambient-concurrency",
            Rule::LockDiscipline => "lock-discipline",
            Rule::Nondeterminism => "nondeterminism",
        })
    }
}

/// One lint violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number (0 for whole-file/manifest findings).
    pub line: usize,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Result of linting a whole workspace.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Report {
    /// All violations found.
    pub findings: Vec<Finding>,
    /// Rust source files scanned.
    pub files_scanned: usize,
    /// Crate manifests checked against the dependency allow-list.
    pub crates_checked: usize,
}

impl Report {
    /// `true` when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint: {} finding(s) over {} files, {} crates",
            self.findings.len(),
            self.files_scanned,
            self.crates_checked
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let finding = Finding {
            rule: Rule::AmbientAuthority,
            file: PathBuf::from("crates/vfs/src/lib.rs"),
            line: 12,
            message: "`std::fs` is ambient authority".into(),
        };
        assert_eq!(
            finding.to_string(),
            "crates/vfs/src/lib.rs:12: [ambient-authority] `std::fs` is ambient authority"
        );
        assert_eq!(Rule::TcbConfinement.to_string(), "tcb-confinement");
        assert_eq!(Rule::PrivilegedApi.to_string(), "privileged-api");
        assert_eq!(Rule::DependencyGraph.to_string(), "dependency-graph");
        assert_eq!(Rule::AmbientConcurrency.to_string(), "ambient-concurrency");
        assert_eq!(Rule::LockDiscipline.to_string(), "lock-discipline");
        assert_eq!(Rule::Nondeterminism.to_string(), "nondeterminism");
    }

    #[test]
    fn report_counts() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.findings.push(Finding {
            rule: Rule::TcbConfinement,
            file: PathBuf::from("x.rs"),
            line: 1,
            message: "m".into(),
        });
        r.files_scanned = 3;
        r.crates_checked = 2;
        assert!(!r.is_clean());
        assert!(r
            .to_string()
            .contains("1 finding(s) over 3 files, 2 crates"));
    }
}

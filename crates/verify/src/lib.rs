//! # cubicle-verify — trusted-builder static analysis
//!
//! The paper's trusted builder/loader verifies every component *before*
//! it may run: scanning binaries for forbidden `wrpkru`/`syscall`
//! sequences and mapping segments W^X (§5.4). This crate is the
//! reproduction's source-level counterpart, plus the driver for the
//! runtime counterpart:
//!
//! * **Pass 1 — source-level isolation lint** ([`lint`], [`deps`]): a
//!   hand-rolled, comment/string-aware Rust lexer walks every component
//!   crate and enforces TCB confinement (`unsafe`/`transmute`/`static
//!   mut` only inside `crates/mpk` + `crates/core`), an
//!   ambient-authority ban (`std::fs`, `std::net`, `std::process`,
//!   `std::thread`) and a privileged-API ban (`Machine`, `Pkru`,
//!   `set_page_key`, …). It also reconstructs the `Cargo.toml`
//!   dependency DAG and rejects edges outside the allow-listed component
//!   graph.
//! * **Pass 2 — kernel invariant audit**: [`cubicle_core::System::audit`]
//!   walks machine + kernel state and checks W^X, causal tag
//!   consistency, window-range ownership, stack guards and key
//!   uniqueness. The `cubicle-verify` binary exercises it as a
//!   smoke test; harnesses and the kernel test suite run it at scenario
//!   end.
//! * **Pass 3 — lock discipline** ([`discipline`]): every mutation of
//!   the multi-core monitor's four lock-protected structures in
//!   `crates/core/src/system.rs` must sit lexically inside a matching
//!   lock-acquire scope — the static complement of the CubicleSan
//!   dynamic race detector ([`cubicle_core::System::set_race_detection`]).
//! * **Pass 4 — replay determinism** ([`determinism`]): no unsorted
//!   `HashMap`/`HashSet` iteration in the TCB crates (`crates/core`,
//!   `crates/mpk`) without a commutative terminal, a sort, or an
//!   explicit `// verify: order-ok` marker.
//!
//! Zero external dependencies, by the same policy it enforces.

pub mod deps;
pub mod determinism;
pub mod discipline;
pub mod lexer;
pub mod lint;
pub mod report;

pub use report::{Finding, Report, Rule};

use std::path::Path;

/// Runs the full source-level pass over a workspace: lints every
/// component crate's `src/` tree and checks every crate manifest against
/// the dependency allow-list.
///
/// # Errors
///
/// Propagates I/O errors (missing crate directories, unreadable files) —
/// the caller decides whether a partially-scanned tree is acceptable.
pub fn run_all(workspace_root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let crates = workspace_root.join("crates");

    for name in lint::COMPONENT_CRATES {
        let (findings, scanned) = lint::lint_crate_sources(&crates.join(name))?;
        report.findings.extend(findings);
        report.files_scanned += scanned;
    }

    // Pass 3: the monitor's lock discipline (static half of CubicleSan).
    let monitor = crates.join("core").join("src").join("system.rs");
    let text = std::fs::read_to_string(&monitor)?;
    report
        .findings
        .extend(discipline::check_source(&monitor, &text));
    report.files_scanned += 1;

    // Pass 4: replay determinism over the TCB crates.
    for name in ["core", "mpk"] {
        let (findings, scanned) = determinism::check_crate_sources(&crates.join(name))?;
        report.findings.extend(findings);
        report.files_scanned += scanned;
    }

    let mut dirs: Vec<_> = std::fs::read_dir(&crates)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        if !manifest.exists() {
            continue;
        }
        let text = std::fs::read_to_string(&manifest)?;
        let (name, _) = deps::parse_manifest(&text);
        if name.is_some_and(|n| deps::checked_crates().any(|c| c == n)) {
            report.crates_checked += 1;
        }
        report
            .findings
            .extend(deps::check_manifest(&manifest, &text));
    }
    Ok(report)
}

/// The workspace root, resolved from this crate's own manifest directory
/// (`crates/verify` → two levels up). Usable from the CLI and from
/// integration tests, both of which cargo runs with the package as cwd
/// or elsewhere entirely.
pub fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_has_top_level_manifest() {
        assert!(workspace_root().join("Cargo.toml").exists());
        assert!(workspace_root().join("crates").join("verify").exists());
    }
}

//! Dependency-DAG reconstruction and allow-list check.
//!
//! Reads each crate's `Cargo.toml` with a tiny hand-rolled TOML-subset
//! parser (section headers + `key = value` / `key.workspace = true`
//! lines — exactly the shapes this workspace uses) and checks the
//! `cubicle-*` edges in `[dependencies]` against the allow-listed
//! component graph. `[dev-dependencies]` are exempt: test harnesses run
//! on the host, outside any cubicle.

use crate::report::{Finding, Rule};
use std::path::Path;

/// The allow-listed *runtime* dependency graph, matching the paper's
/// component diagram (Fig. 5/8): components may use shared kernel/machine
/// types and their declared lower layers — never lateral peers.
/// `crates/bench` and the workspace root are deliberately absent: they
/// are the trusted measurement harness and may depend on everything.
const ALLOWED: &[(&str, &[&str])] = &[
    ("cubicle-mpk", &[]),
    ("cubicle-core", &["cubicle-mpk"]),
    ("cubicle-verify", &["cubicle-mpk", "cubicle-core"]),
    ("cubicle-ukbase", &["cubicle-mpk", "cubicle-core"]),
    ("cubicle-ipc", &["cubicle-mpk", "cubicle-core"]),
    ("cubicle-vfs", &["cubicle-mpk", "cubicle-core"]),
    (
        "cubicle-net",
        &["cubicle-mpk", "cubicle-core", "cubicle-ukbase"],
    ),
    (
        "cubicle-ramfs",
        &[
            "cubicle-mpk",
            "cubicle-core",
            "cubicle-ukbase",
            "cubicle-vfs",
        ],
    ),
    (
        "cubicle-sqldb",
        &["cubicle-mpk", "cubicle-core", "cubicle-vfs"],
    ),
    (
        "cubicle-httpd",
        &[
            "cubicle-mpk",
            "cubicle-core",
            "cubicle-ukbase",
            "cubicle-vfs",
            "cubicle-ramfs",
            "cubicle-net",
        ],
    ),
];

/// Parses the `[dependencies]` section of a `Cargo.toml`, returning
/// `(package_name, runtime_dep_names)`.
pub fn parse_manifest(text: &str) -> (Option<String>, Vec<String>) {
    let mut section = String::new();
    let mut name = None;
    let mut deps = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        if section == "package" && key == "name" {
            name = Some(value.trim().trim_matches('"').to_string());
        }
        if section == "dependencies" {
            // `cubicle-mpk.workspace = true` or `cubicle-mpk = { .. }`
            let dep = key.split('.').next().unwrap_or(key).trim();
            deps.push(dep.to_string());
        }
    }
    (name, deps)
}

/// Checks one crate's manifest against the allow-listed graph.
///
/// Unknown crates (not in the allow list) are skipped — the harness and
/// the workspace root are trusted. Non-`cubicle-*` dependencies are
/// reported too: the reproduction is dependency-free by policy.
pub fn check_manifest(manifest_path: &Path, text: &str) -> Vec<Finding> {
    let (name, deps) = parse_manifest(text);
    let Some(name) = name else {
        return vec![Finding {
            rule: Rule::DependencyGraph,
            file: manifest_path.to_path_buf(),
            line: 0,
            message: "manifest has no [package] name".into(),
        }];
    };
    let Some((_, allowed)) = ALLOWED.iter().find(|(n, _)| *n == name) else {
        return Vec::new(); // trusted harness crate
    };
    let mut findings = Vec::new();
    for dep in deps {
        if !allowed.contains(&dep.as_str()) {
            findings.push(Finding {
                rule: Rule::DependencyGraph,
                file: manifest_path.to_path_buf(),
                line: 0,
                message: format!(
                    "`{name}` may not depend on `{dep}` (allowed: {})",
                    if allowed.is_empty() {
                        "none".to_string()
                    } else {
                        allowed.join(", ")
                    }
                ),
            });
        }
    }
    findings
}

/// Names of every crate covered by the allow list, in check order.
pub fn checked_crates() -> impl Iterator<Item = &'static str> {
    ALLOWED.iter().map(|(n, _)| *n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const VFS_OK: &str = "\
[package]
name = \"cubicle-vfs\"

[dependencies]
cubicle-mpk.workspace = true
cubicle-core.workspace = true

[dev-dependencies]
cubicle-ramfs.workspace = true
";

    #[test]
    fn parses_name_and_runtime_deps_only() {
        let (name, deps) = parse_manifest(VFS_OK);
        assert_eq!(name.as_deref(), Some("cubicle-vfs"));
        assert_eq!(deps, vec!["cubicle-mpk", "cubicle-core"]);
    }

    #[test]
    fn clean_manifest_passes() {
        assert!(check_manifest(&PathBuf::from("Cargo.toml"), VFS_OK).is_empty());
    }

    #[test]
    fn lateral_edge_fires() {
        let bad = VFS_OK.replace(
            "cubicle-core.workspace = true",
            "cubicle-core.workspace = true\ncubicle-net.workspace = true",
        );
        let findings = check_manifest(&PathBuf::from("Cargo.toml"), &bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::DependencyGraph);
        assert!(findings[0]
            .message
            .contains("`cubicle-vfs` may not depend on `cubicle-net`"));
    }

    #[test]
    fn external_dep_fires() {
        let bad = VFS_OK.replace(
            "cubicle-core.workspace = true",
            "cubicle-core.workspace = true\nserde = \"1\"",
        );
        let findings = check_manifest(&PathBuf::from("Cargo.toml"), &bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`serde`"));
    }

    #[test]
    fn inline_table_dep_shape_parses() {
        let toml = "[package]\nname = \"cubicle-ipc\"\n[dependencies]\ncubicle-mpk = { path = \"../mpk\" }\n";
        let (_, deps) = parse_manifest(toml);
        assert_eq!(deps, vec!["cubicle-mpk"]);
    }

    #[test]
    fn harness_crates_are_exempt() {
        let toml =
            "[package]\nname = \"cubicle-bench\"\n[dependencies]\ncubicle-httpd.workspace = true\n";
        assert!(check_manifest(&PathBuf::from("Cargo.toml"), toml).is_empty());
    }

    #[test]
    fn allow_list_covers_all_component_crates() {
        for c in crate::lint::COMPONENT_CRATES {
            let name = format!("cubicle-{c}");
            assert!(
                checked_crates().any(|n| n == name),
                "{name} missing from dependency allow list"
            );
        }
    }
}

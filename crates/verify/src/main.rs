//! The `cubicle-verify` CLI: the trusted builder's gate.
//!
//! Runs the source-level isolation lint + dependency-DAG check over the
//! workspace, then smoke-tests the runtime side (loader rejection and
//! `System::audit`) on a throwaway kernel. Exits non-zero on any finding,
//! which is what makes the CI job gating.

use cubicle_core::{ComponentImage, CubicleError, IsolationMode, System};
use cubicle_mpk::insn::{CodeImage, Insn};
use std::process::ExitCode;

struct Probe;
cubicle_core::impl_component!(Probe);

/// Exercises the runtime half of the verifier on a scratch kernel: the
/// loader must reject a forbidden image (recording the exhaustive scan
/// in its audit log) and the invariant auditor must pass on the
/// resulting state.
fn kernel_self_check() -> Result<(), String> {
    let mut sys = System::new(IsolationMode::Full);

    let evil = ComponentImage::new(
        "EVIL",
        CodeImage::from_insns(&[Insn::Plain { len: 8 }, Insn::Wrpkru, Insn::Syscall]),
    );
    match sys.load(evil, Box::new(Probe)) {
        Err(CubicleError::ForbiddenInstruction(_)) => {}
        other => return Err(format!("loader accepted a forbidden image: {other:?}")),
    }
    if sys.loader_audit().len() != 1 {
        return Err(format!(
            "expected one loader audit record, got {:?}",
            sys.loader_audit()
        ));
    }
    if sys.stats().loads_rejected != 1 || sys.stats().forbidden_insns != 2 {
        return Err(format!(
            "loader audit counters wrong: {} rejected / {} occurrences",
            sys.stats().loads_rejected,
            sys.stats().forbidden_insns
        ));
    }

    let clean = ComponentImage::new("PROBE", CodeImage::plain(256));
    sys.load(clean, Box::new(Probe))
        .map_err(|e| format!("loader refused a clean image: {e:?}"))?;

    let audit = sys.audit();
    if !audit.is_clean() {
        return Err(format!(
            "invariant auditor failed on a fresh kernel:\n{audit}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let root = cubicle_verify::workspace_root();
    println!("cubicle-verify: workspace {}", root.display());

    let report = match cubicle_verify::run_all(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cubicle-verify: I/O error while scanning: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{report}");

    match kernel_self_check() {
        Ok(()) => println!("kernel self-check: loader rejection + invariant audit OK"),
        Err(e) => {
            eprintln!("kernel self-check FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }

    if report.is_clean() {
        println!("cubicle-verify: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "cubicle-verify: FAIL ({} finding(s))",
            report.findings.len()
        );
        ExitCode::FAILURE
    }
}

//! Pass: replay determinism — no observable `HashMap`/`HashSet` order.
//!
//! The kernel's replay story (and the golden Figure-6 surface) depends
//! on every run of a seeded scenario producing byte-identical output.
//! `std::collections` hash maps iterate in randomized order per process,
//! so any iteration whose order can reach an observable surface (a trace
//! line, an export, a finding list, a cycle charge) is a latent
//! determinism bug. This pass flags every iteration over an identifier
//! that is declared anywhere in the crate as a `HashMap`/`HashSet`,
//! unless the site is provably order-insensitive:
//!
//! * the iterator chain hits a commutative terminal within a few tokens
//!   (`sum`, `count`, `min`, `max`, `all`, `any`, `len`, `is_empty`,
//!   `fold`);
//! * a `sort*` call appears shortly after (collect-then-sort);
//! * a `// verify: order-ok` marker within two lines vouches for it
//!   (e.g. the result feeds another hash map, so order is unobservable).
//!
//! The ident-based analysis is deliberately name-coarse: a `Vec` that
//! shares its name with a `HashMap` field elsewhere in the crate is
//! over-approximated as a map. That bias is the right one for a
//! determinism lint — a false `order-ok` marker costs a comment; a
//! missed randomized iteration costs a flaky golden test.

use crate::lexer::{lex, Spanned, Tok};
use crate::report::{Finding, Rule};
use std::collections::BTreeSet;
use std::path::Path;

/// Iterator-producing methods whose order is the map's (randomized)
/// internal order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain terminals that are order-insensitive.
const COMMUTATIVE: &[&str] = &[
    "sum", "count", "min", "max", "all", "any", "len", "is_empty", "fold",
];

/// Tokens of forward lookahead for a `.sort*()` call or a commutative
/// terminal (long enough for a filter+map+collect chain before the
/// sort).
const LOOKAHEAD: usize = 60;

/// Tokens of *backward* lookahead for a `.sort*()` call — covers the
/// `v.sort(); for x in v { … }` idiom where the name-coarse ident set
/// mistakes the sorted `Vec` for the map it was collected from.
const LOOKBEHIND: usize = 24;

/// Lines a `// verify: order-ok` marker may sit from the site.
const MARKER_RANGE: usize = 2;

/// Collects every identifier declared as a `HashMap`/`HashSet` in `src`
/// (field `name: HashMap<…>` or binding `name = HashMap::new()`).
pub fn collect_map_idents(src: &str, into: &mut BTreeSet<String>) {
    let toks: Vec<Spanned> = lex(src)
        .into_iter()
        .filter(|s| !matches!(s.tok, Tok::Marker(_)))
        .collect();
    for i in 0..toks.len() {
        let Tok::Ident(ty) = &toks[i].tok else {
            continue;
        };
        if ty != "HashMap" && ty != "HashSet" {
            continue;
        }
        // `name : HashMap` (declaration) or `name = HashMap` (binding).
        if i >= 2 && matches!(toks[i - 1].tok, Tok::Other(':' | '=')) {
            if let Tok::Ident(name) = &toks[i - 2].tok {
                into.insert(name.clone());
            }
        }
    }
}

/// Flags iteration sites over collected map idents in one file.
pub fn check_source(file: &Path, src: &str, maps: &BTreeSet<String>) -> Vec<Finding> {
    let all = lex(src);
    let markers: Vec<usize> = all
        .iter()
        .filter_map(|s| match &s.tok {
            Tok::Marker(m) if m.starts_with("order-ok") => Some(s.line),
            _ => None,
        })
        .collect();
    let toks: Vec<&Spanned> = all
        .iter()
        .filter(|s| !matches!(s.tok, Tok::Marker(_)))
        .collect();

    let ident = |i: usize| -> Option<&str> {
        toks.get(i).and_then(|s| match &s.tok {
            Tok::Ident(name) => Some(name.as_str()),
            _ => None,
        })
    };
    let other = |i: usize, c: char| toks.get(i).is_some_and(|s| s.tok == Tok::Other(c));
    // Only *method calls* count as evidence: a loop variable named
    // `count` or `min` must not vouch for its own loop's order.
    let method_call = |j: usize, pred: &dyn Fn(&str) -> bool| {
        j >= 1 && other(j - 1, '.') && other(j + 1, '(') && ident(j).is_some_and(pred)
    };
    let allowed = |site: usize, line: usize| {
        if markers.iter().any(|ml| ml.abs_diff(line) <= MARKER_RANGE) {
            return true;
        }
        if (site..toks.len().min(site + LOOKAHEAD))
            .any(|j| method_call(j, &|n| n.starts_with("sort") || COMMUTATIVE.contains(&n)))
        {
            return true;
        }
        (site.saturating_sub(LOOKBEHIND)..site).any(|j| method_call(j, &|n| n.starts_with("sort")))
    };

    let mut findings = Vec::new();
    let push = |findings: &mut Vec<Finding>, line: usize, name: &str, how: &str| {
        findings.push(Finding {
            rule: Rule::Nondeterminism,
            file: file.to_path_buf(),
            line,
            message: format!(
                "iteration over hash-ordered `{name}` ({how}) — sort, use a \
                 commutative fold, or annotate `// verify: order-ok`"
            ),
        });
    };

    for i in 0..toks.len() {
        let Some(name) = ident(i) else { continue };

        // `map.iter()` / `map.keys()` / … method-chain iteration.
        if maps.contains(name)
            && other(i + 1, '.')
            && ident(i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
            && other(i + 3, '(')
        {
            let line = toks[i + 2].line;
            if !allowed(i + 3, line) {
                push(
                    &mut findings,
                    line,
                    name,
                    &format!(".{}()", ident(i + 2).unwrap()),
                );
            }
            continue;
        }

        // `for … in &map {` / `for … in &mut self.map {` direct
        // iteration (an implicit `.iter()`).
        if name == "in" {
            let mut j = i + 1;
            if other(j, '&') {
                j += 1;
            }
            if ident(j) == Some("mut") {
                j += 1;
            }
            // walk a field chain: `self . grant_cache . map`
            while ident(j).is_some() && other(j + 1, '.') && ident(j + 2).is_some() {
                j += 2;
            }
            if let Some(last) = ident(j) {
                if maps.contains(last) && toks.get(j + 1).is_some_and(|s| s.tok == Tok::OpenBrace) {
                    let line = toks[j].line;
                    if !allowed(j, line) {
                        push(&mut findings, line, last, "for-loop");
                    }
                }
            }
        }
    }
    findings
}

/// Runs the determinism pass over every `.rs` file under
/// `crate_dir/src`, two-phase: collect map idents crate-wide, then flag
/// iteration sites.
///
/// # Errors
///
/// Propagates I/O errors from directory walking / file reading.
pub fn check_crate_sources(crate_dir: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    let mut stack = vec![crate_dir.join("src")];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path)?;
                files.push((path, text));
            }
        }
    }
    let mut maps = BTreeSet::new();
    for (_, text) in &files {
        collect_map_idents(text, &mut maps);
    }
    let mut findings = Vec::new();
    for (path, text) in &files {
        findings.extend(check_source(path, text, &maps));
    }
    Ok((findings, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Finding> {
        let mut maps = BTreeSet::new();
        collect_map_idents(src, &mut maps);
        check_source(&PathBuf::from("t.rs"), src, &maps)
    }

    #[test]
    fn collects_fields_and_bindings() {
        let mut maps = BTreeSet::new();
        collect_map_idents(
            "struct S { edges: HashMap<K, V>, names: Vec<String> }\n\
             fn f() { let mut seen = HashSet::new(); }",
            &mut maps,
        );
        assert!(maps.contains("edges"));
        assert!(maps.contains("seen"));
        assert!(!maps.contains("names"));
    }

    #[test]
    fn unsorted_iteration_fires() {
        let src = "struct S { m: HashMap<K, V> }\n\
                   fn f(s: &S) { for (k, v) in &s.m { emit(k, v); } }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Nondeterminism);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn method_chain_iteration_fires() {
        let src = "struct S { m: HashMap<K, V> }\n\
                   fn f(s: &S) { s.m.keys().for_each(|k| emit(k)); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn collect_then_sort_is_allowed() {
        let src = "struct S { m: HashMap<K, V> }\n\
                   fn f(s: &S) { let mut v: Vec<_> = s.m.iter().collect(); v.sort(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn commutative_terminals_are_allowed() {
        let src = "struct S { m: HashMap<K, u64> }\n\
                   fn f(s: &S) -> u64 { s.m.values().sum() }\n\
                   fn g(s: &S) -> usize { s.m.values().filter(|v| **v > 0).count() }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn order_ok_marker_is_allowed() {
        let src = "struct S { m: HashMap<K, V> }\n\
                   fn f(s: &S) {\n\
                       // verify: order-ok — feeds another hash map\n\
                       for (k, v) in &s.m { sink.insert(k, v); }\n\
                   }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn vec_iteration_is_not_flagged() {
        let src = "struct S { names: Vec<String> }\n\
                   fn f(s: &S) { for n in &s.names { emit(n); } }\n\
                   fn g(s: &S) { s.names.iter().for_each(emit); }";
        assert!(run(src).is_empty());
    }
}

//! Self-test: the live workspace must lint clean. This is the same check
//! the gating CI job runs via `cargo run -p cubicle-verify`, kept as a
//! test so `cargo test` alone also catches a freshly-introduced
//! violation.

#[test]
fn live_workspace_lints_clean() {
    let root = cubicle_verify::workspace_root();
    let report = cubicle_verify::run_all(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "the live workspace violates the isolation lint:\n{report}"
    );
    // sanity: the scan actually covered the tree (7 component crates,
    // each with at least lib.rs; 10 allow-listed crate manifests)
    assert!(
        report.files_scanned >= 7,
        "only {} files",
        report.files_scanned
    );
    assert_eq!(report.crates_checked, 10);
}

// Fixture: TCB confinement violations — `unsafe` and `transmute` in a
// component. Never compiled; fed to the lint as text.

pub fn sneak_past_the_monitor(x: u64) -> i64 {
    unsafe { std::mem::transmute::<u64, i64>(x) }
}

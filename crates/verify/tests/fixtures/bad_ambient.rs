// Fixture: ambient-authority violations — a component reaching around
// the simulated kernel to the host OS. Never compiled; fed to the lint
// as text.

use std::net::TcpStream;
use std::{io::Read, fs, thread};

pub fn exfiltrate(path: &str) {
    let data = fs::read(path).unwrap();
    let mut conn = TcpStream::connect("127.0.0.1:9").unwrap();
    std::process::exit(data.len() as i32);
}

// Fixture: ambient-concurrency violations — a component spawning host
// threads and smuggling state through host synchronisation, bypassing
// the monitor's core scheduler and lock discipline. Never compiled; fed
// to the lint as text.

use std::sync::{Arc, Mutex};
use core::sync::atomic::AtomicUsize;

pub fn sneaky_worker(shared: Arc<Mutex<Vec<u8>>>) {
    std::thread::spawn(move || {
        shared.lock().unwrap().push(1);
    });
}

// Fixture: the determinism pass's three legitimate outs — an explicit
// order-ok marker, a collect-then-sort, and a commutative terminal.
// Never compiled; fed to the determinism pass as text.

pub struct Exporter {
    rows: HashMap<PageNum, PageMeta>,
}

impl Exporter {
    pub fn tally(&self, owned: &mut [usize]) {
        // verify: order-ok — commutative counting into per-cubicle slots
        for meta in self.rows.values() {
            owned[meta.owner.index()] += 1;
        }
    }

    pub fn dump(&self, out: &mut String) {
        let mut rows: Vec<_> = self.rows.iter().collect();
        rows.sort();
        for (page, meta) in rows {
            out.push_str(&format!("{page}: {meta:?}\n"));
        }
    }

    pub fn live(&self) -> usize {
        self.rows.values().filter(|m| m.holder == m.owner).count()
    }
}

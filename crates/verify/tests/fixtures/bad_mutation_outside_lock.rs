// Fixture: lock-discipline violations — monitor code mutating the four
// protected structures outside their lock sections. Never compiled; fed
// to the discipline pass as text, standing in for system.rs.

impl System {
    // Elided PageMeta lock: the classic seeded mutation the dynamic
    // detector catches at runtime and this pass catches at review time.
    fn resolve_fault(&mut self, addr: VAddr) {
        self.page_meta.insert(addr.page(), meta);
    }

    // Acquired the wrong lock entirely.
    fn grant_pages(&mut self, peer: CubicleId) {
        let start = self.lock_acquire(MonitorLock::Ledger);
        let m = self.page_meta.get_mut(&page).unwrap();
        self.lock_release(MonitorLock::Ledger, start);
    }

    // Released before mutating: the section does not cover the site.
    fn window_add(&mut self, wid: WindowId) {
        let wstart = self.window_op_begin();
        self.window_op_end(wstart);
        self.cubicles[0].window_mut(wid);
    }

    // Ledger accounting outside any section.
    fn heap_grow(&mut self, owner: CubicleId, pages: usize) {
        self.cubicles[owner.index()].heap_pages_granted += pages;
    }
}

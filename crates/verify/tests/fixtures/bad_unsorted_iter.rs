// Fixture: replay-determinism violations — TCB code iterating hash
// maps in randomized order straight into observable output. Never
// compiled; fed to the determinism pass as text.

pub struct Exporter {
    rows: HashMap<PageNum, PageMeta>,
}

impl Exporter {
    pub fn dump(&self, out: &mut String) {
        for (page, meta) in &self.rows {
            out.push_str(&format!("{page}: {meta:?}\n"));
        }
    }

    pub fn labels(&self) -> Vec<String> {
        self.rows.keys().map(|p| p.to_string()).collect()
    }
}

// Fixture: TCB confinement violation — mutable global state in a
// component. Never compiled; fed to the lint as text.

static mut SHARED_SCRATCH: [u8; 64] = [0; 64];

pub fn stash(v: u8) {
    // (the write itself would need `unsafe` too, but the declaration
    // alone is already banned)
    let _ = v;
}

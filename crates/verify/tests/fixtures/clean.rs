// Fixture: a well-behaved component that *mentions* every banned name in
// positions the lexer must ignore — comments, strings, raw strings, char
// literals — plus constructs that look like violations to a naive
// scanner (`&'static str`, identifiers starting with `r`). The lint must
// report zero findings.

// unsafe transmute static mut std::fs std::net Machine set_pkru wrpkru

/* block comment: std::process::exit, /* nested: Pkru, map_page */ retag */

pub const DOC: &'static str = "calling unsafe std::fs::read or Machine here is fine";
pub const RAW: &str = r#"set_page_key "quoted" transmute std::thread PARKED_KEY"#;
pub const BYTES: &[u8] = b"static mut std::net";

pub fn respectable(reader: &str) -> usize {
    let marker = 'M'; // not the Machine ident
    let newline = '\n';
    let result = reader.len() + (marker as usize) + (newline as usize);
    for r in 0..result {
        let _ = r;
    }
    std::collections::HashMap::<u32, u32>::new().len() + result
}

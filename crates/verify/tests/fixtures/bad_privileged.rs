// Fixture: privileged-API violations — a component naming the machine
// model directly, the source-level analog of embedding `wrpkru` in a
// binary. Never compiled; fed to the lint as text.

use cubicle_mpk::{Machine, Pkru};

pub fn escape(m: &mut Machine) {
    m.set_pkru(Pkru::allow_all());
    m.set_page_key(addr, key);
}

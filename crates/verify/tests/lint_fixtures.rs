//! Negative-case tests: every fixture under `tests/fixtures/` must make
//! the expected rule(s) fire, and the deliberately tricky clean fixture
//! must not.

use cubicle_verify::lint::lint_source;
use cubicle_verify::{deps, Rule};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    (path, text)
}

fn rules_in(name: &str) -> Vec<Rule> {
    let (path, text) = fixture(name);
    lint_source(&path, &text)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn unsafe_fixture_fires_tcb_confinement() {
    let rules = rules_in("bad_unsafe.rs");
    assert_eq!(rules, vec![Rule::TcbConfinement, Rule::TcbConfinement]);
}

#[test]
fn static_mut_fixture_fires_tcb_confinement() {
    assert_eq!(rules_in("bad_static_mut.rs"), vec![Rule::TcbConfinement]);
}

#[test]
fn ambient_fixture_fires_for_every_escape_route() {
    let (path, text) = fixture("bad_ambient.rs");
    let findings = lint_source(&path, &text);
    assert_eq!(findings.len(), 4, "net, fs, thread, process: {findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::AmbientAuthority));
    let all = findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for escape in ["std::net", "std::fs", "std::thread", "std::process"] {
        assert!(all.contains(escape), "missing {escape} in: {all}");
    }
    // `io::Read` inside the use-group must NOT be flagged
    assert!(!all.contains("std::io"));
}

#[test]
fn privileged_fixture_fires_per_mention() {
    let (path, text) = fixture("bad_privileged.rs");
    let findings = lint_source(&path, &text);
    assert_eq!(findings.len(), 6, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::PrivilegedApi));
    assert!(findings.iter().any(|f| f.message.contains("`Machine`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`set_page_key`")));
}

#[test]
fn clean_fixture_is_clean() {
    let (path, text) = fixture("clean.rs");
    let findings = lint_source(&path, &text);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn findings_carry_real_line_numbers() {
    let (path, text) = fixture("bad_static_mut.rs");
    let findings = lint_source(&path, &text);
    let wanted = text
        .lines()
        .position(|l| l.starts_with("static mut"))
        .expect("fixture declares one")
        + 1;
    assert_eq!(findings[0].line, wanted);
}

#[test]
fn dep_fixture_fires_for_lateral_and_external_edges() {
    let (path, text) = {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join("fixtures")
            .join("bad_deps.toml");
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        (path, text)
    };
    let findings = deps::check_manifest(&path, &text);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::DependencyGraph));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("may not depend on `cubicle-net`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("may not depend on `serde`")));
}

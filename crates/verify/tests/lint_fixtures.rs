//! Negative-case tests: every fixture under `tests/fixtures/` must make
//! the expected rule(s) fire, and the deliberately tricky clean fixture
//! must not.

use cubicle_verify::lint::lint_source;
use cubicle_verify::{deps, determinism, discipline, Rule};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path).expect("fixture readable");
    (path, text)
}

fn rules_in(name: &str) -> Vec<Rule> {
    let (path, text) = fixture(name);
    lint_source(&path, &text)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn unsafe_fixture_fires_tcb_confinement() {
    let rules = rules_in("bad_unsafe.rs");
    assert_eq!(rules, vec![Rule::TcbConfinement, Rule::TcbConfinement]);
}

#[test]
fn static_mut_fixture_fires_tcb_confinement() {
    assert_eq!(rules_in("bad_static_mut.rs"), vec![Rule::TcbConfinement]);
}

#[test]
fn ambient_fixture_fires_for_every_escape_route() {
    let (path, text) = fixture("bad_ambient.rs");
    let findings = lint_source(&path, &text);
    assert_eq!(findings.len(), 4, "net, fs, thread, process: {findings:#?}");
    // `std::thread` is concurrency; the host-I/O escapes are authority.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == Rule::AmbientAuthority)
            .count(),
        3
    );
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == Rule::AmbientConcurrency)
            .count(),
        1
    );
    let all = findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for escape in ["std::net", "std::fs", "std::thread", "std::process"] {
        assert!(all.contains(escape), "missing {escape} in: {all}");
    }
    // `io::Read` inside the use-group must NOT be flagged
    assert!(!all.contains("std::io"));
}

#[test]
fn privileged_fixture_fires_per_mention() {
    let (path, text) = fixture("bad_privileged.rs");
    let findings = lint_source(&path, &text);
    assert_eq!(findings.len(), 6, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::PrivilegedApi));
    assert!(findings.iter().any(|f| f.message.contains("`Machine`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`set_page_key`")));
}

#[test]
fn clean_fixture_is_clean() {
    let (path, text) = fixture("clean.rs");
    let findings = lint_source(&path, &text);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn findings_carry_real_line_numbers() {
    let (path, text) = fixture("bad_static_mut.rs");
    let findings = lint_source(&path, &text);
    let wanted = text
        .lines()
        .position(|l| l.starts_with("static mut"))
        .expect("fixture declares one")
        + 1;
    assert_eq!(findings[0].line, wanted);
}

#[test]
fn ambient_concurrency_fixture_fires_for_every_route() {
    let (path, text) = fixture("bad_ambient_concurrency.rs");
    let findings = lint_source(&path, &text);
    assert!(
        findings.len() >= 3,
        "std::sync, core::sync, std::thread: {findings:#?}"
    );
    assert!(findings.iter().all(|f| f.rule == Rule::AmbientConcurrency));
    let all = findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for escape in ["std::sync", "core::sync", "std::thread"] {
        assert!(all.contains(escape), "missing {escape} in: {all}");
    }
}

#[test]
fn lock_discipline_fixture_fires_per_elision() {
    let (path, text) = fixture("bad_mutation_outside_lock.rs");
    let findings = discipline::check_source(&path, &text);
    assert_eq!(findings.len(), 4, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::LockDiscipline));
    let all = findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    // Each seeded elision is attributed to its function and structure.
    for (func, obj) in [
        ("resolve_fault", "page_meta"),
        ("grant_pages", "page_meta"),
        ("window_add", "windows"),
        ("heap_grow", "ledger"),
    ] {
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains(func) && f.message.contains(obj)),
            "missing {func}/{obj} in: {all}"
        );
    }
}

#[test]
fn unsorted_iter_fixture_fires_and_marker_fixture_is_clean() {
    let (bad_path, bad_text) = fixture("bad_unsorted_iter.rs");
    let mut maps = BTreeSet::new();
    determinism::collect_map_idents(&bad_text, &mut maps);
    let findings = determinism::check_source(&bad_path, &bad_text, &maps);
    assert_eq!(findings.len(), 2, "for-loop + .keys(): {findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Nondeterminism));

    let (ok_path, ok_text) = fixture("ok_order_marker.rs");
    let mut maps = BTreeSet::new();
    determinism::collect_map_idents(&ok_text, &mut maps);
    let findings = determinism::check_source(&ok_path, &ok_text, &maps);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn dep_fixture_fires_for_lateral_and_external_edges() {
    let (path, text) = {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join("fixtures")
            .join("bad_deps.toml");
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        (path, text)
    };
    let findings = deps::check_manifest(&path, &text);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::DependencyGraph));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("may not depend on `cubicle-net`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("may not depend on `serde`")));
}

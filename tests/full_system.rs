//! Whole-system test: the web server and the database engine running in
//! ONE CubicleOS instance (11 cubicles), sharing the file-system stack —
//! the web server serves a report generated from SQL data.

use cubicleos::httpd::{Httpd, HttpdProxy};
use cubicleos::kernel::{impl_component, ComponentImage, IsolationMode, System};
use cubicleos::mpk::insn::CodeImage;
use cubicleos::net::{boot_net, SimClient, WireModel};
use cubicleos::ramfs::{mount_at, Ramfs};
use cubicleos::sqldb::storage::CubicleEnv;
use cubicleos::sqldb::Database;
use cubicleos::ukbase::boot_base;
use cubicleos::vfs::{Vfs, VfsPort, VfsProxy};

struct SqliteApp;
impl_component!(SqliteApp);

#[test]
fn database_and_webserver_share_one_cubicle_system() {
    let mut sys = System::new(IsolationMode::Full);

    // --- substrate: base + fs + net ------------------------------------
    let base = boot_base(&mut sys).unwrap();
    let vfs_loaded = sys
        .load(cubicleos::vfs::image(), Box::new(Vfs::default()))
        .unwrap();
    let ramfs_loaded = sys
        .load(cubicleos::ramfs::image(), Box::new(Ramfs::default()))
        .unwrap();
    sys.with_component_mut::<Ramfs, _>(ramfs_loaded.slot, |fs, _| fs.set_alloc(base.alloc))
        .unwrap();
    mount_at(&mut sys, vfs_loaded.slot, &ramfs_loaded, "/").unwrap();
    let net = boot_net(&mut sys).unwrap();
    let vfs = VfsProxy::resolve(&vfs_loaded).unwrap();
    let ramfs_cid = ramfs_loaded.cid;

    // --- application 1: the SQL engine ---------------------------------
    let sqlite = sys
        .load(
            ComponentImage::new("SQLITE", CodeImage::plain(64 * 1024)).heap_pages(128),
            Box::new(SqliteApp),
        )
        .unwrap();
    let report: String = sys.run_in_cubicle(sqlite.cid, |sys| {
        let port = VfsPort::new(sys, vfs, &[ramfs_cid]).unwrap();
        let mut db =
            Database::open(sys, Box::new(CubicleEnv::new(port.clone())), "/app.db").unwrap();
        db.execute(sys, "CREATE TABLE hits(page TEXT, n INTEGER)")
            .unwrap();
        db.execute(
            sys,
            "INSERT INTO hits VALUES ('/index', 41), ('/about', 7), ('/index', 1)",
        )
        .unwrap();
        let rows = db
            .query(
                sys,
                "SELECT page, sum(n) FROM hits GROUP BY page ORDER BY sum(n) DESC",
            )
            .unwrap();
        let mut report = String::from("page,hits\n");
        for r in rows {
            report.push_str(&format!("{},{}\n", r[0], r[1]));
        }
        // publish the report as a static file for the web server
        let fd = port
            .open(
                sys,
                "/report.csv",
                cubicleos::vfs::flags::O_CREAT | cubicleos::vfs::flags::O_RDWR,
            )
            .unwrap();
        port.write_all(sys, fd, report.as_bytes()).unwrap();
        port.close(sys, fd).unwrap();
        report
    });
    assert_eq!(report, "page,hits\n/index,42\n/about,7\n");

    // --- application 2: the web server ---------------------------------
    let nginx = sys
        .load(cubicleos::httpd::image(), Box::new(Httpd::default()))
        .unwrap();
    sys.with_component_mut::<Httpd, _>(nginx.slot, |h, _| {
        h.set_wiring(net.lwip, vfs, &[ramfs_cid]);
    })
    .unwrap();
    let httpd = HttpdProxy::resolve(&nginx).unwrap();
    assert_eq!(httpd.init(&mut sys, 80).unwrap(), 0);

    // --- the outside world fetches the SQL-generated report ------------
    let mut client = SimClient::new(
        net.netdev_slot,
        40_001,
        80,
        WireModel {
            hop_cycles: 1_000,
            per_byte_cycles: 1,
            request_overhead_cycles: 0,
        },
    );
    client.send(b"GET /report.csv HTTP/1.0\r\n\r\n");
    for _ in 0..200 {
        client.pump(&mut sys);
        if client.fin_seen() {
            break;
        }
        httpd.poll(&mut sys).unwrap();
    }
    assert!(client.fin_seen(), "download must complete");
    let response = String::from_utf8_lossy(&client.received).into_owned();
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    assert!(response.ends_with(&report), "body must be the SQL report");

    // --- the isolation story held throughout ---------------------------
    assert_eq!(sys.stats().faults_denied, 0, "no isolation violations");
    assert!(
        sys.stats().faults_resolved > 0,
        "windows actually exercised"
    );
    assert!(sys.cubicles().count() >= 11, "full component graph loaded");
    // and the two applications are still isolated from each other:
    let sqlite_heap = sys.run_in_cubicle(sqlite.cid, |sys| sys.heap_alloc(64, 8).unwrap());
    let steal = sys.run_in_cubicle(nginx.cid, |sys| sys.read_vec(sqlite_heap, 8));
    assert!(steal.is_err(), "NGINX must not read SQLITE memory");
}

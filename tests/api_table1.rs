//! Table 1 parity: the CubicleOS-specific API surface, exercised call by
//! call with the semantics the paper specifies.

use cubicleos::kernel::{impl_component, ComponentImage, CubicleError, IsolationMode, System};
use cubicleos::mpk::insn::CodeImage;

struct Dummy;
impl_component!(Dummy);

fn sys_with_two() -> (
    System,
    cubicleos::kernel::CubicleId,
    cubicleos::kernel::CubicleId,
) {
    let mut sys = System::new(IsolationMode::Full);
    let a = sys
        .load(
            ComponentImage::new("A", CodeImage::plain(64)),
            Box::new(Dummy),
        )
        .unwrap();
    let b = sys
        .load(
            ComponentImage::new("B", CodeImage::plain(64)),
            Box::new(Dummy),
        )
        .unwrap();
    (sys, a.cid, b.cid)
}

#[test]
fn cubicle_window_init_returns_fresh_ids() {
    let (mut sys, a, _) = sys_with_two();
    sys.run_in_cubicle(a, |sys| {
        let w1 = sys.window_init();
        let w2 = sys.window_init();
        assert_ne!(w1, w2);
    });
}

#[test]
fn cubicle_window_add_associates_a_range() {
    // "Associate memory range (ptr, ptr+size) to window wid"
    let (mut sys, a, b) = sys_with_two();
    sys.run_in_cubicle(a, |sys| {
        let p = sys.heap_alloc(128, 8).unwrap();
        let w = sys.window_init();
        sys.window_add(w, p, 128).unwrap();
        sys.window_open(w, b).unwrap();
    });
}

#[test]
fn cubicle_window_remove_removes_a_previously_associated_range() {
    let (mut sys, a, _) = sys_with_two();
    sys.run_in_cubicle(a, |sys| {
        let p = sys.heap_alloc(128, 8).unwrap();
        let w = sys.window_init();
        sys.window_add(w, p, 128).unwrap();
        sys.window_remove(w, p).unwrap();
        // removing twice is an error: the range is gone
        assert!(matches!(
            sys.window_remove(w, p),
            Err(CubicleError::InvalidArgument(_))
        ));
    });
}

#[test]
fn cubicle_window_open_allows_and_close_disallows() {
    let (mut sys, a, b) = sys_with_two();
    let p = sys.run_in_cubicle(a, |sys| {
        let p = sys.heap_alloc(64, 8).unwrap();
        let w = sys.window_init();
        sys.window_add(w, p, 64).unwrap();
        sys.window_open(w, b).unwrap();
        p
    });
    assert!(sys.run_in_cubicle(b, |sys| sys.read_vec(p, 8)).is_ok());
}

#[test]
fn cubicle_window_close_all_disallows_every_peer() {
    let (mut sys, a, b) = sys_with_two();
    let c = sys
        .load(
            ComponentImage::new("C", CodeImage::plain(64)),
            Box::new(Dummy),
        )
        .unwrap()
        .cid;
    let p = sys.run_in_cubicle(a, |sys| {
        let p = sys.heap_alloc(64, 8).unwrap();
        let w = sys.window_init();
        sys.window_add(w, p, 64).unwrap();
        sys.window_open(w, b).unwrap();
        sys.window_open(w, c).unwrap();
        sys.window_close_all(w).unwrap();
        p
    });
    // no one has touched the page since, so neither peer may enter
    assert!(sys.run_in_cubicle(b, |sys| sys.read_vec(p, 8)).is_err());
    assert!(sys.run_in_cubicle(c, |sys| sys.read_vec(p, 8)).is_err());
}

#[test]
fn cubicle_window_destroy_removes_the_window() {
    let (mut sys, a, b) = sys_with_two();
    sys.run_in_cubicle(a, |sys| {
        let w = sys.window_init();
        sys.window_destroy(w).unwrap();
        // any further use of the id fails
        assert!(matches!(
            sys.window_open(w, b),
            Err(CubicleError::NoSuchWindow(_))
        ));
        assert!(matches!(
            sys.window_destroy(w),
            Err(CubicleError::NoSuchWindow(_))
        ));
    });
}

#[test]
fn windows_are_assigned_to_the_calling_cubicle() {
    // "Note that windows are assigned to the calling cubicle, and can
    // only be managed by it."
    let (mut sys, a, b) = sys_with_two();
    let w = sys.run_in_cubicle(a, |sys| sys.window_init());
    let err = sys.run_in_cubicle(b, |sys| sys.window_close_all(w));
    assert!(matches!(err, Err(CubicleError::NoSuchWindow(_))));
}

#[test]
fn window_contents_are_shared_not_copied() {
    // zero-copy: the grantee observes in-place updates by the owner
    let (mut sys, a, b) = sys_with_two();
    let p = sys.run_in_cubicle(a, |sys| {
        let p = sys.heap_alloc(64, 8).unwrap();
        sys.write(p, b"v1").unwrap();
        let w = sys.window_init();
        sys.window_add(w, p, 64).unwrap();
        sys.window_open(w, b).unwrap();
        p
    });
    assert_eq!(
        sys.run_in_cubicle(b, |sys| sys.read_vec(p, 2).unwrap()),
        b"v1"
    );
    sys.run_in_cubicle(a, |sys| sys.write(p, b"v2").unwrap());
    assert_eq!(
        sys.run_in_cubicle(b, |sys| sys.read_vec(p, 2).unwrap()),
        b"v2"
    );
}

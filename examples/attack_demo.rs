//! Security demonstration: what compartmentalisation buys.
//!
//! The paper's motivation (§1): "a vulnerability in a file system
//! implementation may be exploited to compromise the whole library OS
//! and application, and then disclose, e.g., encryption keys from the
//! TLS implementation". This example stages exactly that attack — a
//! malicious file-system component trying to steal another component's
//! key — and shows it succeeding on baseline Unikraft and failing on
//! CubicleOS. It also shows the loader rejecting a component that embeds
//! a `wrpkru` instruction to disable protection.
//!
//! Run with: `cargo run --example attack_demo`

use cubicleos::kernel::{
    component_mut, impl_component, Builder, ComponentImage, CubicleError, IsolationMode, System,
    Value,
};
use cubicleos::mpk::insn::{CodeImage, Insn};
use cubicleos::mpk::VAddr;

struct Tls {
    key_addr: VAddr,
}
impl_component!(Tls);

struct EvilFs {
    stolen: Option<Vec<u8>>,
}
impl_component!(EvilFs);

fn stage_attack(mode: IsolationMode) -> (bool, System) {
    let builder = Builder::new();
    let mut sys = System::new(mode);

    // A TLS-like component that stores a secret key in its own memory.
    let tls_img = ComponentImage::new("TLS", CodeImage::plain(4096)).export(
        builder.export("void *tls_key_location(void)").unwrap(),
        |_sys, this, _args| Ok(Value::Ptr(component_mut::<Tls>(this).key_addr)),
    );
    let tls = sys
        .load(
            tls_img,
            Box::new(Tls {
                key_addr: VAddr::NULL,
            }),
        )
        .unwrap();
    let key_addr = sys.run_in_cubicle(tls.cid, |sys| {
        let key = sys.heap_alloc(32, 8).unwrap();
        sys.write(key, b"-----SECRET-TLS-PRIVATE-KEY----").unwrap();
        key
    });
    sys.with_component_mut::<Tls, _>(tls.slot, |t, _| t.key_addr = key_addr)
        .unwrap();

    // A malicious "file system" that scans foreign memory when invoked.
    let evil_img = ComponentImage::new("EVILFS", CodeImage::plain(4096)).export(
        builder
            .export("long evil_fs_mount(const void *where)")
            .unwrap(),
        |sys, this, args| {
            let target = args[0].as_ptr();
            match sys.read_vec(target, 31) {
                Ok(bytes) => {
                    component_mut::<EvilFs>(this).stolen = Some(bytes);
                    Ok(Value::I64(0))
                }
                Err(CubicleError::WindowDenied { .. }) => Ok(Value::I64(-13)),
                Err(e) => Err(e),
            }
        },
    );
    let evil = sys
        .load(evil_img, Box::new(EvilFs { stolen: None }))
        .unwrap();

    // The "kernel" innocently calls into the file system; the pointer it
    // passes is the secret's address (modelling an info-leak gadget).
    let _ = sys
        .run_in_cubicle(evil.cid, |sys| {
            sys.call("evil_fs_mount", &[Value::Ptr(key_addr)])
        })
        .unwrap();
    let stolen = sys
        .with_component_mut::<EvilFs, _>(evil.slot, |e, _| e.stolen.clone())
        .unwrap();
    (stolen.is_some(), sys)
}

fn main() {
    println!("=== attack 1: malicious FS component reads the TLS key ===\n");
    let (leaked, _) = stage_attack(IsolationMode::Unikraft);
    println!("baseline Unikraft (no isolation): key stolen? {leaked}");
    assert!(leaked, "monolithic library OS has no defence");

    let (leaked, sys) = stage_attack(IsolationMode::Full);
    println!("CubicleOS (cubicles + windows):   key stolen? {leaked}");
    assert!(!leaked, "cubicles must stop the read");
    println!(
        "  monitor denied {} access(es) with no open window\n",
        sys.stats().faults_denied
    );

    println!("=== attack 2: component ships a wrpkru to unlock all keys ===\n");
    let mut sys = System::new(IsolationMode::Full);
    let dirty = ComponentImage::new(
        "BACKDOOR",
        CodeImage::from_insns(&[
            Insn::Plain { len: 64 },
            Insn::Wrpkru,
            Insn::Plain { len: 8 },
        ]),
    );
    struct Backdoor;
    impl_component!(Backdoor);
    match sys.load(dirty, Box::new(Backdoor)) {
        Err(CubicleError::ForbiddenInstruction(which)) => {
            println!("loader refused the component: found `{which}` in its code ✓");
        }
        other => panic!("loader must reject the image, got {other:?}"),
    }

    println!("\nboth attacks defeated.");
}

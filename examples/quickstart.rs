//! Quickstart: the paper's Figure 2/4 walk-through, narrated.
//!
//! Two isolated components — an application and a RAMFS-like service —
//! exchange a buffer through a window: spatial isolation denies the
//! access until the owner opens a window, after which trap-and-map
//! retags the page (zero-copy) and the call proceeds.
//!
//! Run with: `cargo run --example quickstart`

use cubicleos::kernel::{
    impl_component, Builder, ComponentImage, CubicleError, IsolationMode, System, Value,
};
use cubicleos::mpk::insn::CodeImage;

struct Ramfs;
impl_component!(Ramfs);

struct App;
impl_component!(App);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = System::new(IsolationMode::Full);
    let builder = Builder::new();

    // --- load an isolated RAMFS-like component -------------------------
    let ramfs = sys.load(
        ComponentImage::new("RAMFS", CodeImage::plain(4096)).export(
            builder.export("ssize_t ramfs_write(const void *buf, size_t len)")?,
            |sys, _this, args| {
                let (src, len) = args[0].as_buf();
                let dst = sys.heap_alloc(len, 8)?; // RAMFS-owned page
                match sys.copy(dst, src, len) {
                    Ok(()) => Ok(Value::I64(len as i64)),
                    Err(CubicleError::WindowDenied { .. }) => Ok(Value::I64(-13)), // -EACCES
                    Err(e) => Err(e),
                }
            },
        ),
        Box::new(Ramfs),
    )?;
    let app = sys.load(
        ComponentImage::new("APP", CodeImage::plain(4096)),
        Box::new(App),
    )?;
    println!(
        "loaded {} and {}",
        sys.cubicle_name(ramfs.cid),
        sys.cubicle_name(app.cid)
    );

    let ramfs_cid = ramfs.cid;
    sys.run_in_cubicle(app.cid, |sys| -> Result<(), CubicleError> {
        // the application owns a buffer
        let buf = sys.heap_alloc(4096, 4096)?;
        sys.write(buf, b"hello, cubicle")?;

        // ❶ without a window, RAMFS cannot read it — spatial isolation
        let denied = sys.call("ramfs_write", &[Value::buf_in(buf, 14)])?.as_i64();
        println!("call without window  -> {denied} (EACCES: isolation enforced)");

        // ❷ open a window for RAMFS (Table 1 API)
        let wid = sys.window_init();
        sys.window_add(wid, buf, 4096)?;
        sys.window_open(wid, ramfs_cid)?;
        let n = sys.call("ramfs_write", &[Value::buf_in(buf, 14)])?.as_i64();
        println!("call with window     -> {n} bytes written (zero-copy grant)");

        // ❸ close the window again — temporal isolation restored
        sys.window_close(wid, ramfs_cid)?;
        Ok(())
    })?;

    let stats = sys.stats();
    println!();
    println!("trap-and-map activity:");
    println!(
        "  faults resolved (page retagged): {}",
        stats.faults_resolved
    );
    println!("  faults denied   (no window):     {}", stats.faults_denied);
    println!("  window operations:               {}", stats.window_ops);
    println!("  cross-cubicle calls:             {}", stats.cross_calls);
    println!("  simulated cycles:                {}", sys.now());
    Ok(())
}

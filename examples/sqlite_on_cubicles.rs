//! SQLite on CubicleOS: the paper's Figure 8 deployment, end to end.
//!
//! Boots the full component stack (ALLOC/TIME/PLAT/LIBC + VFSCORE +
//! RAMFS + the SQL engine as the application cubicle), runs a small
//! workload in each isolation mode, and prints the overhead ladder that
//! Figure 6 measures.
//!
//! Run with: `cargo run --release --example sqlite_on_cubicles`

use cubicleos::kernel::{impl_component, ComponentImage, IsolationMode, System};
use cubicleos::mpk::insn::CodeImage;
use cubicleos::ramfs::{mount_at, Ramfs};
use cubicleos::sqldb::storage::CubicleEnv;
use cubicleos::sqldb::Database;
use cubicleos::ukbase::boot_base;
use cubicleos::vfs::{Vfs, VfsPort, VfsProxy};

struct SqliteApp;
impl_component!(SqliteApp);

fn run_mode(mode: IsolationMode) -> Result<u64, Box<dyn std::error::Error>> {
    let mut sys = System::new(mode);
    let base = boot_base(&mut sys)?;
    let vfs = sys.load(cubicleos::vfs::image(), Box::new(Vfs::default()))?;
    let ramfs = sys.load(cubicleos::ramfs::image(), Box::new(Ramfs::default()))?;
    sys.with_component_mut::<Ramfs, _>(ramfs.slot, |fs, _| fs.set_alloc(base.alloc))
        .unwrap();
    mount_at(&mut sys, vfs.slot, &ramfs, "/")?;
    let app = sys.load(
        ComponentImage::new("SQLITE", CodeImage::plain(64 * 1024)).heap_pages(128),
        Box::new(SqliteApp),
    )?;
    sys.mark_boot_complete();

    let vfs_proxy = VfsProxy::resolve(&vfs)?;
    let ramfs_cid = ramfs.cid;
    let cycles = sys.run_in_cubicle(
        app.cid,
        move |sys| -> Result<u64, Box<dyn std::error::Error>> {
            let port = VfsPort::new(sys, vfs_proxy, &[ramfs_cid])?;
            let mut db = Database::open(sys, Box::new(CubicleEnv::new(port)), "/demo.db")?;
            let t0 = sys.now();
            db.execute(
                sys,
                "CREATE TABLE orders(id INTEGER PRIMARY KEY, customer TEXT, total REAL)",
            )?;
            db.execute(sys, "CREATE INDEX ic ON orders(customer)")?;
            db.execute(sys, "BEGIN")?;
            for i in 0..500 {
                db.execute(
                    sys,
                    &format!(
                        "INSERT INTO orders VALUES ({i}, 'cust{}', {}.5)",
                        i % 20,
                        i % 97
                    ),
                )?;
            }
            db.execute(sys, "COMMIT")?;
            let top = db.query(
                sys,
                "SELECT customer, count(*), sum(total) FROM orders \
             GROUP BY customer ORDER BY sum(total) DESC LIMIT 3",
            )?;
            assert_eq!(top.len(), 3);
            db.execute(
                sys,
                "UPDATE orders SET total = total * 1.1 WHERE customer = 'cust7'",
            )?;
            db.execute(sys, "DELETE FROM orders WHERE id % 50 = 0")?;
            let check = db.query(sys, "PRAGMA integrity_check")?;
            assert_eq!(format!("{}", check[0][0]), "ok");
            Ok(sys.now() - t0)
        },
    )?;

    let (_, stats) = sys.since_boot();
    let vfs_cid = sys.find_cubicle("VFSCORE").unwrap();
    println!(
        "{:<22} {:>12} cycles | SQLITE→VFSCORE calls: {:>6} | faults resolved: {:>6}",
        mode.label(),
        cycles,
        stats.edge(app.cid, vfs_cid),
        stats.faults_resolved,
    );
    Ok(cycles)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SQLite on the Figure 8 component graph, per isolation mode:\n");
    let base = run_mode(IsolationMode::Unikraft)?;
    for mode in [
        IsolationMode::NoMpk,
        IsolationMode::NoAcl,
        IsolationMode::Full,
    ] {
        let c = run_mode(mode)?;
        println!(
            "{:<22}   → {:.2}x the Unikraft baseline",
            "",
            c as f64 / base as f64
        );
    }
    Ok(())
}

//! The NGINX deployment (paper §6.3): serve static files over the full
//! 8-partition stack and print per-size download latencies.
//!
//! Run with: `cargo run --release --example webserver`

use cubicleos::httpd::boot_web;
use cubicleos::kernel::IsolationMode;
use cubicleos::net::WireModel;
use cubicleos::ukbase::time::cycles_to_ms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("booting the 8-partition NGINX deployment (Figure 5)…");
    let mut dep = boot_web(IsolationMode::Full)?;

    // populate a docroot
    for (name, size) in [
        ("small.html", 1usize << 10),
        ("medium.bin", 64 << 10),
        ("large.bin", 1 << 20),
    ] {
        let content: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        dep.put_file(&format!("/{name}"), &content)?;
        println!("  put /{name} ({size} bytes)");
    }

    println!("\nfetching files through the real TCP stack:\n");
    for name in ["small.html", "medium.bin", "large.bin", "missing.txt"] {
        let (latency, resp) = dep.fetch(&format!("/{name}"), WireModel::default())?;
        println!(
            "GET /{name:<12} -> {} ({} bytes) in {:.3} ms simulated",
            resp.status,
            resp.body.len(),
            cycles_to_ms(latency)
        );
    }

    let stats = dep.sys.stats();
    println!("\nwhole-run kernel activity:");
    println!("  cross-cubicle calls: {}", stats.cross_calls);
    println!("  trap-and-map faults resolved: {}", stats.faults_resolved);
    println!("  isolation violations: {}", stats.faults_denied);
    Ok(())
}

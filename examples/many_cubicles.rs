//! MPK tag virtualisation (paper §8): running more compartments than the
//! 16 hardware keys.
//!
//! Without virtualisation the 16th isolated component fails to load
//! (MPK has 15 usable keys beside the monitor's). With
//! `enable_key_virtualisation`, cubicles share a pool of physical keys:
//! entering a parked cubicle binds it, evicting the least-recently-used
//! binding, whose pages are lazily faulted back in by trap-and-map.
//!
//! Run with: `cargo run --example many_cubicles`

use cubicleos::kernel::{impl_component, ComponentImage, CubicleError, IsolationMode, System};
use cubicleos::mpk::insn::CodeImage;
use cubicleos::mpk::CoreScheduler;

struct Worker;
impl_component!(Worker);

fn main() {
    // ---- hardware limit without virtualisation -------------------------
    let mut plain = System::new(IsolationMode::Full);
    for i in 0..15 {
        plain
            .load(
                ComponentImage::new(format!("W{i}"), CodeImage::plain(256)),
                Box::new(Worker),
            )
            .unwrap();
    }
    match plain.load(
        ComponentImage::new("W15", CodeImage::plain(256)),
        Box::new(Worker),
    ) {
        Err(CubicleError::OutOfKeys) => {
            println!("without virtualisation: 15 isolated cubicles, the 16th fails (OutOfKeys) ✓")
        }
        other => panic!("expected OutOfKeys, got {other:?}"),
    }

    // ---- 40 compartments with the virtualisation layer ----------------
    let mut sys = System::new(IsolationMode::Full);
    sys.enable_key_virtualisation();
    let workers: Vec<_> = (0..40)
        .map(|i| {
            sys.load(
                ComponentImage::new(format!("W{i}"), CodeImage::plain(256)),
                Box::new(Worker),
            )
            .unwrap()
            .cid
        })
        .collect();
    println!(
        "with virtualisation: loaded {} isolated cubicles",
        workers.len()
    );

    // every worker owns private state and cycles through the key pool
    let mut secrets = Vec::new();
    for (i, &cid) in workers.iter().enumerate() {
        let addr = sys.run_in_cubicle(cid, |sys| {
            let p = sys.heap_alloc(64, 8).unwrap();
            sys.write(p, format!("secret of worker {i}").as_bytes())
                .unwrap();
            p
        });
        secrets.push(addr);
    }
    // second pass: everyone still reads their own data (rebinding) and
    // no one can read a neighbour's
    let mut denied = 0;
    for (i, &cid) in workers.iter().enumerate() {
        let own = sys.run_in_cubicle(cid, |sys| sys.read_vec(secrets[i], 8).unwrap());
        assert_eq!(&own, b"secret o");
        let neighbour = secrets[(i + 1) % secrets.len()];
        if sys
            .run_in_cubicle(cid, |sys| sys.read_vec(neighbour, 8))
            .is_err()
        {
            denied += 1;
        }
    }
    println!("all 40 workers read their own state after key churn ✓");
    println!("{denied}/40 cross-worker snoops denied ✓");
    println!(
        "key-binding evictions performed: {} (each retagged the evicted key's pages)",
        sys.key_evictions()
    );
    println!(
        "machine retags (pkey_mprotect calls): {}",
        sys.machine_stats().retags
    );

    // ---- calls from multiple cores: pooled stacks ----------------------
    // Four simulated cores take turns entering the SAME worker cubicle.
    // Each core's clock advances privately, so in simulated time the
    // entries overlap and the monitor hands every overlapping call frame
    // its own pooled stack (the primary stack's busy window covers the
    // other cores' entry times).
    const CORES: usize = 4;
    sys.set_num_cores(CORES);
    let hot = workers[0];
    let mut sched = CoreScheduler::new(42, CORES);
    for _ in 0..32 {
        let clocks: Vec<u64> = (0..CORES).map(|i| sys.core_cycles(i)).collect();
        let core = sched.next_core(&clocks, &[true; CORES]).unwrap();
        sys.switch_to_core(core);
        let own = sys
            .run_in_cubicle(hot, |sys| sys.read_vec(secrets[0], 8))
            .unwrap();
        assert_eq!(&own, b"secret o");
    }
    let pool = sys.cubicle(hot).stack_pool.len();
    println!(
        "{CORES} cores entered {} concurrently: stack pool grew to {pool} \
         pooled stack(s), {} core switches ✓",
        sys.cubicle(hot).name,
        sched.switches()
    );
    assert!(
        pool > 1,
        "overlapping entries from {CORES} cores must grow the stack pool"
    );
    sys.audit().assert_clean("many_cubicles multi-core leg");
    println!("kernel audit (incl. concurrency/lock discipline): clean ✓");
}

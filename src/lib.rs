//! # CubicleOS-rs
//!
//! A Rust reproduction of *"CubicleOS: A Library OS with Software
//! Componentisation for Practical Isolation"* (ASPLOS 2021): a library
//! OS whose third-party components are mutually isolated by **cubicles**
//! (spatial isolation via per-component MPK keys), **windows**
//! (user-managed ACLs for zero-copy temporal sharing) and
//! **cross-cubicle calls** (CFI-enforcing trampolines), with a lazy
//! **trap-and-map** monitor that retags pages instead of copying data.
//!
//! The crates re-exported here:
//!
//! * [`mpk`] — the simulated Intel MPK machine (pages, keys, PKRU,
//!   faults, cycle accounting);
//! * [`kernel`] — the CubicleOS kernel: loader, builder, monitor,
//!   trampolines, the Table 1 window API;
//! * [`ukbase`] — Unikraft base components (`ALLOC`, `TIME`, `PLAT`,
//!   shared `LIBC`);
//! * [`vfs`] / [`ramfs`] — the file system stack;
//! * [`net`] — `NETDEV` + `LWIP` (TCP stack);
//! * [`httpd`] — the NGINX-like web server (paper §6.3);
//! * [`sqldb`] — the SQLite-like engine + speedtest1 workload (§6.4);
//! * [`ipc`] — message-passing baselines (Genode / seL4 / Fiasco.OC /
//!   NOVA cost models, §6.5).
//!
//! Start with `examples/quickstart.rs`, then `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use cubicle_core as kernel;
pub use cubicle_httpd as httpd;
pub use cubicle_ipc as ipc;
pub use cubicle_mpk as mpk;
pub use cubicle_net as net;
pub use cubicle_ramfs as ramfs;
pub use cubicle_sqldb as sqldb;
pub use cubicle_ukbase as ukbase;
pub use cubicle_vfs as vfs;
